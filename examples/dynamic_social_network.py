#!/usr/bin/env python3
"""Tracking community evolution in a dynamic social network.

The motivating scenario of the paper: a social network receives a steady
stream of friend/unfriend events, and we monitor its overlapping community
structure *incrementally* instead of recomputing from scratch every time.
This example:

1. generates an LFR benchmark graph (known overlapping communities);
2. fits an rSLPA detector once;
3. replays a stream of edit batches, updating incrementally;
4. after each batch, reports the work done (η), the detected community
   count, and the NMI against the original ground truth — which decays
   slowly as the graph drifts away from its initial structure.

Run:  python examples/dynamic_social_network.py
"""

import time

from repro import LFRParams, RSLPADetector, generate_lfr, nmi_overlapping
from repro.workloads.dynamic import EditStream

N = 500
BATCH_SIZE = 25
NUM_BATCHES = 8


def main() -> None:
    print("generating an LFR social network with overlapping ground truth...")
    lfr = generate_lfr(
        LFRParams(n=N, avg_degree=12, max_degree=30, mu=0.1,
                  overlap_fraction=0.1, overlap_membership=2),
        seed=11,
    )
    graph = lfr.graph
    print(
        f"  {graph.num_vertices} users, {graph.num_edges} friendships, "
        f"{len(lfr.communities)} ground-truth communities, "
        f"{len(lfr.overlapping_vertices)} overlapping users"
    )

    print("\nfitting rSLPA (T=150)...")
    t0 = time.perf_counter()
    detector = RSLPADetector(graph, seed=3, iterations=150, tau_step=0.01)
    detector.fit()
    fit_seconds = time.perf_counter() - t0
    cover = detector.communities()
    nmi = nmi_overlapping(cover.as_sets(), lfr.communities, N)
    print(
        f"  fitted in {fit_seconds:.2f}s: {len(cover)} communities, "
        f"NMI vs ground truth {nmi:.3f}"
    )

    print(f"\nreplaying {NUM_BATCHES} batches of {BATCH_SIZE} edits each:")
    print("batch  eta     touched%  seconds  communities  overlap  NMI")
    stream = EditStream(detector.graph, batch_size=BATCH_SIZE, seed=99)
    total_slots = detector.label_state.total_slots()
    for step in range(NUM_BATCHES):
        batch = stream.next_batch()
        t0 = time.perf_counter()
        report = detector.update(batch)
        update_seconds = time.perf_counter() - t0
        cover = detector.communities()
        nmi = nmi_overlapping(cover.as_sets(), lfr.communities, N)
        print(
            f"{step:5d}  {report.touched_labels:6d}  "
            f"{100 * report.touched_labels / total_slots:7.2f}%  "
            f"{update_seconds:7.3f}  {len(cover):11d}  "
            f"{len(cover.overlapping_vertices()):7d}  {nmi:.3f}"
        )

    print(
        "\nnote: each update touches a small fraction of the "
        f"{total_slots} maintained labels — the point of Correction "
        "Propagation (Algorithm 2)."
    )


if __name__ == "__main__":
    main()
