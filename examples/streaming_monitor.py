#!/usr/bin/env python3
"""Streaming community monitor: decoupling updates from extraction.

Section V-B3 of the paper: "if we run rSLPA on a social network, we may not
want to calculate the communities in every minute; instead, we can let the
algorithm handle changes continuously, and calculate the communities once
per hour."  This example simulates exactly that operating mode:

* a high-frequency stream of small edit batches is absorbed by Correction
  Propagation (cheap, O(η) per batch);
* community extraction (the expensive post-processing) runs only every
  EXTRACT_EVERY batches;
* the monitor reports community births/deaths/drift between extractions.

Run:  python examples/streaming_monitor.py
"""

import time

from repro import RSLPADetector, generate_lfr, LFRParams
from repro.workloads.dynamic import EditStream

N = 400
BATCH_SIZE = 8
NUM_BATCHES = 30
EXTRACT_EVERY = 10


def community_fingerprints(cover):
    """Stable ids for drift reporting: each community keyed by its minimum."""
    return {min(c): frozenset(c) for c in cover}


def diff_covers(before, after):
    """Births, deaths, and changed membership between two extractions."""
    born = [k for k in after if k not in before]
    died = [k for k in before if k not in after]
    drifted = [
        k
        for k in after
        if k in before and after[k] != before[k]
    ]
    return born, died, drifted


def main() -> None:
    lfr = generate_lfr(
        LFRParams(n=N, avg_degree=12, max_degree=28, mu=0.1,
                  overlap_fraction=0.1, overlap_membership=2),
        seed=23,
    )
    detector = RSLPADetector(lfr.graph, seed=9, iterations=120, tau_step=0.01)
    detector.fit()
    stream = EditStream(detector.graph, batch_size=BATCH_SIZE, seed=77)

    snapshot = community_fingerprints(detector.communities())
    print(
        f"initial extraction: {len(snapshot)} communities on "
        f"|V|={N}, |E|={detector.graph.num_edges}"
    )

    absorbed = 0
    update_seconds = 0.0
    for step in range(1, NUM_BATCHES + 1):
        batch = stream.next_batch()
        t0 = time.perf_counter()
        report = detector.update(batch)
        update_seconds += time.perf_counter() - t0
        absorbed += report.touched_labels

        if step % EXTRACT_EVERY == 0:
            t0 = time.perf_counter()
            fresh = community_fingerprints(detector.communities())
            extract_seconds = time.perf_counter() - t0
            born, died, drifted = diff_covers(snapshot, fresh)
            print(
                f"\nafter {step} batches "
                f"({step * BATCH_SIZE} edits, {absorbed} labels touched, "
                f"{update_seconds:.2f}s updating):"
            )
            print(
                f"  extraction took {extract_seconds:.2f}s: "
                f"{len(fresh)} communities "
                f"(+{len(born)} born, -{len(died)} died, ~{len(drifted)} drifted)"
            )
            snapshot = fresh
            absorbed = 0
            update_seconds = 0.0

    print(
        "\nupdates stayed cheap while extraction ran on demand — the "
        "operating mode the paper describes for production monitoring."
    )


if __name__ == "__main__":
    main()
