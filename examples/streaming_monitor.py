#!/usr/bin/env python3
"""Streaming community monitor on the service layer.

Section V-B3 of the paper: "if we run rSLPA on a social network, we may not
want to calculate the communities in every minute; instead, we can let the
algorithm handle changes continuously, and calculate the communities once
per hour."  This example runs that operating mode through
:class:`repro.service.CommunityService`:

* a timed stream of single edge edits (seeded exponential arrivals) feeds
  the service's coalescing ingest queue; each full window is absorbed by
  Correction Propagation (cheap, O(η) per batch);
* community extraction (the expensive post-processing) happens lazily,
  only when a query finds the index more than STALENESS batches old;
* drift is reported from the service's *stable community ids* — the index
  matches consecutive extractions (maximum-Jaccard), so "community 3"
  means the same evolving community all run long, with births, deaths,
  merges and splits called out explicitly;
* the run is traced (``ExecutionConfig(trace=True)``), so the monitor
  reports *live metrics* from the observability plane at every extraction
  — queue depth, coalescing ratio, apply/extract time split — and closes
  with the phase-timing summary and a Prometheus exposition excerpt.

Run:  python examples/streaming_monitor.py
"""

import time

from repro import CommunityService, generate_lfr, LFRParams
from repro.api.config import AlgoConfig, ExecutionConfig, ServicePlanConfig
from repro.workloads.dynamic import EditStream

N = 400
BATCH_SIZE = 8          # ingest window: edits coalesced per update
NUM_EDITS = 240         # 30 windows' worth of single-edit arrivals
STALENESS = 10          # re-extract lazily after this many batches
ARRIVAL_RATE = 50.0     # mean edits per simulated second


def describe_drift(index_before, index_after, transition):
    """Readable drift summary from two stable-id snapshots + the report."""
    born = sorted(set(index_after) - set(index_before))
    died = sorted(set(index_before) - set(index_after))
    drifted = sorted(
        cid
        for cid in set(index_after) & set(index_before)
        if index_after[cid] != index_before[cid]
    )
    parts = []
    if born:
        parts.append(f"+{len(born)} born (ids {born})")
    if died:
        parts.append(f"-{len(died)} died (ids {died})")
    if drifted:
        parts.append(f"~{len(drifted)} drifted")
    if transition is not None:
        parts.append(f"events: {transition.summary()}")
    return "; ".join(parts) if parts else "no change"


def main() -> None:
    lfr = generate_lfr(
        LFRParams(n=N, avg_degree=12, max_degree=28, mu=0.1,
                  overlap_fraction=0.1, overlap_membership=2),
        seed=23,
    )
    service = CommunityService(
        lfr.graph,
        config=ServicePlanConfig(
            algo=AlgoConfig(seed=9, iterations=120, tau_step=0.01),
            execution=ExecutionConfig(trace=True),
            batch_size=BATCH_SIZE,
            staleness_batches=STALENESS,
        ),
    ).start()

    snapshot = service.index.snapshot()
    print(
        f"initial extraction: {len(snapshot)} communities on "
        f"|V|={N}, |E|={service.graph.num_edges}"
    )

    stream = EditStream(service.graph, batch_size=BATCH_SIZE, seed=77,
                        rate=ARRIVAL_RATE)
    update_seconds = 0.0
    last_extraction = service.extractions  # start() already extracted once
    for arrival, op, u, v in stream.timed_edits(NUM_EDITS):
        t0 = time.perf_counter()
        service.submit(op, u, v)
        update_seconds += time.perf_counter() - t0

        # Query-side: membership lookups hit the cached index; once the
        # staleness bound trips, the query pays for one fresh extraction.
        t0 = time.perf_counter()
        service.communities_of(u)
        query_seconds = time.perf_counter() - t0
        if service.extractions > last_extraction:
            last_extraction = service.extractions
            fresh = service.index.snapshot()
            transition = service.index.last_transition
            stats = service.stats()
            print(
                f"\nt={arrival:6.2f}s  after {stats['batches_applied']} batches "
                f"({stats['edits_applied']} edits, {update_seconds:.2f}s updating):"
            )
            print(
                f"  extraction (inside one query, {query_seconds:.2f}s): "
                f"{len(fresh)} communities — "
                f"{describe_drift(snapshot, fresh, transition)}"
            )
            # Live metrics straight off the observability registry: how
            # hard the ingest plane is coalescing and where the service's
            # time is going so far.
            metrics = stats["metrics"]
            phase_s = service.obs.result().phase_totals()
            print(
                f"  live metrics: queue depth "
                f"{metrics['gauges']['service.queue_depth']:.0f}, "
                f"coalesce ratio "
                f"{metrics['gauges']['service.coalesce_ratio']:.2f}, "
                f"apply {phase_s.get('service.apply', 0.0):.2f}s / "
                f"extract {phase_s.get('service.extract', 0.0):.2f}s total"
            )
            snapshot = fresh
            update_seconds = 0.0

    stats = service.stats()
    print(
        f"\n{stats['edits_applied']} edits absorbed in "
        f"{stats['batches_applied']} coalesced batches, "
        f"{stats['extractions']} extractions, "
        f"{stats['queries_served']} queries served — updates stayed cheap "
        "while extraction ran on demand, the operating mode the paper "
        "describes for production monitoring."
    )

    # The run's frozen trace: the phase table the CLI prints for --trace,
    # and a Prometheus exposition (what --metrics would write to a file).
    trace = service.trace_result()
    print("\nphase-timing summary:")
    print(trace.summary())
    exposition = [
        line for line in trace.to_prometheus().splitlines()
        if not line.startswith("#")
    ]
    print(f"\nPrometheus exposition ({len(exposition)} samples), excerpt:")
    for line in exposition[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
