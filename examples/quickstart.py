#!/usr/bin/env python3
"""Quickstart: detect overlapping communities and keep them fresh under edits.

Builds a small social-style graph with two friend groups sharing one member,
runs rSLPA once, then feeds it a batch of edge changes and updates the
result incrementally — the core workflow of the paper.

Run:  python examples/quickstart.py
"""

from repro import EditBatch, Graph, RSLPADetector


def build_graph() -> Graph:
    """Two tight friend groups; Grace (8) belongs to both."""
    graph = Graph()
    group_a = [0, 1, 2, 3]     # alice, bob, carol, dan
    group_b = [4, 5, 6, 7]     # erin, frank, heidi, ivan
    for group in (group_a, group_b):
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                graph.add_edge(u, v)
    grace = 8
    for friend in (0, 1, 4, 5):
        graph.add_edge(grace, friend)
    return graph


def show(cover, names):
    for i, community in enumerate(sorted(cover, key=lambda c: sorted(c))):
        members = ", ".join(names[v] for v in sorted(community))
        print(f"  community {i}: {{{members}}}")
    overlap = cover.overlapping_vertices()
    if overlap:
        print(f"  overlapping members: {[names[v] for v in sorted(overlap)]}")


def main() -> None:
    names = ["alice", "bob", "carol", "dan", "erin", "frank", "heidi", "ivan",
             "grace", "judy"]
    graph = build_graph()
    print(f"graph: {graph.num_vertices} people, {graph.num_edges} friendships")

    # --- static detection -------------------------------------------------
    # backend="fast" runs the vectorised CSR substrate; "reference" is the
    # pure-Python propagator.  Both are bit-identical per seed ("auto", the
    # default, picks fast whenever vertex ids are contiguous).
    detector = RSLPADetector(
        graph, seed=7, iterations=150, tau_step=0.005, backend="fast"
    )
    detector.fit()
    print("\ncommunities on the initial graph:")
    show(detector.communities(), names)

    # --- dynamic maintenance ----------------------------------------------
    # Judy (9) joins group B; the bridge alice-grace breaks.
    batch = EditBatch.build(
        insertions=[(9, 4), (9, 5), (9, 6), (9, 7)],
        deletions=[(8, 0)],
    )
    report = detector.update(batch)
    print(
        f"\napplied batch of {batch.size} edits: "
        f"{report.repicked} labels repicked, "
        f"{report.touched_labels} labels touched "
        f"(out of {detector.label_state.total_slots()})"
    )
    print("\ncommunities after the update (no recomputation from scratch):")
    show(detector.communities(), names)


if __name__ == "__main__":
    main()
