#!/usr/bin/env python3
"""Community detection on a simulated cluster, web-graph workload.

The paper's deployment: rSLPA on Spark over a 7-node cluster, processing a
web crawl.  This example reproduces that pipeline on the BSP cluster
simulator:

1. generate the synthetic web-graph substitute (heavy-tailed degrees,
   symmetrised, deduplicated — the paper's preprocessing);
2. run the distributed rSLPA fetch protocol over 7 simulated workers and
   compare its communication volume with the SLPA push protocol;
3. run the distributed incremental update for an edit batch;
4. extract communities with the distributed post-processing
   (hash-to-min connected components).

Run:  python examples/distributed_web_graph.py
"""

import time

from repro import ExecutionConfig, WebGraphParams, generate_webgraph, plan_for
from repro.distributed import (
    run_distributed_postprocess,
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.workloads.dynamic import random_edit_batch

NUM_WORKERS = 7      # the paper's cluster size
N = 2_000            # scaled-down crawl
RSLPA_T = 60
SLPA_T = 30


def main() -> None:
    print(f"generating web-graph substitute (n={N})...")
    crawl = generate_webgraph(WebGraphParams(n=N, avg_out_degree=8), seed=1)
    graph = crawl.graph
    print(
        f"  |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"max degree={graph.max_degree()} "
        f"(directed edges before normalisation: {crawl.num_directed_edges})"
    )

    print(f"\n[1] distributed rSLPA, {NUM_WORKERS} workers, T={RSLPA_T}")
    # One declarative config; every "auto" is negotiated against the graph
    # and the resolved plan explains each choice before anything runs.
    config = ExecutionConfig(num_workers=NUM_WORKERS, state_format="dict")
    print(plan_for(graph, config).explain())
    t0 = time.perf_counter()
    state, rslpa_stats = run_distributed_rslpa(
        graph, seed=5, iterations=RSLPA_T, config=config
    )
    print(f"  {rslpa_stats.summary()}  ({time.perf_counter() - t0:.1f}s)")
    print(
        f"  per iteration: {rslpa_stats.total_messages // RSLPA_T} messages "
        f"(= 2|V| fetch protocol)"
    )

    print(f"\n[2] distributed SLPA for comparison, T={SLPA_T}")
    _, slpa_stats = run_distributed_slpa(
        graph, seed=5, iterations=SLPA_T, num_workers=NUM_WORKERS
    )
    slpa_per_iter = slpa_stats.total_messages // SLPA_T
    rslpa_per_iter = rslpa_stats.total_messages // RSLPA_T
    print(
        f"  per iteration: {slpa_per_iter} messages (= 2|E| push protocol) — "
        f"{slpa_per_iter / rslpa_per_iter:.1f}x the rSLPA volume"
    )

    print("\n[3] incremental update: batch of 50 edits (half insert/half delete)")
    batch = random_edit_batch(graph, 50, seed=2)
    t0 = time.perf_counter()
    graph, state, update_stats = run_distributed_update(
        graph, state, batch, seed=5, batch_epoch=1, num_workers=NUM_WORKERS
    )
    print(f"  {update_stats.summary()}  ({time.perf_counter() - t0:.1f}s)")
    print(
        f"  vs full re-propagation: ~{rslpa_stats.total_messages} messages — "
        f"{rslpa_stats.total_messages / max(update_stats.total_messages, 1):.0f}x more"
    )

    print("\n[4] distributed post-processing (hash-to-min components)")
    t0 = time.perf_counter()
    cover, cc_stats = run_distributed_postprocess(
        graph, state, num_workers=NUM_WORKERS, step=0.01
    )
    print(f"  CC stage: {cc_stats.summary()}  ({time.perf_counter() - t0:.1f}s)")
    sizes = cover.sizes()
    print(
        f"  {len(cover)} communities; sizes: min={min(sizes) if sizes else 0}, "
        f"median={sorted(sizes)[len(sizes) // 2] if sizes else 0}, "
        f"max={max(sizes) if sizes else 0}; "
        f"{len(cover.overlapping_vertices())} overlapping vertices"
    )


if __name__ == "__main__":
    main()
