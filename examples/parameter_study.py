#!/usr/bin/env python3
"""Miniature parameter study: the Figure 7 sweeps at example scale.

Sweeps the LFR mixing parameter µ and the overlap memberships om, comparing
SLPA and rSLPA by NMI — a quick interactive version of the paper's
evaluation (the full harnesses live in benchmarks/).

Run:  python examples/parameter_study.py
"""

from repro import LFRParams, generate_lfr, nmi_overlapping
from repro.baselines.slpa_fast import FastSLPA
from repro.core.fast import FastPropagator
from repro.core.postprocess import extract_communities

N = 600
RSLPA_T = 150
SLPA_T = 80


def detect_both(lfr, seed=1):
    n = lfr.graph.num_vertices
    slpa = FastSLPA(lfr.graph, seed=seed, iterations=SLPA_T, threshold=0.2)
    slpa.propagate()
    nmi_slpa = nmi_overlapping(slpa.extract().as_sets(), lfr.communities, n)

    rslpa = FastPropagator(lfr.graph, seed=seed)
    rslpa.propagate(RSLPA_T)
    sequences = {v: rslpa.labels[:, v].tolist() for v in range(n)}
    cover = extract_communities(lfr.graph, sequences, step=0.01).cover
    nmi_rslpa = nmi_overlapping(cover.as_sets(), lfr.communities, n)
    return nmi_slpa, nmi_rslpa


def sweep(title, header, values, params_for):
    print(f"\n{title}")
    print(f"{header:>8}  {'SLPA':>6}  {'rSLPA':>6}")
    for value in values:
        lfr = generate_lfr(params_for(value), seed=5)
        nmi_slpa, nmi_rslpa = detect_both(lfr)
        print(f"{value!s:>8}  {nmi_slpa:6.3f}  {nmi_rslpa:6.3f}")


def main() -> None:
    print(f"LFR base: n={N}, k=12, maxk=30, on=0.1N  |  SLPA T={SLPA_T} tau=0.2, "
          f"rSLPA T={RSLPA_T} entropy thresholds")

    sweep(
        "varying mixing parameter mu (paper Figure 7d)",
        "mu",
        [0.1, 0.2, 0.3],
        lambda mu: LFRParams(n=N, avg_degree=12, max_degree=30, mu=mu,
                             overlap_fraction=0.1, overlap_membership=2),
    )
    sweep(
        "varying overlap memberships om (paper Figure 7e)",
        "om",
        [2, 3, 4],
        lambda om: LFRParams(n=N, avg_degree=12, max_degree=30, mu=0.1,
                             overlap_fraction=0.1, overlap_membership=om),
    )
    print(
        "\nexpected shapes (paper): NMI decreases slowly with mu and om; "
        "the SLPA-rSLPA gap narrows as om grows."
    )


if __name__ == "__main__":
    main()
