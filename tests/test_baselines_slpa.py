"""Tests for the SLPA baseline (reference and vectorised engines)."""

import pytest

from repro.baselines.slpa import SLPA, slpa_detect
from repro.baselines.slpa_fast import FastSLPA, fast_slpa_detect
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, ring_of_cliques


class TestReferenceSLPA:
    def test_memory_lengths(self, cliques_ring):
        slpa = SLPA(cliques_ring, seed=0, iterations=20)
        slpa.propagate()
        for v in cliques_ring.vertices():
            assert len(slpa.memories[v]) == 21

    def test_initial_memory_is_vertex_id(self, cliques_ring):
        slpa = SLPA(cliques_ring, seed=0, iterations=5)
        slpa.propagate()
        assert all(slpa.memories[v][0] == v for v in cliques_ring.vertices())

    def test_deterministic(self, cliques_ring):
        a = SLPA(cliques_ring, seed=7, iterations=15)
        b = SLPA(cliques_ring, seed=7, iterations=15)
        assert a.propagate() == b.propagate()

    def test_seed_changes_memories(self, cliques_ring):
        a = SLPA(cliques_ring, seed=7, iterations=15)
        b = SLPA(cliques_ring, seed=8, iterations=15)
        assert a.propagate() != b.propagate()

    def test_degree_zero_keeps_own_label(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        slpa = SLPA(g, seed=0, iterations=10)
        slpa.propagate()
        assert slpa.memories[2] == [2] * 11

    def test_extract_thresholding(self, cliques_ring):
        slpa = SLPA(cliques_ring, seed=1, iterations=40)
        slpa.propagate()
        strict = slpa.extract(threshold=0.9)
        loose = slpa.extract(threshold=0.02)
        # Looser thresholds keep more labels -> more/larger communities.
        assert sum(len(c) for c in loose) >= sum(len(c) for c in strict)

    def test_detects_ring_cliques(self, cliques_ring):
        cover = slpa_detect(cliques_ring, seed=2, iterations=60, threshold=0.3)
        # Each clique should appear as (a superset of) a community.
        for c in range(5):
            clique = set(range(c * 6, (c + 1) * 6))
            assert any(len(clique & set(comm)) >= 4 for comm in cover)

    def test_run_returns_result_bundle(self, cliques_ring):
        result = SLPA(cliques_ring, seed=1, iterations=10).run()
        assert result.threshold == 0.2
        assert len(result.memories) == 30

    def test_rejects_bad_threshold(self, cliques_ring):
        with pytest.raises(ValueError):
            SLPA(cliques_ring, threshold=1.5)


class TestFastSLPAEquality:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_memories_bit_identical(self, seed):
        g = ring_of_cliques(4, 5)
        ref = SLPA(g, seed=seed, iterations=25)
        ref.propagate()
        fast = FastSLPA(g, seed=seed, iterations=25)
        fast.propagate()
        assert fast.memories_as_dict() == ref.memories

    def test_equality_on_random_graph_with_isolated(self):
        g = erdos_renyi(40, 0.05, seed=5)
        ref = SLPA(g, seed=2, iterations=15)
        ref.propagate()
        fast = FastSLPA(g, seed=2, iterations=15)
        fast.propagate()
        assert fast.memories_as_dict() == ref.memories

    def test_extract_matches_reference(self):
        g = ring_of_cliques(3, 5)
        ref = SLPA(g, seed=4, iterations=30)
        ref.propagate()
        fast = FastSLPA(g, seed=4, iterations=30)
        fast.propagate()
        assert fast.extract(0.25) == ref.extract(0.25)

    def test_one_shot_detect(self, cliques_ring):
        cover = fast_slpa_detect(cliques_ring, seed=2, iterations=40)
        assert len(cover) >= 1
