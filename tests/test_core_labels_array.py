"""Tests for the array-backed label state (the incremental fast substrate).

The central contract: :class:`ArrayLabelState` and :class:`LabelState` are
the same mathematical object in two layouts, and every mutation primitive
(detach, register, vertex lifecycle, reindex) preserves the record/
provenance bijection that :meth:`validate` asserts.
"""

import numpy as np
import pytest

from repro.core.fast import FastPropagator
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi


def propagated_state(graph, seed=11, iterations=25) -> LabelState:
    propagator = ReferencePropagator(graph, seed=seed)
    propagator.propagate(iterations)
    return propagator.state


def assert_states_identical(dict_state: LabelState, array_state: ArrayLabelState):
    back = array_state.to_label_state()
    assert back.labels == dict_state.labels
    assert back.srcs == dict_state.srcs
    assert back.poss == dict_state.poss
    assert back.epochs == dict_state.epochs
    assert back.receivers == dict_state.receivers
    assert back.num_iterations == dict_state.num_iterations


class TestRoundTrip:
    def test_label_state_round_trip_exact(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        assert_states_identical(state, array_state)
        array_state.validate(cliques_ring)

    def test_round_trip_with_isolated_vertices(self):
        g = erdos_renyi(40, 0.04, seed=7)  # sparse: isolated vertices likely
        state = propagated_state(g, seed=2, iterations=15)
        array_state = ArrayLabelState.from_label_state(state)
        assert_states_identical(state, array_state)
        array_state.validate(g)

    def test_round_trip_from_fast_propagator(self, cliques_ring):
        fast = FastPropagator(cliques_ring, seed=11)
        fast.propagate(25)
        array_state = fast.to_array_state()
        assert_states_identical(propagated_state(cliques_ring), array_state)

    def test_non_contiguous_ids_rejected(self):
        g = Graph.from_edges([(0, 5)])
        state = propagated_state(g, iterations=4)
        with pytest.raises(ValueError, match="contiguous"):
            ArrayLabelState.from_label_state(state)

    def test_empty_state_round_trips(self):
        array_state = ArrayLabelState.from_label_state(LabelState())
        assert array_state.num_vertices == 0
        assert array_state.to_label_state().num_vertices == 0

    def test_sequences_dict_matches_label_lists(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        assert array_state.sequences_dict() == state.labels


class TestReverseRecords:
    def test_receivers_of_matches_dict_state(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        for v in cliques_ring.vertices():
            for t in range(state.num_iterations + 1):
                assert array_state.receivers_of(v, t) == state.receivers_of(v, t)

    def test_batched_query_groups_by_owner(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        keys = np.array(
            [array_state.slot_key(v, 3) for v in range(10)], dtype=np.int64
        )
        owner, tar, k = array_state.receivers_query(keys)
        for i in range(10):
            got = {(int(a), int(b)) for a, b in zip(tar[owner == i], k[owner == i])}
            assert got == state.receivers_of(i, 3)

    def test_detach_then_register_round_trip(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        # Find a slot with a real source, detach it, re-register the same
        # provenance; the state must validate throughout.
        v, t = next(
            (v, t)
            for v in range(30)
            for t in range(1, 26)
            if array_state.srcs[t, v] != NO_SOURCE
        )
        src, pos = int(array_state.srcs[t, v]), int(array_state.poss[t, v])
        array_state.detach_slots(np.array([v]), np.array([t]))
        assert (v, t) not in array_state.receivers_of(src, pos)
        assert array_state.srcs[t, v] == NO_SOURCE
        array_state.srcs[t, v] = src
        array_state.poss[t, v] = pos
        array_state.register_slots(
            np.array([src]), np.array([pos]), np.array([v]), t
        )
        assert (v, t) in array_state.receivers_of(src, pos)
        array_state.validate(cliques_ring)

    def test_reindex_preserves_everything(self, cliques_ring):
        state = propagated_state(cliques_ring)
        array_state = ArrayLabelState.from_label_state(state)
        # Churn some records into the extras overlay, then force a rebuild.
        v, t = next(
            (v, t)
            for v in range(30)
            for t in range(1, 26)
            if array_state.srcs[t, v] != NO_SOURCE
        )
        src, pos = int(array_state.srcs[t, v]), int(array_state.poss[t, v])
        array_state.detach_slots(np.array([v]), np.array([t]))
        array_state.srcs[t, v] = src
        array_state.poss[t, v] = pos
        array_state.register_slots(np.array([src]), np.array([pos]), np.array([v]), t)
        array_state.reindex()
        assert array_state._extra_count == 0
        assert_states_identical(state, array_state)
        array_state.validate(cliques_ring)

    def test_validate_catches_spurious_record(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        # Register a second record for a slot that already owns one.
        v, t = next(
            (v, t)
            for v in range(30)
            for t in range(1, 26)
            if array_state.srcs[t, v] != NO_SOURCE
        )
        array_state.register_slots(
            np.array([array_state.srcs[t, v]]),
            np.array([array_state.poss[t, v]]),
            np.array([v]),
            t,
        )
        with pytest.raises(AssertionError, match="both statically and in extras"):
            array_state.validate()

    def test_validate_catches_killed_record(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        flat = int(np.nonzero(array_state._rev_alive)[0][0])
        array_state._rev_alive[flat] = False  # record lost, provenance kept
        array_state._rec_pos[
            array_state._rev_k[flat], array_state._rev_tar[flat]
        ] = -1
        with pytest.raises(AssertionError, match="missing"):
            array_state.validate()


class TestVertexLifecycle:
    def test_add_vertices_extends_range(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        array_state.add_vertices([30, 31])
        assert array_state.has_vertex(31)
        col = array_state.labels[:, 30]
        assert (col == 30).all()
        assert (array_state.srcs[:, 31] == NO_SOURCE).all()
        array_state.validate()

    def test_add_vertices_rejects_gap(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        with pytest.raises(ValueError, match="contiguous"):
            array_state.add_vertices([40])

    def test_add_existing_vertex_rejected(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        with pytest.raises(ValueError, match="already"):
            array_state.add_vertices([3])

    def test_drop_requires_detached_sources(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        with pytest.raises(ValueError):
            array_state.drop_vertex(0)  # slots still hold sources/receivers

    def test_drop_and_resurrect(self):
        # A 2-vertex graph propagated 0 iterations: no records at all, so
        # vertex 1 can be dropped immediately and then resurrected.
        g = Graph.from_edges([(0, 1)])
        state = propagated_state(g, iterations=0)
        array_state = ArrayLabelState.from_label_state(state)
        array_state.drop_vertex(1)
        assert not array_state.has_vertex(1)
        assert sorted(array_state.vertices()) == [0]
        array_state.add_vertices([1])
        assert array_state.has_vertex(1)
        assert array_state.num_columns == 2  # resurrected, not re-allocated
        array_state.validate()

    def test_needs_reindex_flips_with_churn(self, cliques_ring):
        array_state = ArrayLabelState.from_label_state(propagated_state(cliques_ring))
        assert not array_state.needs_reindex()
        # The policy is debt-based; simulate heavy churn via the counters
        # (past both the static-fraction and the absolute floor).
        array_state._extra_count = 1025 + len(array_state._rev_key)
        assert array_state.needs_reindex()
