"""Tests for repro.graph.generators."""

import pytest

from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    planted_partition,
    powerlaw_degree_sequence,
    random_regular_ish,
    ring_of_cliques,
)


class TestErdosRenyi:
    def test_size_and_invariants(self):
        g = erdos_renyi(100, 0.05, seed=1)
        g.check_invariants()
        assert g.num_vertices == 100

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = erdos_renyi(n, p, seed=2)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_p_zero(self):
        assert erdos_renyi(50, 0.0, seed=0).num_edges == 0

    def test_p_one_is_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_deterministic_per_seed(self):
        a = erdos_renyi(80, 0.07, seed=5)
        b = erdos_renyi(80, 0.07, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = erdos_renyi(80, 0.07, seed=5)
        b = erdos_renyi(80, 0.07, seed=6)
        assert a != b

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestRandomRegularIsh:
    def test_degrees_close_to_k(self):
        g = random_regular_ish(100, 6, seed=3)
        g.check_invariants()
        degrees = [g.degree(v) for v in g.vertices()]
        assert sum(degrees) / len(degrees) > 5.0
        assert max(degrees) <= 6 + 3  # matching collisions only reduce

    def test_rejects_k_ge_n(self):
        with pytest.raises(ValueError):
            random_regular_ish(5, 5)


class TestPowerlawDegrees:
    def test_bounds_respected(self):
        degrees = powerlaw_degree_sequence(500, 2.0, 3, 40, seed=1)
        assert all(3 <= d <= 40 for d in degrees)

    def test_sum_is_even(self):
        for seed in range(5):
            degrees = powerlaw_degree_sequence(101, 2.2, 2, 30, seed=seed)
            assert sum(degrees) % 2 == 0

    def test_heavy_tail_shape(self):
        """Low degrees must dominate high degrees under exponent 2.5."""
        degrees = powerlaw_degree_sequence(4000, 2.5, 2, 100, seed=2)
        low = sum(1 for d in degrees if d <= 5)
        high = sum(1 for d in degrees if d >= 50)
        assert low > 10 * max(high, 1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 2.0, 10, 5)


class TestChungLu:
    def test_average_degree_matches_target(self):
        degrees = [10] * 300
        g = chung_lu(degrees, seed=4)
        g.check_invariants()
        assert abs(g.average_degree() - 10) < 2.0

    def test_high_weight_vertices_get_high_degree(self):
        degrees = [50] * 5 + [2] * 295
        g = chung_lu(degrees, seed=5)
        hub_mean = sum(g.degree(v) for v in range(5)) / 5
        leaf_mean = sum(g.degree(v) for v in range(5, 300)) / 295
        assert hub_mean > 5 * leaf_mean

    def test_empty_degrees(self):
        assert chung_lu([], seed=0).num_vertices == 0


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(4, 5)
        g.check_invariants()
        assert g.num_vertices == 20
        # 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert g.num_edges == 44

    def test_single_clique(self):
        g = ring_of_cliques(1, 4)
        assert g.num_edges == 6

    def test_two_cliques_one_bridge(self):
        g = ring_of_cliques(2, 3)
        assert g.num_edges == 2 * 3 + 1

    def test_is_connected(self):
        g = ring_of_cliques(6, 4)
        assert len(g.connected_components()) == 1

    def test_rejects_tiny_clique(self):
        with pytest.raises(ValueError):
            ring_of_cliques(3, 1)


class TestPlantedPartition:
    def test_intra_density_exceeds_inter(self):
        g = planted_partition(4, 15, p_in=0.7, p_out=0.02, seed=6)
        g.check_invariants()
        intra = inter = 0
        for u, v in g.edges():
            if u // 15 == v // 15:
                intra += 1
            else:
                inter += 1
        assert intra > 3 * inter

    def test_extreme_probabilities(self):
        g = planted_partition(2, 4, p_in=1.0, p_out=0.0, seed=0)
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [4, 4]
