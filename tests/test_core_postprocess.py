"""Tests for the post-processing stage (Section III-B)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.postprocess import (
    DisjointSetEntropy,
    edge_weights,
    extract_communities,
    sequence_similarity,
    sweep_tau1,
    weak_threshold,
)
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.generators import ring_of_cliques


class TestSequenceSimilarity:
    def test_identical_uniform_sequences(self):
        assert sequence_similarity([1, 1], [1, 1]) == 1.0

    def test_disjoint_sequences(self):
        assert sequence_similarity([1, 2], [3, 4]) == 0.0

    def test_known_value(self):
        # P(match) = (2*1 + 1*2) / 9 = 4/9
        assert sequence_similarity([1, 1, 2], [1, 2, 2]) == pytest.approx(4 / 9)

    def test_symmetry(self):
        a, b = [1, 2, 2, 3], [2, 3, 3]
        assert sequence_similarity(a, b) == sequence_similarity(b, a)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sequence_similarity([], [1])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=8),
        st.lists(st.integers(0, 5), min_size=1, max_size=8),
    )
    def test_property_is_probability(self, a, b):
        assert 0.0 <= sequence_similarity(a, b) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=8))
    def test_property_self_similarity_maximal(self, a):
        """P(l_a = l_a') >= P(l_a = l_b) when b is a permutation-free other."""
        assert sequence_similarity(a, a) >= 1.0 / len(a) - 1e-12


class TestEdgeWeights:
    def test_weights_for_all_edges(self, two_cliques_bridge):
        sequences = {v: [v % 3] for v in two_cliques_bridge.vertices()}
        weights = edge_weights(two_cliques_bridge, sequences)
        assert set(weights) == set(two_cliques_bridge.edges())

    def test_intra_clique_weights_exceed_bridge(self, two_cliques_bridge):
        propagator = ReferencePropagator(two_cliques_bridge, seed=3)
        propagator.propagate(40)
        weights = edge_weights(two_cliques_bridge, propagator.state.labels)
        intra = [w for (u, v), w in weights.items() if (u < 4) == (v < 4)]
        bridge = weights[(0, 4)]
        assert sum(intra) / len(intra) > bridge


class TestWeakThreshold:
    def test_tau2_is_min_of_max(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        weights = {(0, 1): 0.9, (1, 2): 0.2}
        # max per vertex: 0 -> .9, 1 -> .9, 2 -> .2; min = .2
        assert weak_threshold(g, weights) == pytest.approx(0.2)

    def test_ignores_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[9])
        assert weak_threshold(g, {(0, 1): 0.7}) == pytest.approx(0.7)

    def test_edgeless_graph(self):
        assert weak_threshold(Graph.from_edges((), vertices=[0]), {}) == 0.0


class TestDisjointSetEntropy:
    def test_singletons_have_zero_entropy(self):
        dsu = DisjointSetEntropy(range(6))
        assert dsu.entropy == 0.0

    def test_entropy_updates_on_union(self):
        dsu = DisjointSetEntropy(range(4))
        dsu.union(0, 1)
        expected = -(2 / 4) * math.log(2 / 4)
        assert dsu.entropy == pytest.approx(expected)

    def test_union_idempotent(self):
        dsu = DisjointSetEntropy(range(4))
        assert dsu.union(0, 1) is True
        assert dsu.union(1, 0) is False
        assert dsu.num_components == 3

    def test_matches_direct_computation(self):
        dsu = DisjointSetEntropy(range(10))
        for u, v in [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)]:
            dsu.union(u, v)
        sizes = [len(c) for c in dsu.components(min_size=2)]
        direct = -sum((s / 10) * math.log(s / 10) for s in sizes)
        assert dsu.entropy == pytest.approx(direct)

    def test_components_min_size_filter(self):
        dsu = DisjointSetEntropy(range(5))
        dsu.union(0, 1)
        assert len(dsu.components(min_size=2)) == 1
        assert len(dsu.components(min_size=1)) == 4


class TestSweepTau1:
    def test_finds_clique_separating_threshold(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=11)
        propagator.propagate(40)
        weights = edge_weights(cliques_ring, propagator.state.labels)
        tau2 = weak_threshold(cliques_ring, weights)
        tau1, entropy, curve = sweep_tau1(cliques_ring, weights, tau2, step=0.005)
        assert entropy > 0
        assert tau2 <= tau1 <= max(weights.values()) + 1e-9
        assert len(curve) > 1

    def test_curve_thresholds_descend(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=11)
        propagator.propagate(30)
        weights = edge_weights(cliques_ring, propagator.state.labels)
        _, _, curve = sweep_tau1(cliques_ring, weights, 0.0, step=0.01)
        taus = [tau for tau, _ in curve]
        assert taus == sorted(taus, reverse=True)

    def test_empty_weights(self):
        g = Graph.from_edges((), vertices=[0, 1])
        assert sweep_tau1(g, {}, 0.0) == (0.0, 0.0, [])


class TestExtractCommunities:
    def test_ring_of_cliques_recovered(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=11)
        propagator.propagate(60)
        result = extract_communities(
            cliques_ring, propagator.state.labels, step=0.005
        )
        found = sorted(sorted(c) for c in result.cover)
        expected = sorted(
            sorted(range(c * 6, (c + 1) * 6)) for c in range(5)
        )
        assert found == expected

    def test_pinned_thresholds_respected(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=11)
        propagator.propagate(30)
        result = extract_communities(
            cliques_ring, propagator.state.labels, tau1=0.99, tau2=0.99
        )
        assert result.tau1 == 0.99
        # Near-impossible threshold: hardly any strong communities.
        assert result.num_strong_communities <= 2

    def test_overlap_via_weak_attachment(self):
        """A vertex weakly tied to two cliques joins both (overlap source)."""
        edges = []
        for base in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append((base + i, base + j))
        hub = 10
        edges += [(hub, 0), (hub, 5)]  # one link into each clique
        g = Graph.from_edges(edges)
        propagator = ReferencePropagator(g, seed=21)
        propagator.propagate(80)
        result = extract_communities(g, propagator.state.labels, step=0.005)
        memberships = [c for c in result.cover if hub in c]
        # The hub either joins both cliques (overlap) or at least one.
        assert 1 <= len(memberships) <= 2
        assert result.num_attached_vertices >= 1

    def test_isolated_vertex_stays_out(self):
        g = ring_of_cliques(2, 4)
        g.add_vertex(100)
        propagator = ReferencePropagator(g, seed=2)
        propagator.propagate(40)
        result = extract_communities(g, propagator.state.labels, step=0.01)
        assert all(100 not in c for c in result.cover)

    def test_result_metadata_consistent(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=11)
        propagator.propagate(40)
        result = extract_communities(cliques_ring, propagator.state.labels, step=0.01)
        assert result.num_strong_communities >= 1
        assert set(result.weights) == set(cliques_ring.edges())
        assert result.tau2 <= result.tau1 + 1e-9
