"""Tests for distributed connected components (hash-to-min)."""

import math


from repro.distributed.components import distributed_connected_components
from repro.graph.adjacency import Graph


def components_of(graph, **kwargs):
    comps, stats = distributed_connected_components(graph, **kwargs)
    return sorted(sorted(c) for c in comps), stats


class TestCorrectness:
    def test_matches_bfs_on_random_graph(self, sparse_random):
        found, _ = components_of(sparse_random, num_workers=3)
        expected = sorted(sorted(c) for c in sparse_random.connected_components())
        assert found == expected

    def test_single_component(self, cliques_ring):
        found, _ = components_of(cliques_ring, num_workers=4)
        assert found == [sorted(cliques_ring.vertices())]

    def test_isolated_vertices_are_singletons(self):
        g = Graph.from_edges([(0, 1)], vertices=[7, 8])
        found, _ = components_of(g, num_workers=2)
        assert found == [[0, 1], [7], [8]]

    def test_worker_count_does_not_change_result(self, sparse_random):
        one, _ = components_of(sparse_random, num_workers=1)
        five, _ = components_of(sparse_random, num_workers=5)
        assert one == five

    def test_long_path(self):
        n = 64
        g = Graph.from_edges([(i, i + 1) for i in range(n - 1)])
        found, stats = components_of(g, num_workers=4)
        assert found == [list(range(n))]
        # Hash-to-min converges much faster than the diameter.
        assert stats.supersteps <= 3 * int(math.log2(n)) + 4


class TestWeightFiltering:
    def test_threshold_splits_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        weights = {(0, 1): 0.9, (1, 2): 0.1, (2, 3): 0.9}
        found, _ = components_of(g, num_workers=2, weights=weights, tau=0.5)
        assert found == [[0, 1], [2, 3]]

    def test_threshold_zero_keeps_everything(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        weights = {(0, 1): 0.2, (1, 2): 0.3}
        found, _ = components_of(g, num_workers=2, weights=weights, tau=0.0)
        assert found == [[0, 1, 2]]

    def test_filtered_vertices_remain_as_singletons(self):
        g = Graph.from_edges([(0, 1)])
        weights = {(0, 1): 0.1}
        found, _ = components_of(g, num_workers=2, weights=weights, tau=0.9)
        assert found == [[0], [1]]


class TestEfficiency:
    def test_rounds_grow_slowly_with_size(self):
        """Rounds stay logarithmic-ish across a 16x size increase."""
        small = Graph.from_edges([(i, i + 1) for i in range(15)])
        large = Graph.from_edges([(i, i + 1) for i in range(255)])
        _, s_small = components_of(small, num_workers=3)
        _, s_large = components_of(large, num_workers=3)
        assert s_large.supersteps <= s_small.supersteps + 8
