"""Tests for LabelState: sequences, provenance, reverse records."""

import pytest

from repro.core.labels import NO_SOURCE, LabelState
from repro.graph.adjacency import Graph


@pytest.fixture
def state():
    s = LabelState()
    s.init_vertices([0, 1, 2])
    return s


class TestLifecycle:
    def test_init_vertex(self, state):
        assert state.sequence(0) == (0,)
        assert state.provenance(0, 0) == (NO_SOURCE, NO_SOURCE)

    def test_double_init_rejected(self, state):
        with pytest.raises(ValueError, match="already initialised"):
            state.init_vertex(0)

    def test_iteration_counter(self, state):
        assert state.num_iterations == 0
        assert state.begin_iteration() == 1
        assert state.num_iterations == 1

    def test_drop_vertex(self, state):
        state.drop_vertex(2)
        assert not state.has_vertex(2)
        assert state.num_vertices == 2

    def test_drop_vertex_with_receivers_refused(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=2, src=2, pos=0)
        with pytest.raises(ValueError, match="receivers"):
            state.drop_vertex(2)

    def test_drop_unknown_vertex(self, state):
        with pytest.raises(KeyError):
            state.drop_vertex(99)


class TestAppendPick:
    def test_append_registers_record(self, state):
        state.begin_iteration()
        state.append_pick(0, label=1, src=1, pos=0)
        assert state.receivers_of(1, 0) == {(0, 1)}
        assert state.label_at(0, 1) == 1

    def test_fallback_pick_has_no_record(self, state):
        state.begin_iteration()
        state.append_pick(0, label=0, src=NO_SOURCE, pos=NO_SOURCE)
        assert state.receivers_of(0, 0) == set()

    def test_frequencies(self, state):
        state.begin_iteration()
        state.append_pick(0, label=1, src=1, pos=0)
        state.append_pick(1, label=1, src=1, pos=0)
        state.append_pick(2, label=1, src=1, pos=0)
        assert state.frequencies(0)[1] == 1
        assert state.frequencies(0)[0] == 1

    def test_total_slots(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=0, src=NO_SOURCE, pos=NO_SOURCE)
        assert state.total_slots() == 3


class TestReplacePick:
    def _propagate_once(self, state):
        state.begin_iteration()
        state.append_pick(0, label=1, src=1, pos=0)
        state.append_pick(1, label=2, src=2, pos=0)
        state.append_pick(2, label=0, src=0, pos=0)

    def test_replace_moves_record(self, state):
        self._propagate_once(state)
        state.replace_pick(0, 1, label=2, src=2, pos=0, epoch=1)
        assert state.receivers_of(1, 0) == set()
        assert (0, 1) in state.receivers_of(2, 0)
        assert state.epochs[0][1] == 1

    def test_replace_to_fallback(self, state):
        self._propagate_once(state)
        state.replace_pick(0, 1, label=0, src=NO_SOURCE, pos=NO_SOURCE, epoch=1)
        assert state.receivers_of(1, 0) == set()
        assert state.provenance(0, 1) == (NO_SOURCE, NO_SOURCE)

    def test_detach_slot(self, state):
        self._propagate_once(state)
        state.detach_slot(0, 1)
        assert state.receivers_of(1, 0) == set()
        assert state.provenance(0, 1) == (NO_SOURCE, NO_SOURCE)

    def test_unregister_inconsistency_detected(self, state):
        self._propagate_once(state)
        state.detach_slot(0, 1)
        with pytest.raises(ValueError, match="record inconsistency"):
            state._unregister(1, 0, 0, 1)


class TestValidate:
    def test_valid_state_passes(self, state):
        state.begin_iteration()
        state.append_pick(0, label=1, src=1, pos=0)
        state.append_pick(1, label=0, src=0, pos=0)
        state.append_pick(2, label=2, src=2, pos=0)
        state.validate()

    def test_detects_wrong_length(self, state):
        state.begin_iteration()
        state.append_pick(0, label=1, src=1, pos=0)
        with pytest.raises(AssertionError, match="sequence length"):
            state.validate()

    def test_detects_label_mismatch(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=(v + 1) % 3, src=(v + 1) % 3, pos=0)
        state.labels[0][1] = 99
        with pytest.raises(AssertionError, match="source value"):
            state.validate()

    def test_detects_missing_record(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=(v + 1) % 3, src=(v + 1) % 3, pos=0)
        state.receivers[1][0].discard((0, 1))
        with pytest.raises(AssertionError, match="missing reverse record"):
            state.validate()

    def test_detects_dangling_record(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=(v + 1) % 3, src=(v + 1) % 3, pos=0)
        state.receivers[1].setdefault(0, set()).add((2, 1))
        with pytest.raises(AssertionError, match="provenance"):
            state.validate()

    def test_detects_provenance_edge_missing_from_graph(self, state):
        state.begin_iteration()
        for v in (0, 1, 2):
            state.append_pick(v, label=(v + 1) % 3, src=(v + 1) % 3, pos=0)
        graph = Graph.from_edges([(0, 1)], vertices=[2])  # 1-2 and 0-2 missing
        with pytest.raises(AssertionError, match="not in graph"):
            state.validate(graph)

    def test_detects_fallback_with_wrong_label(self, state):
        state.begin_iteration()
        state.append_pick(0, label=0, src=NO_SOURCE, pos=NO_SOURCE)
        state.append_pick(1, label=1, src=NO_SOURCE, pos=NO_SOURCE)
        state.append_pick(2, label=2, src=NO_SOURCE, pos=NO_SOURCE)
        state.labels[0][1] = 42
        with pytest.raises(AssertionError, match="fallback"):
            state.validate()
