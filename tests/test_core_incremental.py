"""Tests for Correction Propagation (Algorithm 2) — the paper's core claim.

The headline property: after any batch of edge edits, the maintained label
state is *indistinguishable* from running Algorithm 1 from scratch on the
new graph — every slot is a uniform (source, position) draw over the new
neighbourhood, and all cascaded values are consistent.  We verify:

1. structural invariants (provenance edges exist, records are exact);
2. the Category 1-3 rules (who gets repicked, who is kept);
3. cascade correctness (Example 2's propagation-tree scenario);
4. statistical uniformity of repicked sources (Theorems 4-5);
5. η accounting against the Section IV-D model.
"""

from collections import Counter

import pytest

from repro.core.incremental import CorrectionPropagator, keep_lottery_uniform
from repro.core.labels import NO_SOURCE
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.generators import erdos_renyi, ring_of_cliques
from repro.workloads.dynamic import random_edit_batch


def make_corrector(graph: Graph, seed: int = 0, iterations: int = 30):
    propagator = ReferencePropagator(graph, seed=seed)
    propagator.propagate(iterations)
    return CorrectionPropagator(propagator)


class TestStructuralInvariants:
    def test_state_valid_after_insertions(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=1)
        batch = EditBatch.build(insertions=[(0, 12), (3, 20)])
        corrector.apply_batch(batch)
        corrector.state.validate(cliques_ring)

    def test_state_valid_after_deletions(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=1)
        batch = EditBatch.build(deletions=[(0, 1), (6, 7)])
        corrector.apply_batch(batch)
        corrector.state.validate(cliques_ring)

    def test_state_valid_after_mixed_batches(self, sparse_random):
        corrector = make_corrector(sparse_random, seed=2)
        for step in range(5):
            batch = random_edit_batch(sparse_random, 8, seed=step)
            corrector.apply_batch(batch)
            corrector.state.validate(sparse_random)

    def test_batch_epoch_increments(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=1)
        corrector.apply_batch(EditBatch.build(insertions=[(0, 12)]))
        corrector.apply_batch(EditBatch.build(deletions=[(0, 12)]))
        assert corrector.batch_epoch == 2

    def test_invalid_batch_rejected_before_mutation(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=1)
        snapshot = cliques_ring.copy()
        with pytest.raises(ValueError):
            corrector.apply_batch(EditBatch.build(deletions=[(0, 29)]))
        assert cliques_ring == snapshot


class TestCategoryRules:
    def test_category1_untouched_vertices_keep_everything(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=3)
        before = {v: list(corrector.state.labels[v]) for v in range(12, 30)}
        srcs_before = {v: list(corrector.state.srcs[v]) for v in range(12, 30)}
        # Edit entirely within cliques 0-1 (vertices 0-11); clique 3+ far away.
        corrector.apply_batch(EditBatch.build(deletions=[(0, 1)]))
        # Vertices in distant cliques may receive cascaded value corrections,
        # but their provenance (src/pos) must be byte-identical.
        for v in range(12, 30):
            assert corrector.state.srcs[v] == srcs_before[v]

    def test_category2_survivor_sources_kept(self):
        g = ring_of_cliques(1, 6)  # single clique, all degree 5
        corrector = make_corrector(g, seed=5, iterations=20)
        state = corrector.state
        # Deleting edge (0, 1): slots of 0 sourced from 2..5 must keep src.
        kept_before = {
            t: state.srcs[0][t]
            for t in range(1, 21)
            if state.srcs[0][t] not in (1, NO_SOURCE)
        }
        corrector.apply_batch(EditBatch.build(deletions=[(0, 1)]))
        for t, src in kept_before.items():
            assert state.srcs[0][t] == src

    def test_category2_deleted_sources_repicked(self):
        g = ring_of_cliques(1, 6)
        corrector = make_corrector(g, seed=5, iterations=20)
        state = corrector.state
        doomed = [t for t in range(1, 21) if state.srcs[0][t] == 1]
        assert doomed, "seed must produce at least one slot sourced from 1"
        corrector.apply_batch(EditBatch.build(deletions=[(0, 1)]))
        for t in doomed:
            assert state.srcs[0][t] != 1
            assert state.srcs[0][t] in g.neighbors_view(0)

    def test_category3_some_slots_switch_to_new_neighbor(self):
        g = ring_of_cliques(1, 8)
        corrector = make_corrector(g, seed=7, iterations=40)
        state = corrector.state
        g_new_vertex = 100
        batch = EditBatch.build(insertions=[(0, g_new_vertex)])
        corrector.apply_batch(batch)
        # Vertex 0 now has 8 neighbours, one new; with 40 slots the expected
        # number of switches is 40/8 = 5 — demand at least one.
        switched = [t for t in range(1, 41) if state.srcs[0][t] == g_new_vertex]
        assert switched

    def test_category3_report_counts_lotteries(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=1)
        report = corrector.apply_batch(EditBatch.build(insertions=[(0, 12)]))
        # Vertices 0 and 12 each run one lottery per slot (30 iterations).
        assert report.keep_lotteries == 60
        assert 0 <= report.lottery_switches <= 60

    def test_isolation_falls_back_to_own_label(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        corrector = make_corrector(g, seed=2, iterations=15)
        corrector.apply_batch(EditBatch.build(deletions=[(0, 1), (0, 2)]))
        assert corrector.state.labels[0] == [0] * 16
        corrector.state.validate(g)

    def test_reconnection_after_isolation(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        corrector = make_corrector(g, seed=2, iterations=15)
        corrector.apply_batch(EditBatch.build(deletions=[(0, 1), (0, 2)]))
        corrector.apply_batch(EditBatch.build(insertions=[(0, 1)]))
        state = corrector.state
        assert all(state.srcs[0][t] == 1 for t in range(1, 16))
        state.validate(g)


class TestCascade:
    def test_example2_propagation_tree(self):
        """The paper's Example 2: a path 5-4-3-2-1 carrying label 5 along a
        propagation chain; deleting edge (4,5) must update the whole chain."""
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
        propagator = ReferencePropagator(g, seed=0)
        state = propagator.state
        # Manually build the paper's propagation tree: at iteration t, vertex
        # (5-t) picks label 5 from its right neighbour.
        for t in range(1, 5):
            state.begin_iteration()
            for v in sorted(g.vertices()):
                picker = 5 - t
                if v == picker:
                    state.append_pick(v, label=5, src=v + 1, pos=t - 1)
                else:
                    nbr = sorted(g.neighbors_view(v))[0]
                    state.append_pick(v, label=state.labels[nbr][0], src=nbr, pos=0)
        state.validate(g)
        assert [state.labels[v][5 - v] for v in (4, 3, 2, 1)] == [5, 5, 5, 5]

        corrector = CorrectionPropagator(propagator)
        report = corrector.apply_batch(EditBatch.build(deletions=[(4, 5)]))
        state.validate(g)
        # Vertex 4 lost its only path to label 5; the new label (3's initial
        # or its own) must have cascaded through 3, 2 and 1.
        assert state.labels[4][1] != 5
        for v, t in [(3, 2), (2, 3), (1, 4)]:
            src, pos = state.provenance(v, t)
            assert state.labels[v][t] == state.labels[src][pos]
        assert report.touched_labels >= 4

    def test_cascade_counts_in_report(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=9)
        report = corrector.apply_batch(
            EditBatch.build(deletions=[(0, 1), (0, 2), (0, 3)])
        )
        assert report.touched_labels >= report.repicked - report.cascade_corrections
        assert report.value_changes <= report.touched_labels

    def test_no_spurious_touches_on_empty_batch_effects(self, cliques_ring):
        """A batch touching only a far-away clique leaves others' values
        consistent (validate checks the full bijection)."""
        corrector = make_corrector(cliques_ring, seed=4)
        corrector.apply_batch(EditBatch.build(deletions=[(24, 25)]))
        corrector.state.validate(cliques_ring)


class TestVertexLifecycle:
    def test_new_vertex_via_insertions(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=6)
        batch = EditBatch.build(insertions=[(100, 0), (100, 1), (100, 2)])
        corrector.apply_batch(batch)
        state = corrector.state
        state.validate(cliques_ring)
        assert cliques_ring.has_vertex(100)
        for t in range(1, 31):
            assert state.srcs[100][t] in {0, 1, 2}

    def test_remove_vertex(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=6)
        corrector.remove_vertex(0)
        assert not cliques_ring.has_vertex(0)
        assert not corrector.state.has_vertex(0)
        corrector.state.validate(cliques_ring)

    def test_remove_isolated_vertex(self):
        g = Graph.from_edges([(0, 1)], vertices=[5])
        corrector = make_corrector(g, seed=1, iterations=10)
        corrector.remove_vertex(5)
        assert not corrector.state.has_vertex(5)

    def test_remove_missing_vertex_raises(self, cliques_ring):
        corrector = make_corrector(cliques_ring, seed=6)
        with pytest.raises(KeyError):
            corrector.remove_vertex(12345)


class TestStatisticalEquivalence:
    """Theorems 4-5: post-update sources are uniform over new neighbours."""

    def test_repicked_sources_uniform_after_deletion(self):
        """Star centre loses one leaf; slots must stay uniform over the rest."""
        leaves = list(range(1, 7))
        counts = Counter()
        for seed in range(150):
            g = Graph.from_edges([(0, leaf) for leaf in leaves])
            corrector = make_corrector(g, seed=seed, iterations=10)
            corrector.apply_batch(EditBatch.build(deletions=[(0, 1)]))
            counts.update(
                corrector.state.srcs[0][t] for t in range(1, 11)
            )
        remaining = [l for l in leaves if l != 1]
        total = sum(counts[l] for l in remaining)
        assert counts[1] == 0
        for leaf in remaining:
            share = counts[leaf] / total
            assert abs(share - 1 / len(remaining)) < 0.05

    def test_sources_uniform_after_insertion(self):
        """Theorem 5: after adding a leaf, all 7 leaves are equally likely."""
        counts = Counter()
        for seed in range(150):
            g = Graph.from_edges([(0, leaf) for leaf in range(1, 7)])
            corrector = make_corrector(g, seed=seed, iterations=10)
            corrector.apply_batch(EditBatch.build(insertions=[(0, 7)]))
            counts.update(corrector.state.srcs[0][t] for t in range(1, 11))
        total = sum(counts.values())
        for leaf in range(1, 8):
            assert abs(counts[leaf] / total - 1 / 7) < 0.05

    def test_position_distribution_preserved(self):
        """Repicked positions remain uniform over [0, t)."""
        hits = Counter()
        for seed in range(200):
            g = Graph.from_edges([(0, 1), (0, 2)])
            corrector = make_corrector(g, seed=seed, iterations=8)
            corrector.apply_batch(EditBatch.build(deletions=[(0, 1)]))
            # slot (0, 8) has pos uniform over 0..7
            hits[corrector.state.poss[0][8]] += 1
        assert all(hits[p] > 8 for p in range(8))


class TestEtaAccounting:
    def test_touched_labels_within_analytical_bounds(self):
        """Measured η lies within [best, worst] of Section IV-D (loose)."""
        from repro.core.complexity import (
            best_case_updates,
            change_probability,
            worst_case_updates,
        )

        g = erdos_renyi(120, 0.1, seed=1)
        e = g.num_edges
        corrector = make_corrector(g, seed=3, iterations=40)
        batch = random_edit_batch(g, 20, seed=5)
        report = corrector.apply_batch(batch)
        pc = change_probability(e, len(batch.deletions), len(batch.insertions))
        best = best_case_updates(g.num_vertices, 40, pc)
        worst = worst_case_updates(g.num_vertices, 40, pc)
        # Statistical quantity: allow slack below best (finite sample).
        assert report.touched_labels <= worst * 2.0
        assert report.touched_labels >= best * 0.2

    def test_larger_batches_touch_more(self, sparse_random):
        small = make_corrector(sparse_random.copy(), seed=3, iterations=30)
        large = make_corrector(sparse_random.copy(), seed=3, iterations=30)
        r_small = small.apply_batch(random_edit_batch(sparse_random, 4, seed=1))
        r_large = large.apply_batch(random_edit_batch(sparse_random, 40, seed=1))
        assert r_large.touched_labels > r_small.touched_labels


class TestKeepLottery:
    def test_lottery_deterministic_per_epoch(self):
        assert keep_lottery_uniform(1, 2, 3, 1) == keep_lottery_uniform(1, 2, 3, 1)

    def test_lottery_fresh_per_batch(self):
        a = keep_lottery_uniform(1, 2, 3, 1)
        b = keep_lottery_uniform(1, 2, 3, 2)
        assert a != b

    def test_lottery_rate_matches_na_fraction(self):
        """Across slots, switch rate approximates n_a / (n_u + n_a)."""
        switches = 0
        trials = 4000
        for v in range(trials):
            if keep_lottery_uniform(0, v, 1, 1) < 2 / 6:
                switches += 1
        assert abs(switches / trials - 2 / 6) < 0.03
