"""Tests for the LFR benchmark generator (Table I parameters)."""

import math

import pytest

from repro.workloads.lfr import LFRParams, generate_lfr, solve_power_law_xmin


class TestLFRParams:
    def test_defaults_valid(self):
        params = LFRParams()
        assert params.num_overlapping == 100
        assert params.total_memberships == 1000 - 100 + 200

    def test_num_overlapping_rounds(self):
        params = LFRParams(n=250, overlap_fraction=0.1)
        assert params.num_overlapping == 25

    def test_rejects_avg_ge_max_degree(self):
        with pytest.raises(ValueError, match="avg_degree"):
            LFRParams(avg_degree=40, max_degree=40)

    def test_rejects_max_degree_ge_n(self):
        with pytest.raises(ValueError, match="max_degree"):
            LFRParams(n=30, avg_degree=5, max_degree=30)

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            LFRParams(mu=0.0)

    def test_rejects_bad_overlap_fraction(self):
        with pytest.raises(ValueError, match="overlap_fraction"):
            LFRParams(overlap_fraction=1.0)

    def test_community_bounds_fit_internal_degree(self):
        params = LFRParams(n=1000, avg_degree=16, max_degree=40, mu=0.1)
        cmin, cmax = params.community_size_bounds()
        # Must host (1-mu)*maxk internal neighbours.
        assert cmin >= math.ceil(0.9 * 40) + 1
        assert cmax >= cmin


class TestPowerLawSolver:
    @pytest.mark.parametrize("exponent", [1.0, 1.5, 2.0, 2.5, 3.0])
    def test_solved_xmin_reproduces_mean(self, exponent):
        """Analytical mean at the solved xmin equals the target."""
        xmax = 100.0
        target = 20.0
        xmin = solve_power_law_xmin(target, exponent, xmax)
        t = exponent
        if abs(t - 1.0) < 1e-9:
            mean = (xmax - xmin) / math.log(xmax / xmin)
        elif abs(t - 2.0) < 1e-9:
            norm = (xmin ** (1 - t) - xmax ** (1 - t)) / (t - 1)
            mean = math.log(xmax / xmin) / norm
        else:
            norm = (xmin ** (1 - t) - xmax ** (1 - t)) / (t - 1)
            mean = ((xmax ** (2 - t) - xmin ** (2 - t)) / (2 - t)) / norm
        assert mean == pytest.approx(target, rel=1e-5)

    def test_rejects_unreachable_mean(self):
        with pytest.raises(ValueError):
            solve_power_law_xmin(100.0, 2.0, 50.0)


class TestGenerateLFR:
    @pytest.fixture(scope="class")
    def lfr(self):
        return generate_lfr(
            LFRParams(n=400, avg_degree=12, max_degree=30, mu=0.1,
                      overlap_fraction=0.1, overlap_membership=2),
            seed=7,
        )

    def test_vertex_count(self, lfr):
        assert lfr.graph.num_vertices == 400

    def test_graph_invariants(self, lfr):
        lfr.graph.check_invariants()

    def test_average_degree_near_target(self, lfr):
        assert abs(lfr.graph.average_degree() - 12) < 2.0

    def test_max_degree_respected(self, lfr):
        assert lfr.graph.max_degree() <= 30

    def test_overlap_count_exact(self, lfr):
        assert len(lfr.overlapping_vertices) == 40

    def test_overlapping_vertices_have_om_memberships(self, lfr):
        for v in lfr.overlapping_vertices:
            assert len(lfr.memberships[v]) == 2

    def test_non_overlapping_have_one_membership(self, lfr):
        for v in range(400):
            if v not in lfr.overlapping_vertices:
                assert len(lfr.memberships[v]) == 1

    def test_memberships_distinct(self, lfr):
        for v, comms in lfr.memberships.items():
            assert len(comms) == len(set(comms))

    def test_every_vertex_in_its_communities(self, lfr):
        for v, comms in lfr.memberships.items():
            for c in comms:
                assert v in lfr.communities[c] or not lfr.communities[c]

    def test_community_sizes_within_bounds(self, lfr):
        cmin, cmax = lfr.params.community_size_bounds()
        for community in lfr.communities:
            assert cmin <= len(community) <= cmax

    def test_total_memberships(self, lfr):
        total = sum(len(c) for c in lfr.communities)
        assert total == lfr.params.total_memberships

    def test_empirical_mixing_near_mu(self, lfr):
        """Realised mixing within a loose tolerance of the target µ."""
        assert abs(lfr.empirical_mu() - 0.1) < 0.08

    def test_deterministic_per_seed(self):
        params = LFRParams(n=200, avg_degree=8, max_degree=20)
        a = generate_lfr(params, seed=3)
        b = generate_lfr(params, seed=3)
        assert a.graph == b.graph
        assert a.memberships == b.memberships

    def test_seed_changes_output(self):
        params = LFRParams(n=200, avg_degree=8, max_degree=20)
        assert generate_lfr(params, seed=3).graph != generate_lfr(params, seed=4).graph

    def test_om_three(self):
        lfr = generate_lfr(
            LFRParams(n=300, avg_degree=10, max_degree=24,
                      overlap_fraction=0.1, overlap_membership=3),
            seed=9,
        )
        assert all(len(lfr.memberships[v]) == 3 for v in lfr.overlapping_vertices)

    def test_higher_mu_raises_empirical_mixing(self):
        low = generate_lfr(
            LFRParams(n=300, avg_degree=10, max_degree=24, mu=0.1), seed=2
        )
        high = generate_lfr(
            LFRParams(n=300, avg_degree=10, max_degree=24, mu=0.3), seed=2
        )
        assert high.empirical_mu() > low.empirical_mu()

    def test_zero_overlap(self):
        lfr = generate_lfr(
            LFRParams(n=200, avg_degree=8, max_degree=20, overlap_fraction=0.0),
            seed=1,
        )
        assert len(lfr.overlapping_vertices) == 0
