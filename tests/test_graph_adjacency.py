"""Tests for repro.graph.adjacency — the dynamic binary graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            normalize_edge(3, 3)


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_from_edges_deduplicates(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[5, 6])
        assert g.has_vertex(5) and g.degree(5) == 0
        assert g.num_vertices == 4

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestVertexOps:
    def test_add_vertex_idempotent(self):
        g = Graph()
        assert g.add_vertex(1) is True
        assert g.add_vertex(1) is False
        assert g.num_vertices == 1

    def test_remove_vertex_returns_removed_edges(self, triangle):
        removed = triangle.remove_vertex(1)
        assert sorted(removed) == [(0, 1), (1, 2)]
        assert triangle.num_edges == 1
        triangle.check_invariants()

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_vertex(0)


class TestEdgeOps:
    def test_add_edge_creates_endpoints(self):
        g = Graph()
        assert g.add_edge(3, 7) is True
        assert g.has_vertex(3) and g.has_vertex(7)

    def test_add_edge_duplicate_returns_false(self):
        g = Graph()
        g.add_edge(0, 1)
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 1

    def test_add_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge(2, 2)

    def test_remove_edge(self, triangle):
        assert triangle.remove_edge(0, 1) is True
        assert triangle.remove_edge(0, 1) is False
        assert triangle.num_edges == 2

    def test_symmetry_maintained(self, triangle):
        triangle.remove_edge(2, 1)
        assert 2 not in triangle.neighbors_view(1)
        assert 1 not in triangle.neighbors_view(2)
        triangle.check_invariants()


class TestQueries:
    def test_neighbors_is_snapshot(self, triangle):
        snapshot = triangle.neighbors(0)
        triangle.remove_edge(0, 1)
        assert 1 in snapshot  # frozen copy unaffected

    def test_neighbors_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph().neighbors(9)

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_edges_canonical_and_unique(self, two_cliques_bridge):
        edges = list(two_cliques_bridge.edges())
        assert len(edges) == len(set(edges)) == two_cliques_bridge.num_edges
        assert all(u < v for u, v in edges)

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(2.0)

    def test_average_degree_empty(self):
        assert Graph().average_degree() == 0.0

    def test_max_degree(self, two_cliques_bridge):
        assert two_cliques_bridge.max_degree() == 4  # bridge endpoints

    def test_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert g.isolated_vertices() == [2]

    def test_contains_protocol(self, triangle):
        assert 0 in triangle
        assert (0, 1) in triangle
        assert (0, 9) not in triangle
        assert 9 not in triangle

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]


class TestStructure:
    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=[4])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2, 3], [4]]

    def test_subgraph_induced(self, two_cliques_bridge):
        sub = two_cliques_bridge.subgraph([0, 1, 2, 4])
        assert sub.num_vertices == 4
        assert sub.has_edge(0, 1) and sub.has_edge(0, 4)
        assert not sub.has_edge(4, 5)

    def test_equality(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b
        b.add_edge(0, 2)
        assert a != b

    def test_check_invariants_detects_corruption(self, triangle):
        triangle._adj[0].add(99)  # corrupt asymmetrically
        with pytest.raises(AssertionError):
            triangle.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    )
)
def test_property_invariants_after_random_ops(edge_ops):
    """Randomly toggling edges always preserves structural invariants."""
    g = Graph()
    for u, v in edge_ops:
        if g.has_edge(u, v):
            g.remove_edge(u, v)
        else:
            g.add_edge(u, v)
    g.check_invariants()
    assert g.num_edges == len(list(g.edges()))
