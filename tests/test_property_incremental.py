"""Property-based tests: Correction Propagation under arbitrary edit streams.

Hypothesis drives random sequences of edit batches (including vertex
arrivals, departures-by-isolation, and inverse batches) against the
incremental engine, asserting after every step that the *full* label-state
invariant set holds on the current graph — the strongest correctness
statement short of distribution equality, which the statistical tests in
``test_core_incremental.py`` cover.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch, apply_batch, diff_graphs
from repro.workloads.dynamic import random_edit_batch

N = 14
ITERATIONS = 12


def fresh_corrector(edges, seed):
    graph = Graph.from_edges(edges, vertices=range(N))
    propagator = ReferencePropagator(graph, seed=seed)
    propagator.propagate(ITERATIONS)
    return CorrectionPropagator(propagator), graph


edge_strategy = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
    lambda e: e[0] < e[1]
)
edges_strategy = st.sets(edge_strategy, min_size=5, max_size=30)


@st.composite
def batch_plans(draw):
    """A starting edge set plus a sequence of (insert-set, delete-set) plans.

    Plans are expressed as edge sets; at application time an edge listed for
    insertion that already exists (or for deletion that does not) is simply
    dropped, so every generated plan is applicable.
    """
    initial = draw(edges_strategy)
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(edge_strategy, max_size=5),
                st.sets(edge_strategy, max_size=5),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return initial, steps


def realise_batch(graph, inserts, deletes):
    """Filter a raw plan into a valid batch for the current graph."""
    ins = {e for e in inserts if not graph.has_edge(*e)}
    dels = {e for e in deletes if graph.has_edge(*e) and e not in ins}
    return EditBatch(insertions=frozenset(ins), deletions=frozenset(dels))


class TestRandomEditSequences:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batch_plans(), st.integers(0, 3))
    def test_invariants_hold_after_every_batch(self, plan, seed):
        initial, steps = plan
        corrector, graph = fresh_corrector(initial, seed)
        for inserts, deletes in steps:
            batch = realise_batch(graph, inserts, deletes)
            if not batch:
                continue
            corrector.apply_batch(batch)
            corrector.state.validate(graph)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges_strategy, st.integers(0, 3))
    def test_batch_then_inverse_restores_graph_and_keeps_state_valid(
        self, initial, seed
    ):
        """Applying a batch and its inverse returns to the original graph;
        the label state stays valid throughout (values may legitimately
        differ — repicks draw fresh epochs)."""
        corrector, graph = fresh_corrector(initial, seed)
        snapshot = graph.copy()
        batch = random_edit_batch(graph, min(6, graph.num_edges), seed=seed)
        corrector.apply_batch(batch)
        corrector.state.validate(graph)
        corrector.apply_batch(batch.inverse())
        corrector.state.validate(graph)
        assert graph == snapshot

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batch_plans(), st.integers(0, 2))
    def test_eta_counts_are_consistent(self, plan, seed):
        """Report bookkeeping: touched >= repicked slots; value changes
        cannot exceed touched slots."""
        initial, steps = plan
        corrector, graph = fresh_corrector(initial, seed)
        for inserts, deletes in steps:
            batch = realise_batch(graph, inserts, deletes)
            if not batch:
                continue
            report = corrector.apply_batch(batch)
            assert report.touched_labels >= 0
            assert report.repicked <= report.touched_labels
            assert report.value_changes <= report.touched_labels + report.cascade_corrections
            assert report.lottery_switches <= report.keep_lotteries

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges_strategy, st.integers(0, 2))
    def test_final_graph_equals_diff_replay(self, initial, seed):
        """The corrector's graph mutations match plain batch application."""
        corrector, graph = fresh_corrector(initial, seed)
        replay = graph.copy()
        for step in range(3):
            batch = random_edit_batch(graph, min(4, graph.num_edges), seed=step)
            corrector.apply_batch(batch)
            apply_batch(replay, batch)
        assert graph == replay
        assert diff_graphs(graph, replay).size == 0


class TestDegenerateGraphs:
    def test_empty_graph_any_insertions(self):
        corrector, graph = fresh_corrector(set(), seed=1)
        batch = EditBatch.build(insertions=[(0, 1), (2, 3), (0, 2)])
        corrector.apply_batch(batch)
        corrector.state.validate(graph)

    def test_full_teardown_to_empty(self):
        edges = {(i, j) for i in range(5) for j in range(i + 1, 5)}
        corrector, graph = fresh_corrector(edges, seed=2)
        batch = EditBatch.build(deletions=list(edges))
        corrector.apply_batch(batch)
        corrector.state.validate(graph)
        for v in range(5):
            assert corrector.state.labels[v] == [v] * (ITERATIONS + 1)

    def test_rebuild_after_teardown(self):
        edges = {(i, i + 1) for i in range(6)}
        corrector, graph = fresh_corrector(edges, seed=3)
        corrector.apply_batch(EditBatch.build(deletions=list(edges)))
        corrector.apply_batch(EditBatch.build(insertions=list(edges)))
        corrector.state.validate(graph)
        # After rebuild every slot must source from a live neighbour again.
        for v in range(6):
            nonfallback = [
                t
                for t in range(1, ITERATIONS + 1)
                if corrector.state.srcs[v][t] != -1
            ]
            assert nonfallback, f"vertex {v} kept only fallback slots"
