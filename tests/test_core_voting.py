"""Tests for the voting analysis — Figures 2-3 and Theorems 1-3."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.voting import (
    distribution_levels,
    max_win_probability,
    plurality_win_distribution,
    uniform_pick_distribution,
    uniform_pick_from_multiset,
)

sequences_strategy = st.lists(
    st.lists(st.integers(1, 5), min_size=1, max_size=3), min_size=1, max_size=4
)


class TestFigure2:
    """Exact reproduction of the paper's Example 1 (Figure 2 panels)."""

    def test_panel_a(self):
        # Voters (1,2), (1,2), (1,1): exact enumeration gives 3/4 vs 1/4.
        dist = plurality_win_distribution([(1, 2), (1, 2), (1, 1)])
        assert dist[1] == Fraction(3, 4)
        assert dist[2] == Fraction(1, 4)
        assert 3 not in dist

    def test_panel_b_side_effect_on_label_2(self):
        """Changing voter 3 from (1,1) to (1,3) perturbs label 2's chance.

        The paper says label 2's probability "drops"; exact enumeration gives
        1/4 -> 1/3 (it *rises*) — either way the qualitative claim holds:
        a change to one label affects labels nobody touched.  The exact
        values are recorded in EXPERIMENTS.md.
        """
        before = plurality_win_distribution([(1, 2), (1, 2), (1, 1)])
        after = plurality_win_distribution([(1, 2), (1, 2), (1, 3)])
        assert after[1] == Fraction(7, 12)
        assert after[1] < before[1]  # intuition confirmed for label 1
        assert after[3] == Fraction(1, 12)  # label 3 appears, as predicted
        assert after[2] == Fraction(1, 3)
        assert after[2] != before[2]  # untouched label 2 is still affected

    def test_panel_c_population_preserving_swap_changes_everything(self):
        """(1,2),(1,2),(1,1) vs (2,2),(1,1),(1,1): same populations,
        dramatically different win distribution."""
        original = plurality_win_distribution([(1, 2), (1, 2), (1, 1)])
        swapped = plurality_win_distribution([(2, 2), (1, 1), (1, 1)])
        assert swapped[1] == Fraction(1)
        assert swapped.get(2, Fraction(0)) == 0
        assert original[2] > 0

    def test_panel_d_removing_voter_revives_label_2(self):
        """Dropping voter 3 of panel (c) lifts label 2 from 0 to 1/2."""
        dist = plurality_win_distribution([(2, 2), (1, 1)])
        assert dist[1] == Fraction(1, 2)
        assert dist[2] == Fraction(1, 2)


class TestFigure3:
    """The Mi = (1,2,2,2,3,3,3,4,4,5) example."""

    MULTISET = (1, 2, 2, 2, 3, 3, 3, 4, 4, 5)

    def test_uniform_pick_proportional_to_population(self):
        dist = uniform_pick_from_multiset(self.MULTISET)
        assert dist[1] == Fraction(1, 10)
        assert dist[2] == Fraction(3, 10)
        assert dist[3] == Fraction(3, 10)
        assert dist[4] == Fraction(2, 10)
        assert dist[5] == Fraction(1, 10)

    def test_uniform_pick_has_more_levels_than_voting(self):
        """Voting yields a two-level distribution; uniform picking is smooth."""
        voting = plurality_win_distribution([(l,) for l in self.MULTISET])
        uniform = uniform_pick_from_multiset(self.MULTISET)
        assert distribution_levels(voting) <= 2
        assert distribution_levels(uniform) == 3


class TestTheorem1:
    """max Pu(l) <= max Pv(l) for any label multiset."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=8))
    def test_on_single_label_voters(self, multiset):
        voters = [(label,) for label in multiset]
        voting = plurality_win_distribution(voters)
        uniform = uniform_pick_from_multiset(multiset)
        assert max_win_probability(uniform) <= max_win_probability(voting)

    def test_equality_case(self):
        """With one unanimous label both processes are deterministic."""
        voters = [(7,), (7,), (7,)]
        assert max_win_probability(plurality_win_distribution(voters)) == 1
        assert max_win_probability(uniform_pick_from_multiset([7, 7, 7])) == 1


class TestTheorem2:
    """Uniform pick from M equals frequency in the union of sequences."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(1, 4), min_size=2, max_size=2),
            min_size=1,
            max_size=4,
        )
    )
    def test_union_frequency(self, seqs):
        dist = uniform_pick_distribution(seqs)
        union = [l for seq in seqs for l in seq]
        expected = uniform_pick_from_multiset(union)
        assert dist == expected

    def test_ragged_sequences_weight_per_voter(self):
        """Each voter contributes total mass 1/n over its own sequence."""
        dist = uniform_pick_distribution([(1,), (2, 3)])
        assert dist[1] == Fraction(1, 2)
        assert dist[2] == Fraction(1, 4)
        assert dist[3] == Fraction(1, 4)


class TestDistributionBasics:
    def test_plurality_sums_to_one(self):
        dist = plurality_win_distribution([(1, 2), (2, 3), (1, 3)])
        assert sum(dist.values()) == Fraction(1)

    def test_uniform_sums_to_one(self):
        dist = uniform_pick_distribution([(1, 2), (2, 3), (1, 3)])
        assert sum(dist.values()) == Fraction(1)

    @settings(max_examples=60, deadline=None)
    @given(sequences_strategy)
    def test_property_both_sum_to_one(self, seqs):
        assert sum(plurality_win_distribution(seqs).values()) == Fraction(1)
        assert sum(uniform_pick_distribution(seqs).values()) == Fraction(1)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            plurality_win_distribution([()])
        with pytest.raises(ValueError):
            uniform_pick_from_multiset([])

    def test_max_win_probability_empty_rejected(self):
        with pytest.raises(ValueError):
            max_win_probability({})
