"""Tests on the embedded real-world datasets."""

import pytest

from repro.baselines.slpa import slpa_detect
from repro.core.detector import detect_communities
from repro.metrics.quality import overlapping_f1
from repro.workloads.realworld import karate_club, les_miserables


@pytest.fixture(scope="module")
def karate():
    return karate_club()


@pytest.fixture(scope="module")
def lesmis():
    return les_miserables()


class TestKarateClub:
    def test_statistics(self, karate):
        assert karate.graph.num_vertices == 34
        assert karate.graph.num_edges == 78
        karate.graph.check_invariants()

    def test_factions_partition_the_club(self, karate):
        assert len(karate.factions) == 2
        union = karate.factions[0] | karate.factions[1]
        assert union == set(karate.graph.vertices())
        assert not (karate.factions[0] & karate.factions[1])

    def test_leaders_in_opposite_factions(self, karate):
        instructor_side = [f for f in karate.factions if 0 in f][0]
        assert 33 not in instructor_side

    def test_rslpa_separates_factions(self, karate):
        """Detected communities align with the historical split.

        The split is famously fuzzy around the boundary members, so we
        require a solid-but-not-perfect F1 against the two factions.
        """
        cover = detect_communities(
            karate.graph, seed=2, iterations=200, tau_step=0.005
        )
        score = overlapping_f1(cover.as_sets(), karate.factions)
        assert score > 0.6, f"F1 vs factions too low: {score:.3f}"

    def test_slpa_also_separates(self, karate):
        cover = slpa_detect(karate.graph, seed=3, iterations=100, threshold=0.3)
        score = overlapping_f1(cover.as_sets(), karate.factions)
        assert score > 0.4, f"F1 vs factions too low: {score:.3f}"

    def test_rslpa_beats_trivial_cover(self, karate):
        """Beats the all-in-one-community cover on best-match F1.

        (LFK NMI scores the trivial cover a generous 0.5 on a balanced
        two-faction truth, so F1 is the sharper yardstick here.)
        """
        cover = detect_communities(
            karate.graph, seed=2, iterations=200, tau_step=0.005
        )
        detected = overlapping_f1(cover.as_sets(), karate.factions)
        trivial = overlapping_f1(
            [set(karate.graph.vertices())], karate.factions
        )
        assert detected > trivial


class TestLesMiserables:
    def test_statistics(self, lesmis):
        assert lesmis.graph.num_vertices == 77
        assert 100 <= lesmis.graph.num_edges <= 254  # thresholded subset
        lesmis.graph.check_invariants()

    def test_vertex_names_cover_graph(self, lesmis):
        assert set(lesmis.vertex_names) == set(lesmis.graph.vertices())
        assert any("Valjean" in name for name in lesmis.vertex_names.values())

    def test_threshold_strengthens_density(self):
        strict = les_miserables(keep_fraction=0.3)
        loose = les_miserables(keep_fraction=0.9)
        assert strict.graph.num_edges < loose.graph.num_edges

    def test_detection_produces_plausible_cover(self, lesmis):
        cover = detect_communities(
            lesmis.graph, seed=1, iterations=150, tau_step=0.01
        )
        assert 2 <= len(cover) <= 30
        # Valjean, the protagonist, belongs to at least one community.
        valjean = next(
            v for v, name in lesmis.vertex_names.items() if name == "Valjean"
        )
        assert cover.memberships_of(valjean)

    def test_incremental_update_on_real_data(self, lesmis):
        from repro.core.detector import RSLPADetector
        from repro.workloads.dynamic import random_edit_batch

        detector = RSLPADetector(
            lesmis.graph, seed=2, iterations=100, tau_step=0.01
        ).fit()
        batch = random_edit_batch(detector.graph, 10, seed=4)
        report = detector.update(batch)
        assert report.touched_labels > 0
        detector.label_state.validate(detector.graph)
