"""Tests for label-state and cover persistence."""

import io
import json

import pytest

from repro.core.communities import Cover
from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.core.serialize import (
    cover_from_dict,
    cover_to_dict,
    load_cover,
    load_state,
    save_cover,
    save_state,
    state_from_dict,
    state_to_dict,
)
from repro.graph.generators import ring_of_cliques
from repro.workloads.dynamic import random_edit_batch


@pytest.fixture
def state(cliques_ring):
    propagator = ReferencePropagator(cliques_ring, seed=5)
    propagator.propagate(20)
    return propagator.state


class TestStateRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, state):
        rebuilt = state_from_dict(state_to_dict(state))
        assert rebuilt.labels == state.labels
        assert rebuilt.srcs == state.srcs
        assert rebuilt.poss == state.poss
        assert rebuilt.epochs == state.epochs
        assert rebuilt.receivers == state.receivers
        assert rebuilt.num_iterations == state.num_iterations

    def test_file_roundtrip(self, state, tmp_path):
        path = str(tmp_path / "state.json")
        save_state(state, path)
        rebuilt = load_state(path)
        assert rebuilt.labels == state.labels

    def test_stream_roundtrip(self, state):
        buffer = io.StringIO()
        save_state(state, buffer)
        buffer.seek(0)
        rebuilt = load_state(buffer)
        assert rebuilt.receivers == state.receivers

    def test_document_is_plain_json(self, state):
        text = json.dumps(state_to_dict(state))
        assert "repro.label_state" in text

    def test_loaded_state_supports_incremental_updates(self, state, cliques_ring):
        """The round-tripped state must be fully operational."""
        rebuilt = state_from_dict(state_to_dict(state))
        propagator = ReferencePropagator.from_state(cliques_ring, 5, rebuilt)
        corrector = CorrectionPropagator(propagator)
        batch = random_edit_batch(cliques_ring, 4, seed=1)
        corrector.apply_batch(batch)
        rebuilt.validate(cliques_ring)

    def test_epochs_preserved_after_updates(self, state, cliques_ring):
        propagator = ReferencePropagator.from_state(cliques_ring, 5, state)
        corrector = CorrectionPropagator(propagator)
        corrector.apply_batch(random_edit_batch(cliques_ring, 6, seed=2))
        rebuilt = state_from_dict(state_to_dict(state))
        assert rebuilt.epochs == state.epochs

    def test_from_state_rejects_vertex_mismatch(self, state):
        from repro.graph.adjacency import Graph

        with pytest.raises(ValueError, match="do not match"):
            ReferencePropagator.from_state(Graph.from_edges([(0, 1)]), 5, state)


class TestStateValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a label-state"):
            state_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, state):
        payload = state_to_dict(state)
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            state_from_dict(payload)

    def test_rejects_ragged_arrays(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["srcs"] = first["srcs"][:-1]
        with pytest.raises(ValueError, match="ragged"):
            state_from_dict(payload)

    def test_rejects_wrong_length(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        for key in ("labels", "srcs", "poss", "epochs"):
            first[key] = first[key] + [0]
        with pytest.raises(ValueError, match="sequence length"):
            state_from_dict(payload)

    def test_rejects_unknown_source(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["srcs"][1] = 10_000
        with pytest.raises((ValueError, AssertionError)):
            state_from_dict(payload)

    def test_corrupted_label_caught_by_validate(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["labels"][1] = 987654  # breaks label == source-value invariant
        with pytest.raises(AssertionError):
            state_from_dict(payload)


class TestCoverRoundtrip:
    def test_dict_roundtrip(self):
        cover = Cover([{0, 1, 2}, {2, 3}])
        assert cover_from_dict(cover_to_dict(cover)) == cover

    def test_file_roundtrip(self, tmp_path):
        cover = Cover([{5, 6}, {7}])
        path = str(tmp_path / "cover.json")
        save_cover(cover, path)
        assert load_cover(path) == cover

    def test_stream_roundtrip(self):
        cover = Cover([{1, 2, 3}])
        buffer = io.StringIO()
        save_cover(cover, buffer)
        buffer.seek(0)
        assert load_cover(buffer) == cover

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a cover"):
            cover_from_dict({"format": "nope"})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            cover_from_dict({"format": "repro.cover", "version": -1})
