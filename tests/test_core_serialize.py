"""Tests for label-state and cover persistence."""

import io
import json

import pytest

from repro.core.communities import Cover
from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.core.serialize import (
    cover_from_dict,
    cover_to_dict,
    load_cover,
    load_state,
    save_cover,
    save_state,
    state_from_dict,
    state_to_dict,
)
from repro.workloads.dynamic import random_edit_batch


@pytest.fixture
def state(cliques_ring):
    propagator = ReferencePropagator(cliques_ring, seed=5)
    propagator.propagate(20)
    return propagator.state


class TestStateRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, state):
        rebuilt = state_from_dict(state_to_dict(state))
        assert rebuilt.labels == state.labels
        assert rebuilt.srcs == state.srcs
        assert rebuilt.poss == state.poss
        assert rebuilt.epochs == state.epochs
        assert rebuilt.receivers == state.receivers
        assert rebuilt.num_iterations == state.num_iterations

    def test_file_roundtrip(self, state, tmp_path):
        path = str(tmp_path / "state.json")
        save_state(state, path)
        rebuilt = load_state(path)
        assert rebuilt.labels == state.labels

    def test_stream_roundtrip(self, state):
        buffer = io.StringIO()
        save_state(state, buffer)
        buffer.seek(0)
        rebuilt = load_state(buffer)
        assert rebuilt.receivers == state.receivers

    def test_document_is_plain_json(self, state):
        text = json.dumps(state_to_dict(state))
        assert "repro.label_state" in text

    def test_loaded_state_supports_incremental_updates(self, state, cliques_ring):
        """The round-tripped state must be fully operational."""
        rebuilt = state_from_dict(state_to_dict(state))
        propagator = ReferencePropagator.from_state(cliques_ring, 5, rebuilt)
        corrector = CorrectionPropagator(propagator)
        batch = random_edit_batch(cliques_ring, 4, seed=1)
        corrector.apply_batch(batch)
        rebuilt.validate(cliques_ring)

    def test_epochs_preserved_after_updates(self, state, cliques_ring):
        propagator = ReferencePropagator.from_state(cliques_ring, 5, state)
        corrector = CorrectionPropagator(propagator)
        corrector.apply_batch(random_edit_batch(cliques_ring, 6, seed=2))
        rebuilt = state_from_dict(state_to_dict(state))
        assert rebuilt.epochs == state.epochs

    def test_from_state_rejects_vertex_mismatch(self, state):
        from repro.graph.adjacency import Graph

        with pytest.raises(ValueError, match="do not match"):
            ReferencePropagator.from_state(Graph.from_edges([(0, 1)]), 5, state)


class TestStateValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a label-state"):
            state_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, state):
        payload = state_to_dict(state)
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            state_from_dict(payload)

    def test_rejects_ragged_arrays(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["srcs"] = first["srcs"][:-1]
        with pytest.raises(ValueError, match="ragged"):
            state_from_dict(payload)

    def test_rejects_wrong_length(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        for key in ("labels", "srcs", "poss", "epochs"):
            first[key] = first[key] + [0]
        with pytest.raises(ValueError, match="sequence length"):
            state_from_dict(payload)

    def test_rejects_unknown_source(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["srcs"][1] = 10_000
        with pytest.raises((ValueError, AssertionError)):
            state_from_dict(payload)

    def test_corrupted_label_caught_by_validate(self, state):
        payload = state_to_dict(state)
        first = next(iter(payload["vertices"].values()))
        first["labels"][1] = 987654  # breaks label == source-value invariant
        with pytest.raises(AssertionError):
            state_from_dict(payload)


class TestCoverRoundtrip:
    def test_dict_roundtrip(self):
        cover = Cover([{0, 1, 2}, {2, 3}])
        assert cover_from_dict(cover_to_dict(cover)) == cover

    def test_file_roundtrip(self, tmp_path):
        cover = Cover([{5, 6}, {7}])
        path = str(tmp_path / "cover.json")
        save_cover(cover, path)
        assert load_cover(path) == cover

    def test_stream_roundtrip(self):
        cover = Cover([{1, 2, 3}])
        buffer = io.StringIO()
        save_cover(cover, buffer)
        buffer.seek(0)
        assert load_cover(buffer) == cover

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a cover"):
            cover_from_dict({"format": "nope"})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            cover_from_dict({"format": "repro.cover", "version": -1})


class TestArrayStateNpz:
    """The array-native npz sidecar: no dict-state detour on either side."""

    @pytest.fixture
    def array_state(self, state):
        from repro.core.labels_array import ArrayLabelState

        return ArrayLabelState.from_label_state(state)

    def test_npz_roundtrip_is_bitwise(self, array_state, tmp_path):
        import numpy as np

        path = str(tmp_path / "state.npz")
        save_state(array_state, path)
        rebuilt = load_state(path)
        assert type(rebuilt).__name__ == "ArrayLabelState"
        for name in ("labels", "srcs", "poss", "epochs"):
            assert np.array_equal(getattr(rebuilt, name), getattr(array_state, name))
        assert np.array_equal(rebuilt.alive, array_state.alive)

    def test_label_state_converts_through_npz(self, state, tmp_path):
        path = str(tmp_path / "state.npz")
        save_state(state, path)
        rebuilt = load_state(path)
        assert rebuilt.to_label_state().labels == state.labels

    def test_array_state_converts_through_json(self, array_state, state, tmp_path):
        path = str(tmp_path / "state.json")
        save_state(array_state, path)
        rebuilt = load_state(path)
        assert rebuilt.labels == state.labels
        assert rebuilt.receivers == state.receivers

    def test_binary_stream_roundtrip(self, array_state):
        import numpy as np

        buffer = io.BytesIO()
        save_state(array_state, buffer)
        buffer.seek(0)
        rebuilt = load_state(buffer)
        assert np.array_equal(rebuilt.labels, array_state.labels)

    def test_format_sniffed_not_suffixed(self, array_state, tmp_path):
        """A .npz file renamed to .json still loads as an array state."""
        import os

        npz = str(tmp_path / "state.npz")
        save_state(array_state, npz)
        disguised = str(tmp_path / "state.json")
        os.rename(npz, disguised)
        assert type(load_state(disguised)).__name__ == "ArrayLabelState"

    def test_roundtripped_state_supports_updates(self, array_state, cliques_ring, tmp_path):
        from repro.core.incremental_fast import FastCorrectionPropagator
        from repro.workloads.dynamic import random_edit_batch

        path = str(tmp_path / "state.npz")
        save_state(array_state, path)
        rebuilt = load_state(path)
        corrector = FastCorrectionPropagator(cliques_ring.copy(), rebuilt, 5)
        corrector.apply_batch(random_edit_batch(cliques_ring, 4, seed=1))
        rebuilt.validate()

    def test_rejects_wrong_array_version(self, array_state, tmp_path):
        import numpy as np

        from repro.core.serialize import state_to_arrays

        arrays = state_to_arrays(array_state)
        arrays["version"] = np.array(999)
        path = str(tmp_path / "state.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_state(path)

    def test_rejects_missing_arrays(self, array_state, tmp_path):
        import numpy as np

        from repro.core.serialize import state_to_arrays

        arrays = state_to_arrays(array_state)
        del arrays["epochs"]
        path = str(tmp_path / "state.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="missing"):
            load_state(path)

    def test_rejects_foreign_npz(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "other.npz")
        np.savez_compressed(path, values=np.arange(3))
        with pytest.raises(ValueError, match="format"):
            load_state(path)

    def test_non_seekable_stream_keeps_json_contract(self, state):
        """Pipes/stdin (no seeking) must still load JSON states."""

        class OneWayReader(io.TextIOBase):
            def __init__(self, text):
                self._inner = io.StringIO(text)

            def read(self, size=-1):
                return self._inner.read(size)

            def seekable(self):
                return False

        buffer = io.StringIO()
        save_state(state, buffer)
        rebuilt = load_state(OneWayReader(buffer.getvalue()))
        assert rebuilt.labels == state.labels
