"""End-to-end integration tests: the experiments in miniature.

These tie everything together the way the paper's evaluation does:
LFR ground truth -> detection -> NMI; dynamic streams -> incremental
maintenance -> quality equivalence with from-scratch recomputation.
"""


from repro.baselines.slpa_fast import fast_slpa_detect
from repro.core.detector import RSLPADetector, detect_communities
from repro.graph.edits import apply_batch
from repro.metrics.nmi import nmi_overlapping
from repro.metrics.quality import overlapping_f1
from repro.workloads.dynamic import random_edit_batch
from repro.workloads.lfr import LFRParams, generate_lfr


class TestStaticQuality:
    def test_rslpa_nmi_on_lfr(self, small_lfr):
        """rSLPA reaches a solid NMI on an LFR graph with overlap.

        At n=250 the LFK NMI is noisy (the paper's 0.8+ scores are at
        n=10000); 0.45 is several sigma above random covers (~0.1).
        """
        cover = detect_communities(
            small_lfr.graph, seed=0, iterations=120, tau_step=0.01
        )
        score = nmi_overlapping(
            cover.as_sets(), small_lfr.communities, small_lfr.graph.num_vertices
        )
        assert score > 0.45, f"NMI too low: {score:.3f}"

    def test_slpa_nmi_on_lfr(self, small_lfr):
        cover = fast_slpa_detect(small_lfr.graph, seed=1, iterations=60)
        score = nmi_overlapping(
            cover.as_sets(), small_lfr.communities, small_lfr.graph.num_vertices
        )
        assert score > 0.55, f"NMI too low: {score:.3f}"

    def test_rslpa_beats_random_cover(self, small_lfr):
        """Sanity: detected communities beat a shuffled cover by a margin."""
        import random

        cover = detect_communities(
            small_lfr.graph, seed=2, iterations=120, tau_step=0.01
        )
        detected = nmi_overlapping(
            cover.as_sets(), small_lfr.communities, small_lfr.graph.num_vertices
        )
        rng = random.Random(0)
        vertices = list(range(small_lfr.graph.num_vertices))
        rng.shuffle(vertices)
        shuffled = []
        cursor = 0
        for community in small_lfr.communities:
            shuffled.append(set(vertices[cursor : cursor + len(community)]))
            cursor = (cursor + len(community)) % len(vertices)
        random_score = nmi_overlapping(
            shuffled, small_lfr.communities, small_lfr.graph.num_vertices
        )
        assert detected > random_score + 0.3

    def test_f1_consistent_with_nmi(self, small_lfr):
        """A second metric agrees that detection is far above chance."""
        cover = detect_communities(
            small_lfr.graph, seed=1, iterations=120, tau_step=0.01
        )
        f1 = overlapping_f1(cover.as_sets(), small_lfr.communities)
        assert f1 > 0.45


class TestDynamicEquivalence:
    """The headline incremental claim, measured end to end."""

    def test_incremental_quality_matches_scratch(self, small_lfr):
        """After a batch, incremental updating reaches the same NMI as
        re-running from scratch on the new graph (within noise)."""
        graph = small_lfr.graph.copy()
        detector = RSLPADetector(graph, seed=3, iterations=100, tau_step=0.01).fit()
        batch = random_edit_batch(detector.graph, 60, seed=9)
        detector.update(batch)
        incremental_cover = detector.communities()

        scratch_graph = small_lfr.graph.copy()
        apply_batch(scratch_graph, batch)
        scratch_cover = detect_communities(
            scratch_graph, seed=3, iterations=100, tau_step=0.01
        )

        n = scratch_graph.num_vertices
        nmi_incremental = nmi_overlapping(
            incremental_cover.as_sets(), small_lfr.communities, n
        )
        nmi_scratch = nmi_overlapping(
            scratch_cover.as_sets(), small_lfr.communities, n
        )
        assert abs(nmi_incremental - nmi_scratch) < 0.2, (
            f"incremental {nmi_incremental:.3f} vs scratch {nmi_scratch:.3f}"
        )

    def test_incremental_and_scratch_covers_similar(self, small_lfr):
        """The two covers agree with each other, not just with the truth."""
        graph = small_lfr.graph.copy()
        detector = RSLPADetector(graph, seed=5, iterations=100, tau_step=0.01).fit()
        batch = random_edit_batch(detector.graph, 40, seed=2)
        detector.update(batch)

        scratch_graph = small_lfr.graph.copy()
        apply_batch(scratch_graph, batch)
        scratch_cover = detect_communities(
            scratch_graph, seed=5, iterations=100, tau_step=0.01
        )
        agreement = nmi_overlapping(
            detector.communities().as_sets(),
            scratch_cover.as_sets(),
            scratch_graph.num_vertices,
        )
        assert agreement > 0.5

    def test_long_stream_stays_valid_and_accurate(self, small_lfr):
        """10 consecutive batches: state stays valid, quality does not decay
        (graph topology barely changes, so NMI should stay in a band)."""
        detector = RSLPADetector(
            small_lfr.graph.copy(), seed=7, iterations=80, tau_step=0.01
        ).fit()
        n = small_lfr.graph.num_vertices
        scores = []
        for step in range(10):
            batch = random_edit_batch(detector.graph, 10, seed=100 + step)
            detector.update(batch)
            detector.label_state.validate(detector.graph)
            scores.append(
                nmi_overlapping(
                    detector.communities().as_sets(), small_lfr.communities, n
                )
            )
        assert min(scores) > max(scores) - 0.35
        assert scores[-1] > 0.4


class TestOverlapDetection:
    def test_detected_overlap_on_high_om(self):
        """With om=3 ground truth, rSLPA finds overlapping vertices."""
        lfr = generate_lfr(
            LFRParams(n=200, avg_degree=10, max_degree=22,
                      overlap_fraction=0.15, overlap_membership=2),
            seed=4,
        )
        cover = detect_communities(lfr.graph, seed=1, iterations=120, tau_step=0.01)
        # We don't demand exact overlap recovery, only that the mechanism
        # produces overlapping assignments on overlapping ground truth.
        assert len(cover) >= 2
