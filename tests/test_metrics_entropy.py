"""Tests for the community-size entropy (Eq. 1)."""

import math

import pytest

from repro.metrics.entropy import size_entropy, size_entropy_from_sizes


class TestSizeEntropy:
    def test_single_community_full_graph(self):
        # p = 1 -> -1 * ln 1 = 0
        assert size_entropy([{0, 1, 2, 3}], 4) == pytest.approx(0.0)

    def test_two_half_communities(self):
        # 2 * (-(1/2) ln(1/2)) = ln 2
        assert size_entropy([{0, 1}, {2, 3}], 4) == pytest.approx(math.log(2))

    def test_uniform_split_maximises(self):
        """For fixed community count, equal sizes beat skewed sizes."""
        even = size_entropy_from_sizes([5, 5], 10)
        skew = size_entropy_from_sizes([9, 1], 10)
        assert even > skew

    def test_more_communities_more_entropy(self):
        few = size_entropy_from_sizes([10, 10], 20)
        many = size_entropy_from_sizes([5, 5, 5, 5], 20)
        assert many > few

    def test_partial_coverage_allowed(self):
        """Vertices outside all communities contribute nothing (Eq. 1)."""
        value = size_entropy_from_sizes([2], 10)
        assert value == pytest.approx(-(0.2) * math.log(0.2))

    def test_zero_sizes_ignored(self):
        assert size_entropy_from_sizes([0, 4], 8) == size_entropy_from_sizes([4], 8)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            size_entropy_from_sizes([-1], 4)

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            size_entropy_from_sizes([1], 0)
