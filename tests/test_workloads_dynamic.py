"""Tests for the dynamic workload generator (Section V-B1 protocol)."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.edits import apply_batch
from repro.graph.generators import erdos_renyi
from repro.workloads.dynamic import (
    EditStream,
    random_deletions,
    random_edit_batch,
    random_insertions,
    vertex_arrival_batch,
    vertex_departure_batch,
)


@pytest.fixture
def graph():
    return erdos_renyi(50, 0.12, seed=8)


class TestRandomEditBatch:
    def test_half_and_half(self, graph):
        batch = random_edit_batch(graph, 20, seed=1)
        assert len(batch.deletions) == 10
        assert len(batch.insertions) == 10

    def test_odd_size_extra_insertion(self, graph):
        batch = random_edit_batch(graph, 7, seed=1)
        assert len(batch.insertions) == 4
        assert len(batch.deletions) == 3

    def test_batch_applies_cleanly(self, graph):
        batch = random_edit_batch(graph, 30, seed=2)
        batch.validate_against(graph)
        apply_batch(graph, batch)
        graph.check_invariants()

    def test_deterministic(self, graph):
        assert random_edit_batch(graph, 10, seed=3) == random_edit_batch(
            graph, 10, seed=3
        )

    def test_seed_variation(self, graph):
        assert random_edit_batch(graph, 10, seed=3) != random_edit_batch(
            graph, 10, seed=4
        )

    def test_size_zero(self, graph):
        assert random_edit_batch(graph, 0, seed=0).size == 0

    def test_too_many_deletions_rejected(self):
        tiny = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError, match="deletions"):
            random_edit_batch(tiny, 10, seed=0)


class TestInsertionsDeletions:
    def test_insertions_are_non_edges(self, graph):
        batch = random_insertions(graph, 15, seed=5)
        assert len(batch.insertions) == 15
        for u, v in batch.insertions:
            assert not graph.has_edge(u, v)

    def test_deletions_are_edges(self, graph):
        batch = random_deletions(graph, 15, seed=5)
        assert len(batch.deletions) == 15
        for u, v in batch.deletions:
            assert graph.has_edge(u, v)

    def test_insertions_on_near_complete_graph(self):
        g = erdos_renyi(10, 1.0, seed=0)
        g.remove_edge(0, 1)
        g.remove_edge(2, 3)
        batch = random_insertions(g, 2, seed=1)
        assert batch.insertions == frozenset({(0, 1), (2, 3)})

    def test_insertions_exceeding_capacity_rejected(self):
        g = erdos_renyi(5, 1.0, seed=0)
        with pytest.raises(ValueError, match="non-edges"):
            random_insertions(g, 1, seed=0)


class TestVertexBatches:
    def test_arrival(self, graph):
        batch = vertex_arrival_batch(graph, new_vertex=999, num_links=5, seed=2)
        assert len(batch.insertions) == 5
        assert all(999 in edge for edge in batch.insertions)

    def test_arrival_existing_vertex_rejected(self, graph):
        with pytest.raises(ValueError, match="already exists"):
            vertex_arrival_batch(graph, new_vertex=0, num_links=2, seed=0)

    def test_departure(self, graph):
        v = max(graph.vertices(), key=graph.degree)
        batch = vertex_departure_batch(graph, v)
        assert len(batch.deletions) == graph.degree(v)
        apply_batch(graph, batch)
        assert graph.degree(v) == 0

    def test_departure_missing_vertex_rejected(self, graph):
        with pytest.raises(ValueError):
            vertex_departure_batch(graph, 10_000)


class TestEditStream:
    def test_stream_does_not_mutate_input(self, graph):
        snapshot = graph.copy()
        stream = EditStream(graph, batch_size=6, seed=1)
        stream.take(3)
        assert graph == snapshot

    def test_batches_compose(self, graph):
        stream = EditStream(graph, batch_size=6, seed=1)
        replay = graph.copy()
        for batch in stream.take(5):
            batch.validate_against(replay)
            apply_batch(replay, batch)
        assert replay == stream.graph

    def test_batches_differ_over_time(self, graph):
        stream = EditStream(graph, batch_size=4, seed=1)
        batches = stream.take(4)
        assert len({b for b in batches}) > 1

    def test_iterator_protocol(self, graph):
        stream = EditStream(graph, batch_size=2, seed=0)
        iterator = iter(stream)
        first = next(iterator)
        assert first.size == 2


class TestTimedEdits:
    def test_requires_rate(self, graph):
        stream = EditStream(graph, batch_size=4, seed=1)
        with pytest.raises(ValueError, match="rate"):
            list(stream.timed_edits(4))

    def test_rejects_non_positive_rate(self, graph):
        with pytest.raises(ValueError, match="rate"):
            EditStream(graph, batch_size=4, seed=1, rate=0.0)

    def test_yields_requested_count(self, graph):
        stream = EditStream(graph, batch_size=4, seed=1, rate=10.0)
        edits = list(stream.timed_edits(10))
        assert len(edits) == 10

    def test_arrival_times_strictly_increase(self, graph):
        stream = EditStream(graph, batch_size=4, seed=1, rate=10.0)
        times = [t for t, _, _, _ in stream.timed_edits(20)]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert stream.clock == times[-1]

    def test_deterministic_per_seed(self, graph):
        first = list(EditStream(graph, batch_size=4, seed=3, rate=5.0).timed_edits(12))
        second = list(EditStream(graph, batch_size=4, seed=3, rate=5.0).timed_edits(12))
        assert first == second
        other = list(EditStream(graph, batch_size=4, seed=4, rate=5.0).timed_edits(12))
        assert first != other

    def test_edit_sequence_matches_untimed_stream(self, graph):
        """Timing is metadata only: the edits are the untimed batches."""
        timed = EditStream(graph, batch_size=4, seed=7, rate=100.0)
        untimed = EditStream(graph, batch_size=4, seed=7)
        edits = list(timed.timed_edits(12))
        batches = untimed.take(3)
        for batch, chunk in zip(batches, [edits[i:i + 4] for i in range(0, 12, 4)]):
            ins = {(u, v) for _, op, u, v in chunk if op == "+"}
            dels = {(u, v) for _, op, u, v in chunk if op == "-"}
            assert ins == batch.insertions
            assert dels == batch.deletions

    def test_mean_gap_tracks_rate(self, graph):
        rate = 50.0
        stream = EditStream(graph, batch_size=10, seed=2, rate=rate)
        times = [t for t, _, _, _ in stream.timed_edits(400)]
        mean_gap = times[-1] / len(times)
        assert 0.5 / rate < mean_gap < 2.0 / rate

    def test_zero_batch_size_rejected(self, graph):
        stream = EditStream(graph, batch_size=0, seed=1, rate=5.0)
        with pytest.raises(ValueError, match="batch_size"):
            list(stream.timed_edits(1))
