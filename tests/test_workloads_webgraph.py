"""Tests for the synthetic web-graph substitute (Table II shape)."""

import pytest

from repro.workloads.webgraph import (
    WebGraphParams,
    generate_webgraph,
    webgraph_statistics,
)


@pytest.fixture(scope="module")
def result():
    return generate_webgraph(WebGraphParams(n=3000, avg_out_degree=10), seed=1)


class TestGeneration:
    def test_vertex_count(self, result):
        assert result.graph.num_vertices == 3000

    def test_graph_invariants(self, result):
        result.graph.check_invariants()

    def test_no_self_loops_in_directed_counts(self, result):
        # every directed edge was counted in both in and out tallies
        assert sum(result.out_degrees.values()) == result.num_directed_edges
        assert sum(result.in_degrees.values()) == result.num_directed_edges

    def test_binary_edges_at_most_directed(self, result):
        assert result.graph.num_edges <= result.num_directed_edges

    def test_avg_directed_degree_near_target(self, result):
        avg = result.num_directed_edges / 3000
        assert abs(avg - 10) < 2.5

    def test_deterministic(self):
        params = WebGraphParams(n=800, avg_out_degree=8)
        a = generate_webgraph(params, seed=3)
        b = generate_webgraph(params, seed=3)
        assert a.graph == b.graph

    def test_out_tail_heavier_than_in_tail(self, result):
        """The paper's crawl has max out-degree >> max in-degree."""
        assert max(result.out_degrees.values()) > max(result.in_degrees.values())

    def test_degree_skew(self, result):
        """Heavy-tailed: the max degree dwarfs the average."""
        avg = result.num_directed_edges / 3000
        assert max(result.out_degrees.values()) > 8 * avg


class TestStatistics:
    def test_rows_match_table_ii(self, result):
        stats = dict(webgraph_statistics(result))
        assert set(stats) == {
            "# nodes",
            "# edges",
            "avg. degree",
            "max in-degree",
            "max out-degree",
        }
        assert stats["# nodes"] == 3000
        assert stats["# edges"] == result.num_directed_edges
        assert stats["avg. degree"] == pytest.approx(
            result.num_directed_edges / 3000
        )

    def test_max_degrees_match_raw(self, result):
        stats = dict(webgraph_statistics(result))
        assert stats["max in-degree"] == max(result.in_degrees.values())
        assert stats["max out-degree"] == max(result.out_degrees.values())


class TestParams:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            WebGraphParams(max_out_fraction=0.0)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            WebGraphParams(n=-5)
