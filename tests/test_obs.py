"""Unit tests for the observability plane (:mod:`repro.obs`).

Covers the metrics registry (counter/gauge/histogram semantics, the
fixed log-scale buckets, snapshot/merge, Prometheus exposition), the
span recorder and :class:`TraceResult` exports (summary table, Chrome
trace, JSON persistence round trip), and the zero-overhead contract:
with tracing off, *nothing* constructs or calls into ``repro.obs`` —
enforced here with a booby-trapped module stub.

Tests named ``*smoke*`` are the CI subset (``-k "obs and smoke"``).
"""

import json
import sys
import types

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    DRIVER,
    MetricsRegistry,
    Obs,
    Span,
    TraceRecorder,
    TraceResult,
    validate_chrome_trace,
)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_semantics_smoke(self):
        reg = MetricsRegistry()
        reg.counter("engine.bytes").inc(10)
        reg.counter("engine.bytes").inc(5)
        reg.gauge("service.queue_depth").set(3)
        reg.gauge("service.queue_depth").set(7)
        reg.histogram("service.fsync_seconds").observe(0.001)
        reg.histogram("service.fsync_seconds").observe(0.004)
        snap = reg.snapshot()
        assert snap["counters"]["engine.bytes"] == 15
        assert snap["gauges"]["service.queue_depth"] == 7
        hist = snap["histograms"]["service.fsync_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.005)
        assert hist["min"] == 0.001 and hist["max"] == 0.004

    def test_histogram_buckets_share_the_fixed_ruler(self):
        # Values spanning sub-ms timings to GB byte counts all land in a
        # bucket; the final slot catches overflow past 2^30.
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        for value in (1e-7, 0.002, 1.0, 4096, 2.0 ** 29, 2.0 ** 40):
            hist.observe(value)
        assert sum(hist.buckets) == 6
        assert hist.buckets[-1] == 1  # only the 2^40 observation overflows
        assert len(hist.buckets) == len(BUCKET_BOUNDS) + 1

    def test_merge_adds_counters_and_buckets_last_writes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.histogram("h").observe(0.5)
        b.histogram("h").observe(8.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 7
        assert snap["gauges"]["g"] == 2.0
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 0.5 and hist["max"] == 8.0
        assert sum(hist["buckets"].values()) == 2

    def test_merge_accepts_json_round_tripped_bucket_keys(self):
        # Off the control pipe bucket keys are ints; after TraceResult
        # JSON persistence they come back as strings.  Both must fold.
        a = MetricsRegistry()
        a.histogram("h").observe(1.5)
        snapshot = json.loads(json.dumps(a.snapshot()))
        b = MetricsRegistry()
        b.merge(snapshot)
        assert b.histogram("h").count == 1
        assert sum(b.histogram("h").buckets) == 1

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("transport.shm.segment_grows").inc(4)
        reg.gauge("service.coalesce_ratio").set(0.25)
        reg.histogram("service.fsync_seconds").observe(0.002)
        text = reg.to_prometheus()
        assert "# TYPE repro_transport_shm_segment_grows counter" in text
        assert "repro_transport_shm_segment_grows 4" in text
        assert "repro_service_coalesce_ratio 0.25" in text
        assert 'repro_service_fsync_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_service_fsync_seconds_count 1" in text


# ----------------------------------------------------------------------
# Trace recorder + TraceResult
# ----------------------------------------------------------------------
def _make_obs():
    """An Obs holding two engine spans and one metric, for export tests."""
    obs = Obs()
    obs.meta["mode"] = "unit-test"
    obs.trace.record(
        "engine.compute", 1_000, plane="array", worker=0, superstep=2,
        end_ns=4_000,
    )
    obs.trace.record(
        "engine.barrier_wait", 4_000, plane="array", worker=DRIVER,
        superstep=2, end_ns=5_000,
    )
    obs.metrics.counter("transport.shm.segment_grows").inc()
    return obs


class TestTraceRecorder:
    def test_record_take_merge_round_trip_smoke(self):
        rec = TraceRecorder()
        rec.record("engine.pack", 10, plane="t", worker=1, superstep=0,
                   end_ns=25)
        shipped = rec.take()  # wire form: plain tuples, buffer drained
        assert len(rec) == 0 and shipped == [("engine.pack", "t", 1, 0, 10, 15)]
        driver = TraceRecorder()
        driver.merge(shipped)
        (span,) = driver.snapshot()
        assert isinstance(span, Span)
        assert span.name == "engine.pack" and span.dur_ns == 15
        assert span.phase == "pack"

    def test_bounded_ring_drops_oldest(self):
        rec = TraceRecorder(capacity=4)
        for step in range(10):
            rec.record("s", step, superstep=step, end_ns=step + 1)
        assert len(rec) == 4 and rec.dropped == 6
        assert [s.superstep for s in rec.snapshot()] == [6, 7, 8, 9]


class TestTraceResult:
    def test_summary_and_phase_totals_smoke(self):
        result = _make_obs().result()
        totals = result.phase_totals()
        assert totals["engine.compute"] == pytest.approx(3e-6)
        assert list(totals) == ["engine.compute", "engine.barrier_wait"]
        assert result.workers() == [DRIVER, 0]
        table = result.summary()
        assert "engine.compute" in table and "2 spans" in table

    def test_chrome_trace_export_validates_smoke(self):
        result = _make_obs().result()
        payload = result.to_chrome_trace()
        validate_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"engine.compute", "engine.barrier_wait"} <= names
        # Timeline metadata: a named thread row per worker (driver first).
        threads = [e for e in payload["traceEvents"] if e["ph"] == "M"
                   and e["name"] == "thread_name"]
        assert {t["args"]["name"] for t in threads} == {"driver", "worker-0"}
        # And the whole object survives JSON encoding (what --chrome writes).
        validate_chrome_trace(json.loads(json.dumps(payload)))

    def test_save_load_round_trip_smoke(self, tmp_path):
        result = _make_obs().result({"command": "unit"})
        path = str(tmp_path / "run.trace.json")
        result.save(path)
        loaded = TraceResult.load(path)
        assert loaded.spans == result.spans
        assert loaded.meta["mode"] == "unit-test"
        assert loaded.meta["command"] == "unit"
        assert loaded.to_prometheus() == result.to_prometheus()
        validate_chrome_trace(loaded.to_chrome_trace())

    def test_load_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version 1"):
            TraceResult.load(str(path))

    def test_validate_chrome_trace_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError, match="field 'ph'"):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0}
                ]}
            )
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0,
                     "ts": 1.0, "dur": -2.0}
                ]}
            )


# ----------------------------------------------------------------------
# The zero-overhead contract (satellite: disabled-path stub test)
# ----------------------------------------------------------------------
class TestDisabledPathZeroOverhead:
    def test_untraced_run_never_calls_into_obs_smoke(self, monkeypatch):
        """With trace off, no engine/service path touches repro.obs.

        The module is swapped for a booby trap: any call to any of its
        entry points records itself and fails the test.  Attribute
        *access* alone is allowed (a gated ``from repro.obs import Obs``
        would already be a contract violation and trips the trap the
        moment the import body runs — the stub has no real classes).

        This is the dynamic half of the contract; the static half is
        lint rule RPL002 (``repro lint``), which rejects unguarded
        module-level ``repro.obs`` imports before they ever run.
        """
        calls = []

        def _trap(name):
            def raiser(*args, **kwargs):
                calls.append(name)
                raise AssertionError(
                    f"repro.obs.{name} called on the disabled path"
                )
            return raiser

        stub = types.ModuleType("repro.obs")
        for name in (
            "Obs", "MetricsRegistry", "TraceRecorder", "TraceResult",
            "Span", "validate_chrome_trace",
        ):
            setattr(stub, name, _trap(name))
        for key in ("repro.obs", "repro.obs.metrics", "repro.obs.trace"):
            monkeypatch.setitem(sys.modules, key, stub)

        from repro.api import AlgoConfig, ExecutionConfig
        from repro.api.run import detect, run_distributed
        from repro.graph.generators import ring_of_cliques

        graph = ring_of_cliques(3, 5)
        algo = AlgoConfig(seed=3, iterations=8)
        local = detect(graph, algo, ExecutionConfig())
        dist = run_distributed(graph, algo, ExecutionConfig(num_workers=2))
        assert dist.comm_stats.obs is None
        assert local.trace is None and dist.trace is None

        from repro.service import CommunityService

        service = CommunityService(graph, seed=3, iterations=8, batch_size=2)
        service.start()
        service.submit_insert(0, 7)
        service.submit_insert(1, 9)
        service.flush()
        service.refresh()
        service.communities_of(0)
        assert service.obs is None
        assert service.trace_result() is None
        assert "metrics" not in service.stats()
        service.close()

        assert calls == []


# ----------------------------------------------------------------------
# Satellite: stats objects as benchmark-record dicts
# ----------------------------------------------------------------------
class TestStatsAsDict:
    def test_superstep_stats_as_dict(self):
        from repro.distributed.metrics import SuperstepStats

        stats = SuperstepStats(
            superstep=3, messages=10, remote_messages=4, bytes=100,
            remote_bytes=40,
        )
        assert stats.as_dict() == {
            "superstep": 3, "messages": 10, "remote_messages": 4,
            "bytes": 100, "remote_bytes": 40,
        }

    def test_comm_stats_as_dict_splats_into_records_smoke(self):
        from repro.distributed.metrics import (
            CommStats, RecoveryStats, SuperstepStats,
        )

        stats = CommStats(recovery=RecoveryStats(checkpoints_taken=2))
        stats.record(SuperstepStats(0, messages=5, bytes=50))
        stats.record(SuperstepStats(1, messages=7, remote_messages=2,
                                    bytes=70, remote_bytes=20))
        record = {"workers": 2, **stats.as_dict()}
        assert record["supersteps"] == 2
        assert record["messages"] == 12 and record["remote_messages"] == 2
        assert record["bytes"] == 120 and record["remote_bytes"] == 20
        assert record["recovery"]["checkpoints_taken"] == 2
        assert "per_superstep" not in record
        full = stats.as_dict(per_superstep=True)
        assert [s["superstep"] for s in full["per_superstep"]] == [0, 1]
        json.dumps(full)  # benchmark records must be JSON-serialisable
