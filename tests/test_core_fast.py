"""Tests for the vectorised propagator — bit-equality with the reference."""

import numpy as np
import pytest

from repro.core.fast import FastPropagator, graph_to_csr
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, ring_of_cliques


class TestCSR:
    def test_sorted_adjacency(self, cliques_ring):
        indptr, indices = graph_to_csr(cliques_ring)
        for v in cliques_ring.vertices():
            nbrs = indices[indptr[v] : indptr[v + 1]].tolist()
            assert nbrs == sorted(cliques_ring.neighbors_view(v))

    def test_requires_contiguous_ids(self):
        g = Graph.from_edges([(0, 5)])
        with pytest.raises(ValueError, match="contiguous"):
            graph_to_csr(g)

    def test_empty_graph(self):
        indptr, indices = graph_to_csr(Graph())
        assert indptr.tolist() == [0]
        assert len(indices) == 0


class TestBitEquality:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_matches_reference_on_cliques(self, seed):
        g = ring_of_cliques(4, 5)
        ref = ReferencePropagator(g.copy(), seed=seed)
        ref.propagate(30)
        fast = FastPropagator(g.copy(), seed=seed)
        fast.propagate(30)
        for v in range(g.num_vertices):
            assert fast.labels[:, v].tolist() == ref.state.labels[v]
            assert fast.srcs[:, v].tolist() == ref.state.srcs[v]
            assert fast.poss[:, v].tolist() == ref.state.poss[v]

    def test_matches_reference_on_random_graph_with_isolated(self):
        g = erdos_renyi(40, 0.05, seed=3)  # likely has degree-0 vertices
        ref = ReferencePropagator(g.copy(), seed=9)
        ref.propagate(20)
        fast = FastPropagator(g.copy(), seed=9)
        fast.propagate(20)
        for v in range(40):
            assert fast.labels[:, v].tolist() == ref.state.labels[v]

    def test_incremental_horizon_matches(self):
        g = ring_of_cliques(3, 4)
        once = FastPropagator(g.copy(), seed=2)
        once.propagate(24)
        twice = FastPropagator(g.copy(), seed=2)
        twice.propagate(10)
        twice.propagate(14)
        assert np.array_equal(once.labels, twice.labels)


class TestExport:
    def test_to_label_state_validates(self, cliques_ring):
        fast = FastPropagator(cliques_ring, seed=5)
        fast.propagate(15)
        state = fast.to_label_state()
        state.validate(cliques_ring)
        assert state.num_iterations == 15

    def test_to_label_state_equals_reference_state(self, cliques_ring):
        fast = FastPropagator(cliques_ring.copy(), seed=5)
        fast.propagate(15)
        ref = ReferencePropagator(cliques_ring.copy(), seed=5)
        ref.propagate(15)
        exported = fast.to_label_state()
        assert exported.labels == ref.state.labels
        assert exported.receivers == ref.state.receivers

    def test_zero_degree_export(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        fast = FastPropagator(g, seed=1)
        fast.propagate(8)
        state = fast.to_label_state()
        state.validate(g)
        assert state.labels[2] == [2] * 9

    def test_to_array_state_equals_dict_export(self, cliques_ring):
        fast = FastPropagator(cliques_ring, seed=5)
        fast.propagate(15)
        dict_state = fast.to_label_state()
        array_state = fast.to_array_state()
        back = array_state.to_label_state()
        assert back.labels == dict_state.labels
        assert back.srcs == dict_state.srcs
        assert back.poss == dict_state.poss
        assert back.epochs == dict_state.epochs
        assert back.receivers == dict_state.receivers
        array_state.validate(cliques_ring)

    def test_to_array_state_owns_its_matrices(self, cliques_ring):
        fast = FastPropagator(cliques_ring, seed=5)
        fast.propagate(10)
        array_state = fast.to_array_state()
        array_state.labels[1, 0] = -99  # must not write through to the engine
        assert fast.labels[1, 0] != -99

    def test_to_array_state_zero_degree(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        fast = FastPropagator(g, seed=1)
        fast.propagate(8)
        array_state = fast.to_array_state()
        array_state.validate(g)
        assert array_state.labels[:, 2].tolist() == [2] * 9


class TestEdgeCases:
    def test_edgeless_graph(self):
        g = Graph.from_edges((), vertices=range(5))
        fast = FastPropagator(g, seed=0)
        fast.propagate(6)
        for v in range(5):
            assert fast.labels[:, v].tolist() == [v] * 7

    def test_zero_iterations(self, cliques_ring):
        fast = FastPropagator(cliques_ring, seed=0)
        fast.propagate(0)
        assert fast.num_iterations == 0

    def test_rejects_negative(self, cliques_ring):
        with pytest.raises(ValueError):
            FastPropagator(cliques_ring, seed=0).propagate(-3)
