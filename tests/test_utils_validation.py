"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_passes_and_returns_value(self):
        assert check_type(5, int, "x") == 5

    def test_accepts_tuple_of_types(self):
        assert check_type(1.5, (int, float), "x") == 1.5

    def test_raises_with_parameter_name(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("no", int, "x")

    def test_tuple_error_message_lists_alternatives(self):
        with pytest.raises(TypeError, match="int or float"):
            check_type("no", (int, float), "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1, "p") == 0.1

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="p must be > 0"):
            check_positive(bad, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive("1", "p")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="n must be >= 0"):
            check_non_negative(-1, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0, 0.5, 1])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction(0.3, "f") == 0.3

    @pytest.mark.parametrize("bad", [0, 1, -0.2, 1.2])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValueError):
            check_fraction(bad, "f")
