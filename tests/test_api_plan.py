"""The unified execution-plan API: resolution matrix, shims, registry.

Three contracts are pinned here:

1. **Matrix equivalence** — ``resolve_plan`` makes exactly the choices the
   old scattered resolvers (``detector._resolve_use_fast``,
   ``cluster._resolve_engine``, ``cluster._build_backend_shards``,
   ``fit_distributed``'s state-format pick) made, for every
   (backend × engine × shard_backend × contiguity × multiprocess) cell.
2. **Shim round-trips** — every pre-existing public keyword still works,
   maps onto the same ``RunPlan``, warns where deprecated, and produces
   bit-identical covers per seed.
3. **Registry** — components resolve by name, plugins register uniformly,
   collisions and unknown names fail loudly.
"""

import itertools

import pytest

from repro.api import (
    AlgoConfig,
    ExecutionConfig,
    GraphCaps,
    PARTITIONERS,
    Registry,
    ServicePlanConfig,
    detect,
    plan_for,
    resolve_plan,
    run_distributed,
    update,
)
from repro.core.detector import RSLPADetector
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.partition import ContiguousPartitioner, HashPartitioner

ITERATIONS = 25


def oracle(backend, engine, shard_backend, contiguous, is_csr=False):
    """The pre-PR-5 scattered resolvers, replicated verbatim.

    Returns (use_fast, shard_backend, engine, state_format) or raises
    ValueError exactly where the old code paths did.
    """
    # detector._resolve_use_fast
    if backend == "fast" and not contiguous:
        raise ValueError("contiguous")
    use_fast = backend == "fast" or (backend == "auto" and contiguous)
    # cluster._build_backend_shards (a CSRGraph input always took CSR)
    sb = shard_backend
    if sb == "auto":
        sb = "csr" if (contiguous or is_csr) else "dict"
    if is_csr:
        sb = "csr"
    if sb == "csr" and not (contiguous or is_csr):
        raise ValueError("contiguous")
    # cluster._resolve_engine (auto prefers the columnar plane on CSR shards)
    eng = engine
    if eng == "auto":
        eng = "array" if sb == "csr" else "reference"
    # detector.fit_distributed's state-format pick
    sf = "array" if use_fast else "dict"
    return use_fast, sb, eng, sf


class TestResolutionMatrix:
    @pytest.mark.parametrize(
        "backend,engine,shard_backend,contiguous,multiprocess",
        list(
            itertools.product(
                ("auto", "fast", "reference"),
                ("auto", "reference", "array"),
                ("auto", "dict", "csr"),
                (True, False),
                (True, False),
            )
        ),
    )
    def test_matches_old_resolvers(
        self, backend, engine, shard_backend, contiguous, multiprocess
    ):
        caps = GraphCaps(
            num_vertices=10, num_edges=20, contiguous_ids=contiguous
        )
        config = ExecutionConfig(
            backend=backend,
            num_workers=3,
            engine=engine,
            shard_backend=shard_backend,
            multiprocess=multiprocess,
        )
        try:
            use_fast, sb, eng, sf = oracle(
                backend, engine, shard_backend, contiguous
            )
        except ValueError:
            with pytest.raises(ValueError, match="contiguous"):
                resolve_plan(caps, config)
            return
        plan = resolve_plan(caps, config)
        assert plan.use_fast == use_fast
        assert plan.backend == ("fast" if use_fast else "reference")
        assert plan.shard_backend == sb
        assert plan.engine == eng
        assert plan.state_format == sf
        assert plan.multiprocess == multiprocess
        assert plan.mode == "distributed"

    def test_local_plan_has_no_distributed_axes(self):
        caps = GraphCaps(num_vertices=4, num_edges=3, contiguous_ids=True)
        plan = resolve_plan(caps, ExecutionConfig())
        assert plan.mode == "local"
        assert plan.engine is None
        assert plan.shard_backend is None
        assert plan.state_format is None

    def test_csr_input_always_takes_csr_slicer(self):
        caps = GraphCaps(
            num_vertices=4, num_edges=3, contiguous_ids=True, is_csr=True
        )
        plan = resolve_plan(
            caps, ExecutionConfig(num_workers=2, shard_backend="dict")
        )
        assert plan.shard_backend == "csr"
        assert "CSRGraph" in plan.explain()

    def test_explicit_array_state_format_needs_contiguous_ids(self):
        caps = GraphCaps(num_vertices=4, num_edges=3, contiguous_ids=False)
        with pytest.raises(ValueError, match="state_format='array'"):
            resolve_plan(
                caps,
                ExecutionConfig(
                    backend="reference",
                    num_workers=2,
                    shard_backend="dict",
                    state_format="array",
                ),
            )

    def test_invalid_choices_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionConfig(backend="spark")
        with pytest.raises(ValueError, match="engine"):
            ExecutionConfig(engine="spark")
        with pytest.raises(ValueError, match="shard_backend"):
            ExecutionConfig(shard_backend="arrow")
        with pytest.raises(ValueError, match="state_format"):
            ExecutionConfig(state_format="parquet")
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionConfig(num_workers=-1)

    def test_explain_records_requested_and_reason(self):
        caps = GraphCaps(num_vertices=10, num_edges=9, contiguous_ids=False)
        plan = resolve_plan(caps, ExecutionConfig(num_workers=2))
        text = plan.explain()
        assert "auto -> reference" in text
        assert "non-contiguous" in text
        assert "auto -> dict" in text

    def test_graph_caps_probe(self):
        assert GraphCaps.of(Graph.from_edges([(0, 1), (1, 2)])).contiguous_ids
        assert not GraphCaps.of(Graph.from_edges([(10, 20)])).contiguous_ids
        assert GraphCaps.of(Graph()).contiguous_ids  # empty graph is trivial
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1)]))
        caps = GraphCaps.of(csr)
        assert caps.is_csr and caps.contiguous_ids


class TestDeprecationShims:
    def test_detector_engine_alias_round_trip(self, cliques_ring):
        with pytest.warns(DeprecationWarning, match="deprecated alias"):
            legacy = RSLPADetector(
                cliques_ring, seed=3, iterations=ITERATIONS, engine="fast"
            )
        modern = RSLPADetector(
            cliques_ring, seed=3, iterations=ITERATIONS, backend="fast"
        )
        assert legacy.plan() == modern.plan()
        assert legacy.fit().communities() == modern.fit().communities()

    def test_detector_kwargs_and_configs_resolve_same_plan(self, cliques_ring):
        by_kwargs = RSLPADetector(
            cliques_ring, seed=3, iterations=ITERATIONS, backend="reference"
        )
        by_configs = RSLPADetector(
            cliques_ring,
            algo=AlgoConfig(seed=3, iterations=ITERATIONS),
            execution=ExecutionConfig(backend="reference"),
        )
        assert by_kwargs.plan() == by_configs.plan()
        assert by_kwargs.fit().communities() == by_configs.fit().communities()

    def test_detector_rejects_mixed_config_and_kwargs(self, cliques_ring):
        with pytest.raises(ValueError, match="not both"):
            RSLPADetector(
                cliques_ring, backend="fast", execution=ExecutionConfig()
            )
        with pytest.raises(ValueError, match="not both"):
            RSLPADetector(cliques_ring, seed=3, algo=AlgoConfig(seed=3))

    def test_cluster_kwargs_and_config_bit_identical(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_rslpa

        by_kwargs, stats_k = run_distributed_rslpa(
            cliques_ring,
            seed=5,
            iterations=ITERATIONS,
            num_workers=3,
            shard_backend="csr",
            engine="array",
        )
        by_config, stats_c = run_distributed_rslpa(
            cliques_ring,
            seed=5,
            iterations=ITERATIONS,
            config=ExecutionConfig(
                num_workers=3,
                shard_backend="csr",
                engine="array",
                state_format="dict",
            ),
        )
        assert by_kwargs.labels == by_config.labels
        assert by_kwargs.receivers == by_config.receivers
        assert stats_k.total_messages == stats_c.total_messages
        assert stats_k.total_bytes == stats_c.total_bytes

    def test_cluster_config_without_workers_inherits_wrapper_default(
        self, cliques_ring
    ):
        from repro.distributed.cluster import run_distributed_rslpa

        # The README's own example: a config that only picks the axes must
        # not resolve a local (0-worker) plan inside a distributed wrapper.
        state, stats = run_distributed_rslpa(
            cliques_ring,
            seed=5,
            iterations=ITERATIONS,
            config=ExecutionConfig(shard_backend="csr", engine="array"),
        )
        assert state.num_iterations == ITERATIONS
        assert stats.total_messages > 0

    def test_service_config_forms_bit_identical(self, cliques_ring):
        from repro.service import CommunityService, ServiceConfig

        flat = CommunityService(
            cliques_ring.copy(),
            config=ServiceConfig(seed=3, iterations=ITERATIONS, batch_size=4),
        ).start()
        structured = CommunityService(
            cliques_ring.copy(),
            config=ServicePlanConfig(
                algo=AlgoConfig(seed=3, iterations=ITERATIONS),
                batch_size=4,
            ),
        ).start()
        assert flat.config == structured.config
        assert flat.cover() == structured.cover()
        for service in (flat, structured):
            service.submit_insert(0, 12)
            service.submit_insert(3, 18)
        assert flat.cover() == structured.cover()

    def test_service_plan_config_drives_distributed_start(self, cliques_ring):
        from repro.service import CommunityService

        local = CommunityService(
            cliques_ring.copy(),
            config=ServicePlanConfig(
                algo=AlgoConfig(seed=3, iterations=ITERATIONS)
            ),
        ).start()
        distributed = CommunityService(
            cliques_ring.copy(),
            config=ServicePlanConfig(
                algo=AlgoConfig(seed=3, iterations=ITERATIONS),
                execution=ExecutionConfig(num_workers=2),
            ),
        ).start()  # no start() keywords: workers come from the config
        assert distributed.detector.comm_stats is not None
        assert local.cover() == distributed.cover()


class TestResultObjects:
    def test_detect_result_matches_detector_path(self, cliques_ring):
        result = detect(
            cliques_ring,
            AlgoConfig(seed=1, iterations=ITERATIONS, tau_step=0.005),
        )
        manual = RSLPADetector(
            cliques_ring, seed=1, iterations=ITERATIONS, tau_step=0.005
        ).fit()
        assert result.cover == manual.communities()
        assert result.num_communities == len(manual.communities())
        assert result.plan.mode == "local"
        assert result.comm_stats is None
        assert result.timings["fit_seconds"] >= 0
        assert result.state is result.detector.state

    def test_detect_result_distributed(self, cliques_ring):
        result = detect(
            cliques_ring,
            AlgoConfig(seed=1, iterations=ITERATIONS),
            ExecutionConfig(num_workers=3),
        )
        assert result.plan.mode == "distributed"
        assert result.comm_stats is not None
        local = detect(cliques_ring, AlgoConfig(seed=1, iterations=ITERATIONS))
        assert result.cover == local.cover

    def test_update_result_continues_lifecycle(self, cliques_ring):
        from repro.graph.edits import EditBatch

        result = detect(cliques_ring, AlgoConfig(seed=2, iterations=ITERATIONS))
        batch = EditBatch.build(deletions=[(0, 1)])
        upd = update(result.detector, batch, extract=True)
        assert upd.report.batch_size == 1
        assert upd.cover is not None
        assert upd.plan is result.detector.last_plan

    def test_last_plan_reports_what_actually_ran(self, cliques_ring):
        # A local fit() under a distributed config must record a local plan…
        detector = RSLPADetector(
            cliques_ring,
            algo=AlgoConfig(seed=1, iterations=ITERATIONS),
            execution=ExecutionConfig(num_workers=4),
        ).fit()
        assert detector.last_plan.mode == "local"
        assert detector.comm_stats is None
        # …and fit_distributed(num_workers=0) still runs (and records) a
        # distributed fit instead of letting the plan and the run disagree.
        detector2 = RSLPADetector(
            cliques_ring, seed=1, iterations=ITERATIONS
        ).fit_distributed(num_workers=0)
        assert detector2.last_plan.mode == "distributed"
        assert detector2.last_plan.num_workers == 4
        assert detector2.comm_stats is not None
        assert detector.communities() == detector2.communities()

    def test_empty_graph_fit_records_reference_plan(self):
        detector = RSLPADetector(Graph(), iterations=5).fit()
        assert detector.last_plan.backend == "reference"
        assert detector.array_state is None
        assert "empty graph" in detector.last_plan.explain()

    def test_service_config_round_trips_through_plan_config(self):
        from repro.service import ServiceConfig
        from repro.service.facade import _flatten_plan_config

        flat = ServiceConfig(seed=9, iterations=50, backend="reference",
                             batch_size=7)
        assert _flatten_plan_config(flat.as_plan_config()) == flat
        # the flat backend wins over a conflicting execution config, the
        # same precedence the service applies to keyword overrides
        structured = flat.as_plan_config(ExecutionConfig(backend="fast",
                                                         num_workers=3))
        assert structured.execution.backend == "reference"
        assert structured.execution.num_workers == 3

    def test_run_distributed_result(self, cliques_ring):
        result = run_distributed(
            cliques_ring, AlgoConfig(seed=2, iterations=ITERATIONS)
        )
        assert result.plan.mode == "distributed"
        assert result.comm_stats.total_messages > 0


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("x", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", object())
        registry.register("x", "replacement", overwrite=True)
        assert registry.resolve("x") == "replacement"

    def test_unknown_name_lists_registered(self):
        registry = Registry("thing")
        registry.register("known", 1)
        with pytest.raises(KeyError, match="unknown thing 'missing'"):
            registry.resolve("missing")

    def test_lazy_loader_resolves_once(self):
        registry = Registry("thing")
        calls = []
        registry.register_lazy("lazy", lambda: calls.append(1) or "built")
        assert registry.resolve("lazy") == "built"
        assert registry.resolve("lazy") == "built"
        assert calls == [1]

    def test_failing_lazy_loader_stays_registered(self):
        registry = Registry("thing")
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise ImportError("transient")
            return "recovered"

        registry.register_lazy("flaky", flaky)
        with pytest.raises(ImportError):
            registry.resolve("flaky")
        assert "flaky" in registry  # not silently dropped
        assert registry.resolve("flaky") == "recovered"

    def test_builtin_partitioners_resolve(self):
        caps = GraphCaps(num_vertices=8, num_edges=10, contiguous_ids=True)
        assert isinstance(
            PARTITIONERS.resolve("hash")(2, caps), HashPartitioner
        )
        ranged = PARTITIONERS.resolve("range")(2, caps)
        assert isinstance(ranged, ContiguousPartitioner)
        assert ranged.num_vertices == 8

    def test_named_partitioner_through_config(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_rslpa

        by_name, _ = run_distributed_rslpa(
            cliques_ring,
            seed=5,
            iterations=ITERATIONS,
            config=ExecutionConfig(
                num_workers=3, partitioner="range", state_format="dict"
            ),
        )
        by_instance, _ = run_distributed_rslpa(
            cliques_ring,
            seed=5,
            iterations=ITERATIONS,
            num_workers=3,
            partitioner=ContiguousPartitioner(3, cliques_ring.num_vertices),
        )
        assert by_name.labels == by_instance.labels

    def test_plugin_partitioner_round_trip(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_rslpa

        name = "salted-test-partitioner"
        PARTITIONERS.register(
            name, lambda workers, caps: HashPartitioner(workers, salt=7)
        )
        try:
            plan = plan_for(
                cliques_ring,
                ExecutionConfig(num_workers=2, partitioner=name),
            )
            assert plan.partitioner == name
            state, _ = run_distributed_rslpa(
                cliques_ring,
                seed=5,
                iterations=ITERATIONS,
                config=ExecutionConfig(num_workers=2, partitioner=name),
            )
            assert state.num_iterations == ITERATIONS
        finally:
            PARTITIONERS._entries.pop(name, None)

    def test_plugin_engine_name_passes_config_validation(self, cliques_ring):
        from repro.api import ENGINES

        name = "test-plugin-plane"
        ENGINES.register(name, lambda shards, part: None)
        try:
            plan = plan_for(
                cliques_ring, ExecutionConfig(num_workers=2, engine=name)
            )
            assert plan.engine == name  # explicit names pass through
        finally:
            ENGINES._entries.pop(name, None)
        with pytest.raises(ValueError, match="engine"):
            ExecutionConfig(engine=name)  # gone from the registry again

    def test_unknown_partitioner_rejected_at_plan_time(self, cliques_ring):
        with pytest.raises(ValueError, match="unknown partitioner"):
            plan_for(
                cliques_ring,
                ExecutionConfig(num_workers=2, partitioner="nonexistent"),
            )


class TestMultiprocessPlan:
    def test_multiprocess_matches_in_process(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_rslpa

        in_process, stats_i = run_distributed_rslpa(
            cliques_ring, seed=4, iterations=15, num_workers=2
        )
        multiproc, stats_m = run_distributed_rslpa(
            cliques_ring,
            seed=4,
            iterations=15,
            config=ExecutionConfig(
                num_workers=2, multiprocess=True, state_format="dict"
            ),
        )
        assert in_process.labels == multiproc.labels
        assert in_process.receivers == multiproc.receivers
        assert stats_i.total_messages == stats_m.total_messages

    def test_multiprocess_update_rejected(self, cliques_ring):
        from repro.distributed.cluster import (
            run_distributed_rslpa,
            run_distributed_update,
        )
        from repro.graph.edits import EditBatch

        state, _ = run_distributed_rslpa(
            cliques_ring, seed=4, iterations=10, num_workers=2
        )
        with pytest.raises(ValueError, match="in place"):
            run_distributed_update(
                cliques_ring,
                state,
                EditBatch.build(deletions=[(0, 1)]),
                seed=4,
                config=ExecutionConfig(num_workers=2, multiprocess=True),
            )


class TestPlanCLI:
    def test_plan_subcommand_prints_provenance(self, tmp_path, cliques_ring):
        import io

        from repro.cli import main
        from repro.graph.io import write_edge_list

        path = str(tmp_path / "graph.txt")
        write_edge_list(cliques_ring, path)
        out = io.StringIO()
        code = main(
            ["plan", path, "--distributed", "4", "--shard-backend", "dict"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "execution plan:" in text
        assert "shard_backend" in text and "explicitly requested" in text
        assert "engine" in text

    def test_plan_subcommand_local(self, tmp_path, cliques_ring):
        import io

        from repro.cli import main
        from repro.graph.io import write_edge_list

        path = str(tmp_path / "graph.txt")
        write_edge_list(cliques_ring, path)
        out = io.StringIO()
        assert main(["plan", path], out=out) == 0
        assert "local fit" in out.getvalue()


class TestTransportResolution:
    """The transport axis: auto rules, plane gating, provenance."""

    CAPS = GraphCaps(num_vertices=60, num_edges=200, contiguous_ids=True)

    def test_auto_prefers_shm_on_multiprocess_array(self):
        plan = resolve_plan(
            self.CAPS, ExecutionConfig(num_workers=4, multiprocess=True)
        )
        assert plan.engine == "array"
        assert plan.transport == "shm"
        assert any(
            d.field == "transport" and d.value == "shm" for d in plan.decisions
        )

    def test_auto_falls_back_to_pipe_on_tuple_plane(self):
        plan = resolve_plan(
            self.CAPS,
            ExecutionConfig(
                num_workers=4,
                multiprocess=True,
                engine="reference",
                shard_backend="dict",
            ),
        )
        assert plan.transport == "pipe"

    def test_no_transport_without_multiprocess(self):
        assert resolve_plan(
            self.CAPS, ExecutionConfig(num_workers=4)
        ).transport is None
        assert resolve_plan(self.CAPS, ExecutionConfig()).transport is None

    def test_explicit_transport_recorded_in_summary(self):
        plan = resolve_plan(
            self.CAPS,
            ExecutionConfig(num_workers=4, multiprocess=True, transport="tcp"),
        )
        assert plan.transport == "tcp"
        assert "transport=tcp" in plan.summary()

    def test_column_transport_requires_array_plane(self):
        with pytest.raises(ValueError, match="engine='array'"):
            resolve_plan(
                self.CAPS,
                ExecutionConfig(
                    num_workers=4,
                    multiprocess=True,
                    engine="reference",
                    shard_backend="dict",
                    transport="shm",
                ),
            )

    def test_explicit_transport_requires_multiprocess(self):
        with pytest.raises(ValueError, match="multiprocess=True"):
            resolve_plan(
                self.CAPS, ExecutionConfig(num_workers=4, transport="shm")
            )

    def test_unknown_transport_rejected_by_config(self):
        with pytest.raises(ValueError, match="transport"):
            ExecutionConfig(transport="carrier-pigeon")

    def test_multiprocess_run_routes_through_resolved_transport(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_slpa

        memories_shm, stats_shm = run_distributed_slpa(
            cliques_ring,
            seed=3,
            iterations=8,
            config=ExecutionConfig(
                num_workers=2, multiprocess=True, transport="shm"
            ),
        )
        memories_ref, stats_ref = run_distributed_slpa(
            cliques_ring, seed=3, iterations=8, num_workers=2, engine="array"
        )
        assert memories_shm == memories_ref
        assert stats_shm.per_superstep == stats_ref.per_superstep


class TestFaultToleranceResolution:
    """The fault-tolerance knobs: defaults, provenance, gating."""

    CAPS = GraphCaps(num_vertices=60, num_edges=200, contiguous_ids=True)

    def test_off_by_default(self):
        plan = resolve_plan(
            self.CAPS, ExecutionConfig(num_workers=4, multiprocess=True)
        )
        assert plan.fault_tolerance is False
        assert plan.checkpoint_interval is None
        assert plan.max_restarts is None
        assert "fault_tolerance" not in plan.summary()

    def test_defaults_resolved_with_provenance(self):
        plan = resolve_plan(
            self.CAPS,
            ExecutionConfig(
                num_workers=4, multiprocess=True, fault_tolerance=True
            ),
        )
        assert plan.fault_tolerance is True
        assert plan.checkpoint_interval == 4
        assert plan.max_restarts == 3
        assert (
            "fault_tolerance=on (checkpoint_interval=4, max_restarts=3)"
            in plan.summary()
        )
        fields = {d.field: d for d in plan.decisions}
        assert fields["fault_tolerance"].value is True
        assert fields["checkpoint_interval"].value == 4
        assert fields["checkpoint_interval"].requested is None
        assert fields["max_restarts"].value == 3

    def test_explicit_knobs_recorded(self):
        plan = resolve_plan(
            self.CAPS,
            ExecutionConfig(
                num_workers=4,
                multiprocess=True,
                fault_tolerance=True,
                checkpoint_interval=2,
                max_restarts=7,
            ),
        )
        assert plan.checkpoint_interval == 2
        assert plan.max_restarts == 7
        fields = {d.field: d for d in plan.decisions}
        assert fields["checkpoint_interval"].reason == "explicitly requested"
        assert fields["max_restarts"].reason == "explicitly requested"

    def test_requires_multiprocess(self):
        with pytest.raises(ValueError, match="multiprocess=True"):
            resolve_plan(
                self.CAPS,
                ExecutionConfig(num_workers=4, fault_tolerance=True),
            )
        with pytest.raises(ValueError, match="multiprocess=True"):
            resolve_plan(self.CAPS, ExecutionConfig(fault_tolerance=True))

    def test_knobs_require_fault_tolerance(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            resolve_plan(
                self.CAPS,
                ExecutionConfig(
                    num_workers=4, multiprocess=True, checkpoint_interval=2
                ),
            )
        with pytest.raises(ValueError, match="max_restarts"):
            resolve_plan(
                self.CAPS,
                ExecutionConfig(
                    num_workers=4, multiprocess=True, max_restarts=1
                ),
            )

    def test_config_validates_knobs(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ExecutionConfig(checkpoint_interval=0)
        with pytest.raises(ValueError, match="max_restarts"):
            ExecutionConfig(max_restarts=-1)
        with pytest.raises(TypeError):
            ExecutionConfig(fault_tolerance="yes")

    def test_fault_tolerant_run_matches_plain(self, cliques_ring):
        from repro.distributed.cluster import run_distributed_slpa

        memories_ft, stats_ft = run_distributed_slpa(
            cliques_ring,
            seed=3,
            iterations=8,
            config=ExecutionConfig(
                num_workers=2,
                multiprocess=True,
                fault_tolerance=True,
                checkpoint_interval=2,
            ),
        )
        memories_ref, stats_ref = run_distributed_slpa(
            cliques_ring,
            seed=3,
            iterations=8,
            config=ExecutionConfig(num_workers=2, multiprocess=True),
        )
        assert memories_ft == memories_ref
        assert stats_ft.per_superstep == stats_ref.per_superstep
        assert stats_ft.recovery is not None
        assert stats_ft.recovery.checkpoints_taken >= 1
        assert stats_ft.recovery.recoveries == 0
