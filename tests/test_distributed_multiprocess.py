"""Tests for the multiprocess BSP backend (true parallelism).

The transport matrix at the bottom is the load-bearing contract of the
zero-copy data plane: every (plane × transport × partitioner) cell must
produce bit-identical covers and per-superstep CommStats to the
in-process ArrayBSPEngine, and a worker that dies mid-run must raise
WorkerCrashedError instead of hanging the driver.
"""

import os
import signal
from collections import Counter
from functools import partial

import pytest

from repro.baselines.slpa import SLPA
from repro.core.rslpa import ReferencePropagator
from repro.distributed.engine_array import ArrayBSPEngine
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import RSLPAPropagationProgram, SLPAPropagationProgram
from repro.distributed.programs_array import FastSLPAPropagationProgram
from repro.distributed.transport import WorkerCrashedError
from repro.distributed.worker import build_shards
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import ContiguousPartitioner, HashPartitioner


@pytest.fixture
def small_setup():
    graph = ring_of_cliques(3, 5)
    part = HashPartitioner(3)
    return graph, part, build_shards(graph, part)


class TestMultiprocessRSLPA:
    def test_matches_sequential(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=5, iterations=15)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            engine.run()
            results = engine.collect()
        merged = {}
        for result in results:
            merged.update(result)
        ref = ReferencePropagator(graph.copy(), seed=5)
        ref.propagate(15)
        assert {v: lab for v, (lab, _s, _p) in merged.items()} == ref.state.labels

    def test_stats_match_in_process_engine(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=5, iterations=10)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            stats = engine.run()
        assert stats.total_messages == 2 * graph.num_vertices * 10


class TestMultiprocessSLPA:
    def test_matches_sequential(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(SLPAPropagationProgram, seed=2, iterations=12)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            engine.run()
            results = engine.collect()
        merged = {}
        for result in results:
            merged.update(result)
        ref = SLPA(graph.copy(), seed=2, iterations=12)
        ref.propagate()
        assert merged == ref.memories


class TestLifecycle:
    def test_shutdown_idempotent(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        engine = MultiprocessBSPEngine(shards, part, factory)
        engine.run()
        engine.shutdown()
        engine.shutdown()  # second call is a no-op

    def test_run_after_shutdown_rejected(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        engine = MultiprocessBSPEngine(shards, part, factory)
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.run()

    def test_mismatched_partitioner_rejected(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        with pytest.raises(ValueError):
            MultiprocessBSPEngine(shards, HashPartitioner(5), factory)


# ----------------------------------------------------------------------
# Transport matrix: plane × transport × partitioner, all bit-identical
# ----------------------------------------------------------------------
SEED, ITERATIONS, TAU = 11, 10, 0.3

#: Every supported (plane, transport) cell of the multiprocess engine.
PLANE_TRANSPORT = [
    ("tuple", "pipe"),
    ("array", "pipe"),
    ("array", "shm"),
    ("array", "tcp"),
]


def _partitioner(name, graph, workers):
    if name == "hash":
        return HashPartitioner(workers)
    return ContiguousPartitioner(workers, graph.num_vertices)


def _cover_from_memories(memories, tau=TAU):
    """SLPA frequency-threshold extraction (communities as frozensets)."""
    holders = {}
    for v, memory in memories.items():
        length = len(memory)
        for label, count in Counter(memory).items():
            if count / length >= tau:
                holders.setdefault(label, set()).add(v)
    return {frozenset(c) for c in holders.values() if len(c) >= 2}


def _shm_segments():
    # Dynamic half of the resource-discipline contract; the static half
    # is lint rule RPL003, which rejects SharedMemory/socket creations
    # in transport.py that cannot reach a close() on every path.
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # non-tmpfs platform: skip the leak check
        return set()


def _reference_run(graph, part):
    """In-process ArrayBSPEngine ground truth: (memories, superstep stats)."""
    shards = build_shards(graph, part)
    engine = ArrayBSPEngine(shards, part)
    programs = engine.run(
        [FastSLPAPropagationProgram(s, seed=SEED, iterations=ITERATIONS)
         for s in shards]
    )
    memories = {}
    for program in programs:
        memories.update(program.collect())
    return memories, engine.stats.per_superstep


class TestTransportMatrix:
    @pytest.mark.parametrize("plane,transport", PLANE_TRANSPORT)
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_bit_identical_cover_and_stats(self, plane, transport, partitioner):
        graph = ring_of_cliques(4, 6)
        part = _partitioner(partitioner, graph, 3)
        ref_memories, ref_steps = _reference_run(graph, part)

        if plane == "array":
            factory = partial(
                FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
            )
        else:
            factory = partial(
                SLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
            )
        before = _shm_segments()
        shards = build_shards(graph, part)
        with MultiprocessBSPEngine(
            shards, part, factory, plane=plane, transport=transport
        ) as engine:
            stats = engine.run()
            results = engine.collect()
        memories = {}
        for result in results:
            memories.update(result)

        assert memories == ref_memories
        assert _cover_from_memories(memories) == _cover_from_memories(ref_memories)
        assert stats.per_superstep == ref_steps
        assert _shm_segments() <= before  # no leaked shared-memory segments

    def test_column_transports_reject_tuple_plane(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(SLPAPropagationProgram, seed=1, iterations=3)
        for transport in ("shm", "tcp"):
            with pytest.raises(ValueError, match="plane='array'"):
                MultiprocessBSPEngine(
                    shards, part, factory, plane="tuple", transport=transport
                )

    def test_unknown_transport_rejected(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(SLPAPropagationProgram, seed=1, iterations=3)
        with pytest.raises(KeyError, match="bogus"):
            MultiprocessBSPEngine(shards, part, factory, transport="bogus")


class TestTransportSmoke:
    def test_tcp_two_process_smoke(self):
        """Two workers exchanging supersteps over localhost sockets only."""
        graph = ring_of_cliques(3, 5)
        part = HashPartitioner(2)
        ref_memories, ref_steps = _reference_run(graph, part)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
        )
        shards = build_shards(graph, part)
        with MultiprocessBSPEngine(
            shards, part, factory, plane="array", transport="tcp"
        ) as engine:
            stats = engine.run()
            results = engine.collect()
        memories = {}
        for result in results:
            memories.update(result)
        assert memories == ref_memories
        assert stats.per_superstep == ref_steps

    def test_shm_smoke(self):
        """Single-cell shm sanity run (fast enough for the CI smoke step)."""
        graph = ring_of_cliques(3, 5)
        part = HashPartitioner(2)
        ref_memories, _ = _reference_run(graph, part)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
        )
        before = _shm_segments()
        shards = build_shards(graph, part)
        with MultiprocessBSPEngine(
            shards, part, factory, plane="array", transport="shm"
        ) as engine:
            engine.run()
            results = engine.collect()
        memories = {}
        for result in results:
            memories.update(result)
        assert memories == ref_memories
        assert _shm_segments() <= before


class TestWorkerCrash:
    @pytest.mark.parametrize("transport", ["pipe", "shm", "tcp"])
    def test_worker_kill_raises_not_hangs(self, transport):
        graph = ring_of_cliques(4, 6)
        part = HashPartitioner(3)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=500
        )
        before = _shm_segments()
        shards = build_shards(graph, part)
        engine = MultiprocessBSPEngine(
            shards, part, factory, plane="array", transport=transport
        )
        try:
            os.kill(engine._processes[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashedError) as excinfo:
                engine.run()
            assert excinfo.value.worker_id == 1
            assert "worker 1" in str(excinfo.value)
        finally:
            engine.shutdown()
            engine.shutdown()  # idempotent after a crash
        assert _shm_segments() <= before  # crash leaked no segments

    def test_context_manager_exit_after_crash(self):
        graph = ring_of_cliques(3, 5)
        part = HashPartitioner(2)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=500
        )
        before = _shm_segments()
        shards = build_shards(graph, part)
        with pytest.raises(WorkerCrashedError):
            with MultiprocessBSPEngine(
                shards, part, factory, plane="array", transport="shm"
            ) as engine:
                os.kill(engine._processes[0].pid, signal.SIGKILL)
                engine.run()
        assert _shm_segments() <= before
