"""Tests for the multiprocess BSP backend (true parallelism)."""

from functools import partial

import pytest

from repro.baselines.slpa import SLPA
from repro.core.rslpa import ReferencePropagator
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import RSLPAPropagationProgram, SLPAPropagationProgram
from repro.distributed.worker import build_shards
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import HashPartitioner


@pytest.fixture
def small_setup():
    graph = ring_of_cliques(3, 5)
    part = HashPartitioner(3)
    return graph, part, build_shards(graph, part)


class TestMultiprocessRSLPA:
    def test_matches_sequential(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=5, iterations=15)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            engine.run()
            results = engine.collect()
        merged = {}
        for result in results:
            merged.update(result)
        ref = ReferencePropagator(graph.copy(), seed=5)
        ref.propagate(15)
        assert {v: lab for v, (lab, _s, _p) in merged.items()} == ref.state.labels

    def test_stats_match_in_process_engine(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=5, iterations=10)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            stats = engine.run()
        assert stats.total_messages == 2 * graph.num_vertices * 10


class TestMultiprocessSLPA:
    def test_matches_sequential(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(SLPAPropagationProgram, seed=2, iterations=12)
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            engine.run()
            results = engine.collect()
        merged = {}
        for result in results:
            merged.update(result)
        ref = SLPA(graph.copy(), seed=2, iterations=12)
        ref.propagate()
        assert merged == ref.memories


class TestLifecycle:
    def test_shutdown_idempotent(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        engine = MultiprocessBSPEngine(shards, part, factory)
        engine.run()
        engine.shutdown()
        engine.shutdown()  # second call is a no-op

    def test_run_after_shutdown_rejected(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        engine = MultiprocessBSPEngine(shards, part, factory)
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.run()

    def test_mismatched_partitioner_rejected(self, small_setup):
        graph, part, shards = small_setup
        factory = partial(RSLPAPropagationProgram, seed=1, iterations=3)
        with pytest.raises(ValueError):
            MultiprocessBSPEngine(shards, HashPartitioner(5), factory)
