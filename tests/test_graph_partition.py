"""Tests for repro.graph.partition."""

import numpy as np
import pytest

from repro.graph.partition import (
    ContiguousPartitioner,
    HashPartitioner,
    Partitioner,
    partition_counts,
)


class TestHashPartitioner:
    def test_owner_in_range(self):
        part = HashPartitioner(7)
        assert all(0 <= part.owner(v) < 7 for v in range(500))

    def test_deterministic(self):
        a = HashPartitioner(5)
        b = HashPartitioner(5)
        assert [a.owner(v) for v in range(100)] == [b.owner(v) for v in range(100)]

    def test_salt_changes_assignment(self):
        a = HashPartitioner(5, salt=0)
        b = HashPartitioner(5, salt=1)
        assert [a.owner(v) for v in range(100)] != [b.owner(v) for v in range(100)]

    def test_roughly_balanced(self):
        part = HashPartitioner(4)
        counts = partition_counts(part, range(4000))
        assert min(counts) > 800  # perfect balance would be 1000

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            HashPartitioner(2.5)


class TestOwnerArray:
    """The vectorised owner gather must match the scalar owner() exactly."""

    def test_hash_partitioner_matches_scalar(self):
        part = HashPartitioner(5, salt=3)
        ids = np.arange(2000, dtype=np.int64)
        assert part.owner_array(ids).tolist() == [
            part.owner(v) for v in range(2000)
        ]

    def test_contiguous_partitioner_matches_scalar(self):
        part = ContiguousPartitioner(4, num_vertices=100)
        ids = np.arange(100, dtype=np.int64)
        assert part.owner_array(ids).tolist() == [
            part.owner(v) for v in range(100)
        ]

    def test_contiguous_out_of_range_fallback_matches_scalar(self):
        part = ContiguousPartitioner(3, num_vertices=10)
        ids = np.array([0, 5, 9, 10, 1_000_000], dtype=np.int64)
        assert part.owner_array(ids).tolist() == [
            part.owner(int(v)) for v in ids
        ]

    def test_base_class_fallback(self):
        class OddEven(Partitioner):
            def owner(self, vertex):
                return vertex % 2

        part = OddEven(2)
        ids = np.arange(10, dtype=np.int64)
        assert part.owner_array(ids).tolist() == [v % 2 for v in range(10)]

    def test_empty_input(self):
        part = HashPartitioner(3)
        assert part.owner_array(np.empty(0, dtype=np.int64)).tolist() == []

    def test_deprecated_alias(self):
        part = HashPartitioner(3)
        ids = np.arange(50, dtype=np.int64)
        assert part.owners_array(ids).tolist() == part.owner_array(ids).tolist()


class TestContiguousPartitioner:
    def test_blocks_are_contiguous(self):
        part = ContiguousPartitioner(3, num_vertices=9)
        assert [part.owner(v) for v in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_uneven_division(self):
        part = ContiguousPartitioner(3, num_vertices=10)
        owners = [part.owner(v) for v in range(10)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2}

    def test_out_of_range_falls_back_to_hash(self):
        part = ContiguousPartitioner(3, num_vertices=10)
        assert 0 <= part.owner(1_000_000) < 3

    def test_partition_groups_cover_all(self):
        part = ContiguousPartitioner(4, num_vertices=20)
        groups = part.partition(range(20))
        assert sorted(v for vs in groups.values() for v in vs) == list(range(20))
        assert set(groups) == {0, 1, 2, 3}
