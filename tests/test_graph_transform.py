"""Tests for network binarization (the paper's Section-I preprocessing)."""

import pytest

from repro.graph.transform import (
    aggregate_weights,
    binarize,
    binarize_top_k,
    quantile_threshold,
)


class TestAggregateWeights:
    def test_symmetrises_and_sums(self):
        weights = aggregate_weights([(0, 1, 1.0), (1, 0, 2.0)])
        assert weights == {(0, 1): 3.0}

    def test_max_combine(self):
        weights = aggregate_weights([(0, 1, 1.0), (1, 0, 2.0)], combine="max")
        assert weights == {(0, 1): 2.0}

    def test_min_combine(self):
        weights = aggregate_weights([(0, 1, 1.0), (1, 0, 2.0)], combine="min")
        assert weights == {(0, 1): 1.0}

    def test_drops_self_loops(self):
        assert aggregate_weights([(3, 3, 9.0)]) == {}

    def test_rejects_unknown_combine(self):
        with pytest.raises(ValueError, match="combine"):
            aggregate_weights([], combine="avg")


class TestBinarize:
    def test_threshold_filters(self):
        g = binarize([(0, 1, 0.9), (1, 2, 0.1)], threshold=0.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 2)

    def test_endpoints_kept_even_when_edge_dropped(self):
        g = binarize([(0, 1, 0.1)], threshold=0.5)
        assert g.has_vertex(0) and g.has_vertex(1)
        assert g.num_edges == 0

    def test_direction_sum_crosses_threshold(self):
        # 0.3 + 0.3 both directions = 0.6 >= 0.5.
        g = binarize([(0, 1, 0.3), (1, 0, 0.3)], threshold=0.5)
        assert g.has_edge(0, 1)

    def test_extra_vertices(self):
        g = binarize([(0, 1, 1.0)], vertices=[5])
        assert g.has_vertex(5)

    def test_zero_threshold_keeps_everything(self):
        g = binarize([(0, 1, 0.0), (1, 2, -0.5)], threshold=-1.0)
        assert g.num_edges == 2


class TestBinarizeTopK:
    def test_keeps_strongest_per_vertex(self):
        # (0,2) and (0,3) are in neither endpoint's top-1 -> dropped.
        edges = [(0, 1, 5.0), (0, 2, 1.0), (0, 3, 3.0), (2, 3, 4.0)]
        g = binarize_top_k(edges, k=1)
        assert g.has_edge(0, 1) and g.has_edge(2, 3)
        assert not g.has_edge(0, 2) and not g.has_edge(0, 3)

    def test_union_semantics(self):
        """An edge weak for a hub survives if it is the leaf's best."""
        edges = [(0, 1, 5.0), (0, 2, 4.0), (0, 3, 0.1)]
        g = binarize_top_k(edges, k=1)
        # (0,3) is vertex 3's only (hence top-1) edge.
        assert g.has_edge(0, 3)

    def test_deterministic_tie_break(self):
        edges = [(0, 1, 1.0), (0, 2, 1.0)]
        a = binarize_top_k(edges, k=1)
        b = binarize_top_k(list(reversed(edges)), k=1)
        assert a == b

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            binarize_top_k([], k=0)


class TestQuantileThreshold:
    def test_keep_all(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        tau = quantile_threshold(edges, 1.0)
        assert binarize(edges, tau).num_edges == 3

    def test_keep_third(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        tau = quantile_threshold(edges, 1 / 3)
        assert binarize(edges, tau).num_edges == 1

    def test_empty_edge_list(self):
        assert quantile_threshold([], 0.5) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            quantile_threshold([], 0.0)


class TestEndToEnd:
    def test_weighted_network_to_communities(self):
        """Weighted two-clique network -> binarize -> detect."""
        from repro.core.detector import detect_communities

        edges = []
        for base in (0, 4):
            group = range(base, base + 4)
            for i in group:
                for j in group:
                    if i < j:
                        edges.append((i, j, 1.0))
        edges.append((0, 4, 0.05))  # weak bridge, thresholded away
        g = binarize(edges, threshold=0.5)
        cover = detect_communities(g, seed=1, iterations=60, tau_step=0.01)
        assert sorted(sorted(c) for c in cover) == [[0, 1, 2, 3], [4, 5, 6, 7]]
