"""Tests for the BSP engine, shards, messages and comm accounting."""

import pytest

from repro.distributed.engine import BSPEngine, WorkerProgram
from repro.distributed.message import message_size_bytes, payload_size_bytes
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.worker import build_shards
from repro.graph.partition import ContiguousPartitioner, HashPartitioner


class EchoOnce(WorkerProgram):
    """Each vertex sends one message to (v+1) mod n, then stops."""

    def __init__(self, shard, n):
        super().__init__(shard)
        self.n = n
        self.received = []

    def on_start(self, ctx):
        for v in sorted(self.shard.vertices):
            ctx.send((v + 1) % self.n, ("ping", v))

    def on_superstep(self, ctx, superstep, inbox):
        self.received.extend(inbox)

    def collect(self):
        return {"received": self.received}


class ChattyProgram(WorkerProgram):
    """Keeps sending for a fixed number of rounds (tests superstep cap)."""

    def on_start(self, ctx):
        ctx.send(min(self.shard.vertices, default=0), ("go",))

    def on_superstep(self, ctx, superstep, inbox):
        for dst, _kind in inbox:
            ctx.send(dst, ("go",))


class TestShards:
    def test_every_vertex_owned_once(self, cliques_ring):
        part = HashPartitioner(4)
        shards = build_shards(cliques_ring, part)
        owned = [v for shard in shards for v in shard.vertices]
        assert sorted(owned) == sorted(cliques_ring.vertices())

    def test_adjacency_is_sorted(self, cliques_ring):
        shards = build_shards(cliques_ring, HashPartitioner(3))
        for shard in shards:
            for v in shard.vertices:
                assert shard.neighbors(v) == sorted(cliques_ring.neighbors_view(v))

    def test_contiguous_partitioner_locality(self, cliques_ring):
        """Contiguous blocks keep most clique edges worker-local."""
        part = ContiguousPartitioner(5, num_vertices=30)
        shards = build_shards(cliques_ring, part)
        # Each shard is exactly one 6-clique.
        for shard in shards:
            assert shard.num_vertices == 6


class TestEngine:
    def test_messages_delivered_to_owners(self, cliques_ring):
        part = HashPartitioner(3)
        shards = build_shards(cliques_ring, part)
        engine = BSPEngine(shards, part)
        programs = [EchoOnce(s, n=30) for s in shards]
        engine.run(programs)
        for program in programs:
            for dst, kind, src in program.received:
                assert kind == "ping"
                assert part.owner(dst) == program.shard.worker_id
                assert dst == (src + 1) % 30

    def test_total_message_count(self, cliques_ring):
        part = HashPartitioner(3)
        shards = build_shards(cliques_ring, part)
        engine = BSPEngine(shards, part)
        engine.run([EchoOnce(s, n=30) for s in shards])
        assert engine.stats.total_messages == 30
        assert engine.stats.supersteps == 1

    def test_remote_vs_local_accounting(self, cliques_ring):
        part = ContiguousPartitioner(5, num_vertices=30)
        shards = build_shards(cliques_ring, part)
        engine = BSPEngine(shards, part)
        engine.run([EchoOnce(s, n=30) for s in shards])
        stats = engine.stats
        # (v+1) mod 30 stays in the same block except at block boundaries.
        assert stats.total_remote_messages == 5
        assert stats.total_messages == 30

    def test_superstep_cap(self, cliques_ring):
        part = HashPartitioner(2)
        shards = build_shards(cliques_ring, part)
        engine = BSPEngine(shards, part)
        with pytest.raises(RuntimeError, match="quiesce"):
            engine.run([ChattyProgram(s) for s in shards], max_supersteps=10)

    def test_shard_program_count_mismatch(self, cliques_ring):
        part = HashPartitioner(2)
        shards = build_shards(cliques_ring, part)
        engine = BSPEngine(shards, part)
        with pytest.raises(ValueError):
            engine.run([EchoOnce(shards[0], n=30)])

    def test_partitioner_shard_mismatch(self, cliques_ring):
        shards = build_shards(cliques_ring, HashPartitioner(2))
        with pytest.raises(ValueError):
            BSPEngine(shards, HashPartitioner(3))


class TestMessageSizes:
    def test_int_payload(self):
        assert payload_size_bytes((1, 2, 3)) == 24

    def test_string_payload(self):
        assert payload_size_bytes(("req", 5)) == 3 + 8

    def test_nested_payload(self):
        assert payload_size_bytes(((1, 2), 3)) == 24

    def test_message_adds_address(self):
        assert message_size_bytes((7, (1,))) == 16


class TestCommStats:
    def test_aggregation(self):
        stats = CommStats()
        stats.record(SuperstepStats(superstep=1, messages=10, remote_messages=4,
                                    bytes=100, remote_bytes=40))
        stats.record(SuperstepStats(superstep=2, messages=5, remote_messages=1,
                                    bytes=50, remote_bytes=10))
        assert stats.total_messages == 15
        assert stats.total_remote_messages == 5
        assert stats.total_bytes == 150
        assert stats.messages_per_superstep() == [10, 5]
        assert "2 supersteps" in stats.summary()

    def test_local_messages(self):
        s = SuperstepStats(superstep=1, messages=10, remote_messages=4)
        assert s.local_messages == 6
