"""Smoke tests: every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

SCRIPTS = [
    "quickstart.py",
    "dynamic_social_network.py",
    "parameter_study.py",
    "distributed_web_graph.py",
    "streaming_monitor.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
