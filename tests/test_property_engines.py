"""Property tests: engine equivalence over hypothesis-generated graphs.

The fixed-fixture tests cover known structures; these drive random graph
shapes (including disconnected pieces, isolated vertices, stars, near-empty
and near-complete graphs) through every pair of engines that must agree
bit-for-bit:

* rSLPA: reference vs vectorised vs distributed;
* SLPA: reference vs vectorised;
* connected components: hash-to-min vs BFS.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.slpa import SLPA
from repro.baselines.slpa_fast import FastSLPA
from repro.core.fast import FastPropagator
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import run_distributed_rslpa, run_distributed_slpa
from repro.distributed.components import distributed_connected_components
from repro.graph.adjacency import Graph

MAX_N = 12


@st.composite
def contiguous_graphs(draw):
    """A graph over vertices 0..n-1 (fast engines need contiguous ids)."""
    n = draw(st.integers(2, MAX_N))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] < e[1]
            ),
            max_size=n * 3,
        )
    )
    return Graph.from_edges(edges, vertices=range(n))


common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRSLPAEngines:
    @common_settings
    @given(contiguous_graphs(), st.integers(0, 5), st.integers(1, 15))
    def test_fast_equals_reference(self, graph, seed, iterations):
        ref = ReferencePropagator(graph.copy(), seed=seed)
        ref.propagate(iterations)
        fast = FastPropagator(graph.copy(), seed=seed)
        fast.propagate(iterations)
        for v in range(graph.num_vertices):
            assert fast.labels[:, v].tolist() == ref.state.labels[v]
            assert fast.srcs[:, v].tolist() == ref.state.srcs[v]

    @common_settings
    @given(contiguous_graphs(), st.integers(0, 3), st.integers(1, 4))
    def test_distributed_equals_reference(self, graph, seed, workers):
        ref = ReferencePropagator(graph.copy(), seed=seed)
        ref.propagate(8)
        state, _ = run_distributed_rslpa(
            graph.copy(), seed=seed, iterations=8, num_workers=workers
        )
        assert state.labels == ref.state.labels
        assert state.receivers == ref.state.receivers

    @common_settings
    @given(contiguous_graphs(), st.integers(0, 5))
    def test_exported_state_is_always_valid(self, graph, seed):
        fast = FastPropagator(graph, seed=seed)
        fast.propagate(10)
        fast.to_label_state().validate(graph)

    @common_settings
    @given(contiguous_graphs(), st.integers(0, 3), st.integers(1, 4))
    def test_array_engine_equals_reference_engine(self, graph, seed, workers):
        """Columnar message plane == tuple plane, results and accounting."""
        ref_state, ref_stats = run_distributed_rslpa(
            graph.copy(), seed=seed, iterations=8, num_workers=workers,
            shard_backend="dict", engine="reference",
        )
        arr_state, arr_stats = run_distributed_rslpa(
            graph.copy(), seed=seed, iterations=8, num_workers=workers,
            shard_backend="csr", engine="array",
        )
        assert arr_state.labels == ref_state.labels
        assert arr_state.srcs == ref_state.srcs
        assert arr_state.receivers == ref_state.receivers
        assert arr_stats.messages_per_superstep() == (
            ref_stats.messages_per_superstep()
        )
        assert arr_stats.total_bytes == ref_stats.total_bytes
        assert arr_stats.total_remote_messages == ref_stats.total_remote_messages


class TestSLPAEngines:
    @common_settings
    @given(contiguous_graphs(), st.integers(0, 5), st.integers(1, 12))
    def test_fast_equals_reference(self, graph, seed, iterations):
        ref = SLPA(graph, seed=seed, iterations=iterations)
        ref.propagate()
        fast = FastSLPA(graph, seed=seed, iterations=iterations)
        fast.propagate()
        assert fast.memories_as_dict() == ref.memories

    @common_settings
    @given(contiguous_graphs(), st.integers(0, 3), st.integers(1, 3))
    def test_distributed_array_equals_sequential(self, graph, seed, workers):
        ref = SLPA(graph.copy(), seed=seed, iterations=8)
        ref.propagate()
        memories, _ = run_distributed_slpa(
            graph.copy(), seed=seed, iterations=8, num_workers=workers,
            shard_backend="csr", engine="array",
        )
        assert memories == ref.memories

    @common_settings
    @given(contiguous_graphs(), st.integers(0, 3))
    def test_extractions_agree(self, graph, seed):
        ref = SLPA(graph, seed=seed, iterations=10)
        ref.propagate()
        fast = FastSLPA(graph, seed=seed, iterations=10)
        fast.propagate()
        for tau in (0.1, 0.3, 0.6):
            assert fast.extract(tau) == ref.extract(tau)


class TestComponents:
    @common_settings
    @given(contiguous_graphs(), st.integers(1, 4))
    def test_hash_to_min_equals_bfs(self, graph, workers):
        found, _ = distributed_connected_components(graph, num_workers=workers)
        expected = sorted(sorted(c) for c in graph.connected_components())
        assert sorted(sorted(c) for c in found) == expected
