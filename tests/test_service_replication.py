"""Tests for the replication plane: WAL shipping, failover, availability.

The contract under test is the module's headline claim: a supervised
primary + replicas topology subjected to scripted service-plane faults
(primary kills at every WAL sequence point, replica kills, dropped
records, heartbeat stalls) converges to the *bit identical* cover and
stable-id assignment of a failure-free run, while client queries keep
being answered (stale serves allowed and counted, errors not).
"""

import pytest

from repro.api.config import AlgoConfig, ServicePlanConfig
from repro.api.plan import GraphCaps, resolve_service_plan
from repro.distributed.faults import FaultPlan
from repro.graph.generators import ring_of_cliques
from repro.service import ServiceConfig
from repro.service.replication import (
    FailoverExhaustedError,
    PipeServiceWire,
    ServiceSupervisor,
    TcpServiceWire,
)

ITERATIONS = 30

#: Edit script against ring_of_cliques(3, 4): all valid under strict_edits,
#: windowed into 4 batches of 2 by batch_size=2.
EDITS = [
    ("+", 0, 4), ("+", 0, 6), ("-", 0, 1), ("+", 0, 7),
    ("+", 0, 8), ("-", 4, 5), ("+", 0, 9), ("+", 0, 10),
]
TOTAL_SEQS = 4  # len(EDITS) / batch_size


def make_config(**overrides) -> ServicePlanConfig:
    base = dict(
        algo=AlgoConfig(seed=3, iterations=ITERATIONS),
        batch_size=2,
        staleness_batches=2,
        checkpoint_every=2,
        keep_checkpoints=2,
        replicas=2,
    )
    base.update(overrides)
    return ServicePlanConfig(**base)


def run_supervised(tmp_path, fault_plan=None, query_each_step=True,
                   **config_overrides):
    """One full supervised session over EDITS; returns (snapshot, stats,
    client) after a clean shutdown."""
    config = make_config(**config_overrides)
    sup = ServiceSupervisor(
        ring_of_cliques(3, 4), str(tmp_path), config, fault_plan=fault_plan
    ).start()
    try:
        client = sup.client()
        for op, u, v in EDITS:
            sup.submit(op, u, v)
            if query_each_step:
                # The availability claim: no query errors while faults fire.
                client.communities_of(0)
                client.overlap(0, 1)
        snapshot = sup.snapshot()
        stats = sup.stats()
    finally:
        sup.shutdown()
    return snapshot, stats, client


@pytest.fixture(scope="module")
def baseline_snapshot(tmp_path_factory):
    """The failure-free supervised run every faulted run must match."""
    snapshot, stats, _client = run_supervised(
        tmp_path_factory.mktemp("baseline"), fault_plan=None
    )
    assert stats["failovers"] == 0
    return snapshot


# ----------------------------------------------------------------------
# Plan resolution
# ----------------------------------------------------------------------
class TestServicePlanResolution:
    CAPS = GraphCaps(num_vertices=12, num_edges=21, contiguous_ids=True)

    def test_defaults_resolved_with_provenance(self):
        plan = resolve_service_plan(self.CAPS, make_config())
        assert plan.replicated
        assert plan.replicas == 2
        assert plan.service_transport == "pipe"
        assert plan.heartbeat_interval == 0.5
        assert plan.max_failovers == 2  # one promotion per replica
        fields = {d.field for d in plan.decisions}
        assert {"replicas", "service_transport", "heartbeat_interval",
                "max_failovers"} <= fields
        assert "replicated service" in plan.explain()

    def test_explicit_transport_respected(self):
        plan = resolve_service_plan(
            self.CAPS, make_config(service_transport="tcp")
        )
        assert plan.service_transport == "tcp"

    def test_unreplicated_plan_has_no_topology(self):
        plan = resolve_service_plan(self.CAPS, make_config(replicas=0))
        assert not plan.replicated
        assert plan.service_transport is None
        assert plan.heartbeat_interval is None

    @pytest.mark.parametrize(
        "knob", [{"heartbeat_interval": 0.1}, {"max_failovers": 1},
                 {"service_transport": "tcp"}]
    )
    def test_replication_knobs_without_replicas_rejected(self, knob):
        with pytest.raises(ValueError, match="replicas > 0"):
            resolve_service_plan(self.CAPS, make_config(replicas=0, **knob))

    def test_transports_registered(self):
        from repro.api.registry import SERVICE_TRANSPORTS

        assert SERVICE_TRANSPORTS.resolve("pipe") is PipeServiceWire
        assert SERVICE_TRANSPORTS.resolve("tcp") is TcpServiceWire


# ----------------------------------------------------------------------
# FaultPlan service-plane faults
# ----------------------------------------------------------------------
class TestServiceFaults:
    def test_bare_int_kill_primary_means_applied_phase(self):
        plan = FaultPlan(kill_primary=3)
        assert plan.should_kill_primary(3, "applied")
        assert not plan.should_kill_primary(3, "recv")

    def test_kill_primary_phases_are_distinct_sites(self):
        plan = FaultPlan(kill_primaries=[(2, "recv"), (2, "applied")])
        stripped = plan.without_kill_primary(2, "recv")
        assert not stripped.should_kill_primary(2, "recv")
        assert stripped.should_kill_primary(2, "applied")

    def test_without_replica_strips_all_fault_kinds(self):
        plan = FaultPlan(
            kill_replica=(1, 2),
            drop_wal_record=(1, 3),
            stall_heartbeat=(1, 4, 0.5),
        )
        stripped = plan.without_replica(1)
        assert not stripped
        assert plan.should_kill_replica(1, 2)  # original untouched

    def test_invalid_primary_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            FaultPlan(kill_primary=(2, "sideways"))

    def test_primary_seq_must_be_positive(self):
        with pytest.raises(ValueError, match="seq >= 1"):
            FaultPlan(kill_primary=(0, "recv"))

    def test_service_faults_count_toward_truthiness(self):
        assert FaultPlan(kill_primary=2)
        assert FaultPlan(drop_wal_record=(0, 1))
        assert not FaultPlan()


# ----------------------------------------------------------------------
# Supervisor validation
# ----------------------------------------------------------------------
class TestSupervisorValidation:
    def test_requires_replicas(self, tmp_path):
        with pytest.raises(ValueError, match="replicas >= 1"):
            ServiceSupervisor(
                ring_of_cliques(3, 4), str(tmp_path), make_config(replicas=0)
            )

    def test_requires_strict_edits(self, tmp_path):
        with pytest.raises(ValueError, match="strict_edits"):
            ServiceSupervisor(
                ring_of_cliques(3, 4), str(tmp_path),
                make_config(strict_edits=False),
            )

    def test_requires_checkpoint_every(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            ServiceSupervisor(
                ring_of_cliques(3, 4), str(tmp_path),
                make_config(checkpoint_every=0),
            )

    def test_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ServiceSupervisor(ring_of_cliques(3, 4), None, make_config())

    def test_accepts_flat_config_and_overrides(self, tmp_path):
        sup = ServiceSupervisor(
            ring_of_cliques(3, 4), str(tmp_path),
            ServiceConfig(seed=3, iterations=ITERATIONS, batch_size=2),
            replicas=1, seed=9,
        )
        assert sup.plan.replicas == 1
        assert sup.plan.requested.algo.seed == 9

    def test_queries_require_start(self, tmp_path):
        sup = ServiceSupervisor(ring_of_cliques(3, 4), str(tmp_path),
                                make_config())
        with pytest.raises(RuntimeError, match="not started"):
            sup.stats()


# ----------------------------------------------------------------------
# Replication happy path (CI smoke subset lives here)
# ----------------------------------------------------------------------
class TestReplicationSmoke:
    def test_failure_free_smoke(self, tmp_path, baseline_snapshot):
        snapshot, stats, client = run_supervised(tmp_path, fault_plan=None)
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 0
        assert stats["promoted_replica"] is None
        assert stats["committed_seq"] == TOTAL_SEQS
        # Every replica fully caught up by shutdown.
        for replica in stats["replicas"].values():
            assert replica["acked"] == TOTAL_SEQS
            assert not replica["stalled"]
        # Queries were served by replicas, none errored.
        assert client.queries_served == 2 * len(EDITS)
        assert client.primary_fallbacks == 0

    def test_kill_primary_failover_smoke(self, tmp_path, baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path, FaultPlan(kill_primary=(2, "applied"))
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 1
        assert stats["promoted_replica"] == 0  # freshest; ties break low
        assert stats["replayed_records"] == 1  # the applied-but-unacked batch
        assert client.queries_served == 2 * len(EDITS)

    def test_finish_returns_replicated_result(self, tmp_path):
        config = make_config()
        sup = ServiceSupervisor(
            ring_of_cliques(3, 4), str(tmp_path), config,
            fault_plan=FaultPlan(kill_primary=(1, "applied")),
        ).start()
        sup.submit_insert(0, 4)
        sup.submit_insert(0, 6)
        result = sup.finish()
        assert result.failovers == 1
        assert result.promoted_replica == 0
        assert result.replayed_records == 1
        assert len(result.cover) > 0
        assert result.plan.replicated


# ----------------------------------------------------------------------
# The kill-the-primary matrix: every seq point, both phases, both wires
# ----------------------------------------------------------------------
class TestKillPrimaryMatrix:
    @pytest.mark.parametrize("seq", range(1, TOTAL_SEQS + 1))
    @pytest.mark.parametrize("phase", ["recv", "applied"])
    def test_pipe_kill_bit_identical(self, tmp_path, baseline_snapshot,
                                     seq, phase):
        snapshot, stats, client = run_supervised(
            tmp_path, FaultPlan(kill_primary=(seq, phase))
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 1
        assert stats["promoted_replica"] is not None
        # A recv-phase kill loses the record in flight (nothing durable,
        # nothing to replay); an applied-phase kill leaves it in the WAL
        # for the promotion to replay.
        assert stats["replayed_records"] == (1 if phase == "applied" else 0)
        assert client.queries_served == 2 * len(EDITS)

    @pytest.mark.parametrize("phase", ["recv", "applied"])
    def test_tcp_kill_bit_identical(self, tmp_path, baseline_snapshot, phase):
        snapshot, stats, client = run_supervised(
            tmp_path, FaultPlan(kill_primary=(2, phase)),
            service_transport="tcp",
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 1
        assert client.queries_served == 2 * len(EDITS)

    def test_tcp_failure_free_matches_pipe(self, tmp_path, baseline_snapshot):
        snapshot, stats, _client = run_supervised(
            tmp_path, fault_plan=None, service_transport="tcp"
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 0

    def test_chained_failovers_bit_identical(self, tmp_path,
                                             baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path,
            FaultPlan(kill_primaries=[(2, "applied"), (3, "recv")]),
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 2
        assert stats["promoted_replica"] == 1  # the one replica left
        assert client.queries_served == 2 * len(EDITS)

    def test_failover_budget_exhausted(self, tmp_path):
        with pytest.raises(FailoverExhaustedError, match="max_failovers"):
            run_supervised(
                tmp_path,
                FaultPlan(kill_primaries=[(1, "applied"), (2, "applied")]),
                max_failovers=1,
            )


# ----------------------------------------------------------------------
# Replica-side faults: respawn, re-ship, re-route
# ----------------------------------------------------------------------
class TestReplicaFaults:
    def test_kill_replica_respawns_bit_identical(self, tmp_path,
                                                 baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path, FaultPlan(kill_replica=(1, 2))
        )
        assert snapshot == baseline_snapshot
        assert stats["replica_respawns"] == 1
        assert stats["replicas"][1]["respawns"] == 1
        # The respawned replica caught back up.
        acked = [r["acked"] for r in stats["replicas"].values()]
        assert acked == [TOTAL_SEQS, TOTAL_SEQS]
        assert client.queries_served == 2 * len(EDITS)

    def test_dropped_wal_record_is_reshipped(self, tmp_path,
                                             baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path, FaultPlan(drop_wal_record=(0, 2))
        )
        assert snapshot == baseline_snapshot
        assert stats["wal_reships"] >= 1
        acked = [r["acked"] for r in stats["replicas"].values()]
        assert acked == [TOTAL_SEQS, TOTAL_SEQS]
        assert client.queries_served == 2 * len(EDITS)

    def test_heartbeat_stall_reroutes_not_errors(self, tmp_path,
                                                 baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path,
            FaultPlan(stall_heartbeat=(0, 2, 0.6)),
            heartbeat_interval=0.15,
        )
        assert snapshot == baseline_snapshot
        # Queries kept being answered throughout the stall window.
        assert client.queries_served == 2 * len(EDITS)
        # The healthy replica stayed caught up; the stalled one is either
        # marked lapsed or has recovered by shutdown (the 0.6s stall can
        # outlast this short run, so both outcomes are legal).
        assert stats["replicas"][1]["acked"] == TOTAL_SEQS
        lagging = stats["replicas"][0]
        assert lagging["stalled"] or lagging["acked"] == TOTAL_SEQS

    def test_combined_faults_bit_identical(self, tmp_path,
                                           baseline_snapshot):
        snapshot, stats, client = run_supervised(
            tmp_path,
            FaultPlan(
                kill_primary=(3, "applied"),
                kill_replica=(1, 1),
                drop_wal_record=(0, 2),
            ),
        )
        assert snapshot == baseline_snapshot
        assert stats["failovers"] == 1
        assert client.queries_served == 2 * len(EDITS)


# ----------------------------------------------------------------------
# Client semantics
# ----------------------------------------------------------------------
class TestReplicatedClient:
    def test_semantic_errors_propagate(self, tmp_path):
        sup = ServiceSupervisor(
            ring_of_cliques(3, 4), str(tmp_path), make_config()
        ).start()
        try:
            client = sup.client()
            with pytest.raises(KeyError, match="no live community"):
                client.members(999)
        finally:
            sup.shutdown()

    def test_client_attempts_validated(self, tmp_path):
        sup = ServiceSupervisor(
            ring_of_cliques(3, 4), str(tmp_path), make_config()
        )
        with pytest.raises(ValueError, match="attempts"):
            sup.client(attempts=0)

    def test_round_robin_spreads_over_replicas(self, tmp_path):
        sup = ServiceSupervisor(
            ring_of_cliques(3, 4), str(tmp_path), make_config()
        ).start()
        try:
            client = sup.client()
            for _ in range(6):
                client.communities_of(0)
            assert client.queries_served == 6
            assert client.primary_fallbacks == 0
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# CLI exposure
# ----------------------------------------------------------------------
class TestServeReplicatedCLI:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_serve_with_replicas(self, tmp_path):
        import json

        from repro.graph.io import write_edge_list

        graph_file = str(tmp_path / "graph.txt")
        write_edge_list(ring_of_cliques(3, 4), graph_file)
        edits_file = tmp_path / "edits.txt"
        edits_file.write_text(
            "".join(f"{op} {u} {v}\n" for op, u, v in EDITS[:4])
        )
        code, output = self.run_cli(
            "serve", graph_file,
            "--edits", str(edits_file),
            "--checkpoint-dir", str(tmp_path / "state"),
            "--replicas", "2", "--batch-size", "2", "--staleness", "2",
            "-T", str(ITERATIONS), "--seed", "3",
            "--query", "0",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["stats"]["failovers"] == 0
        assert payload["stats"]["committed_seq"] == 2
        assert "replicated service" in payload["plan"]
        assert payload["client"]["queries_served"] >= 1

    def test_replication_knobs_require_replicas(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        graph_file = str(tmp_path / "graph.txt")
        write_edge_list(ring_of_cliques(3, 4), graph_file)
        code, _output = self.run_cli(
            "serve", graph_file, "--max-failovers", "3"
        )
        assert code == 2  # clean CLI error, not a traceback
        assert "requires --replicas" in capsys.readouterr().err

    def test_recover_with_replicas_rejected(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        graph_file = str(tmp_path / "graph.txt")
        write_edge_list(ring_of_cliques(3, 4), graph_file)
        code, _output = self.run_cli(
            "serve", graph_file, "--recover", "--replicas", "2",
            "--checkpoint-dir", str(tmp_path / "state"),
        )
        assert code == 2
        assert "--recover" in capsys.readouterr().err
