"""Tests for the premises stated in Section IV of the paper.

* "Vertex insertion can be handled in the same way as pretending the new
  vertex was an old vertex with all old neighbors removed" — under the
  counter-based randomness this is not merely distributionally true but
  *bit-exact*, which these tests assert.
* "Vertex deletion can also be handled by ignoring the deleted vertex."
* The per-batch premise that inserted/deleted edges are arbitrary sets
  (interleavings compose).
"""


from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.generators import ring_of_cliques


def fitted_corrector(graph, seed=5, iterations=20):
    propagator = ReferencePropagator(graph, seed=seed)
    propagator.propagate(iterations)
    return CorrectionPropagator(propagator)


class TestVertexInsertionPremise:
    def test_new_vertex_equals_preexisting_isolated_vertex(self):
        """Route A: vertex 99 exists isolated from the start.
        Route B: vertex 99 does not exist until the batch inserts its edges.
        The resulting label states must be identical."""
        batch = EditBatch.build(insertions=[(99, 0), (99, 7), (99, 13)])

        graph_a = ring_of_cliques(3, 5)
        graph_a.add_vertex(99)
        corrector_a = fitted_corrector(graph_a)
        corrector_a.apply_batch(batch)

        graph_b = ring_of_cliques(3, 5)
        corrector_b = fitted_corrector(graph_b)
        corrector_b.apply_batch(batch)

        assert corrector_a.state.labels == corrector_b.state.labels
        assert corrector_a.state.srcs == corrector_b.state.srcs
        assert corrector_a.state.epochs == corrector_b.state.epochs
        assert graph_a == graph_b

    def test_new_vertex_slots_draw_over_inserted_edges_only(self):
        graph = ring_of_cliques(3, 5)
        corrector = fitted_corrector(graph)
        corrector.apply_batch(EditBatch.build(insertions=[(99, 0), (99, 7)]))
        srcs = corrector.state.srcs[99][1:]
        assert set(srcs) <= {0, 7}
        assert len(set(srcs)) == 2  # with 20 slots both neighbours appear


class TestVertexDeletionPremise:
    def test_deletion_equals_edge_removal_plus_forgetting(self):
        """remove_vertex == apply the incident-edge deletion batch, then drop
        the state — for everything the rest of the graph can observe."""
        graph_a = ring_of_cliques(3, 5)
        corrector_a = fitted_corrector(graph_a)
        corrector_a.remove_vertex(7)

        graph_b = ring_of_cliques(3, 5)
        corrector_b = fitted_corrector(graph_b)
        incident = EditBatch.build(
            deletions=[(7, u) for u in graph_b.neighbors_view(7)]
        )
        corrector_b.apply_batch(incident)

        for v in graph_a.vertices():
            assert corrector_a.state.labels[v] == corrector_b.state.labels[v]
            assert corrector_a.state.srcs[v] == corrector_b.state.srcs[v]

    def test_deleted_vertex_label_vanishes_from_sources(self):
        graph = ring_of_cliques(2, 5)
        corrector = fitted_corrector(graph)
        corrector.remove_vertex(0)
        for v in graph.vertices():
            assert all(src != 0 for src in corrector.state.srcs[v])


class TestBatchComposition:
    def test_two_batches_equal_their_merge_distributionally(self):
        """Applying A then B touches the same final graph as the merged
        batch; both label states satisfy the full invariants (values differ
        because epochs differ — that is expected and correct)."""
        base = ring_of_cliques(3, 5)
        batch_a = EditBatch.build(deletions=[(0, 1)])
        batch_b = EditBatch.build(insertions=[(0, 5)])

        corrector_two = fitted_corrector(base.copy())
        graph_two = corrector_two.graph
        corrector_two.apply_batch(batch_a)
        corrector_two.apply_batch(batch_b)

        corrector_one = fitted_corrector(base.copy())
        graph_one = corrector_one.graph
        corrector_one.apply_batch(batch_a.merged_with(batch_b))

        assert graph_two == graph_one
        corrector_two.state.validate(graph_two)
        corrector_one.state.validate(graph_one)

    def test_detector_auto_engine_falls_back_for_sparse_ids(self):
        from repro.core.detector import RSLPADetector

        graph = Graph.from_edges([(10, 20), (20, 30), (10, 30), (30, 40)])
        detector = RSLPADetector(graph, seed=1, iterations=15).fit()
        assert detector.label_state.num_iterations == 15
        detector.update(EditBatch.build(insertions=[(10, 40)]))
        detector.label_state.validate(detector.graph)
