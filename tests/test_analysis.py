"""Tests for the static invariant checker (repro.analysis).

Rule-by-rule positive/negative fixtures (snippets routed through
``check_source`` with repro-package paths so scoping applies), the
suppression and baseline machinery, the CLI surface, and — the one that
matters most — the self-check: ``repro lint`` must be clean on the
shipped tree, because CI runs exactly that on every push.
"""

import io
import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    FRAMEWORK_RULE,
    LintReport,
    RULES,
    check_source,
    format_github,
    format_json,
    format_text,
    lint_paths,
    run_checks,
)
from repro.analysis.context import ModuleContext, Rule, package_relative
from repro.cli import main

CORE = "src/repro/core/snippet.py"
GRAPH = "src/repro/graph/snippet.py"
DISTRIBUTED = "src/repro/distributed/snippet.py"
SERVICE = "src/repro/service/snippet.py"
TRANSPORT = "src/repro/distributed/transport.py"
DURABILITY = "src/repro/service/durability.py"


def rules_of(source, path, **kwargs):
    """Rule ids of all findings for a snippet (dedented, deduplicated)."""
    findings = check_source(textwrap.dedent(source), path, **kwargs)
    return sorted({f.rule for f in findings})


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# RPL001 — determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_wall_clock_flagged_in_scope(self):
        src = """
            import time
            def stamp():
                return time.time()
        """
        assert rules_of(src, CORE) == ["RPL001"]

    def test_monotonic_and_perf_counter_allowed(self):
        src = """
            import time
            def deadline():
                return time.monotonic() + 1.0
            def metric():
                return time.perf_counter(), time.time_ns()
        """
        assert rules_of(src, CORE) == []

    def test_wall_clock_out_of_scope_not_flagged(self):
        # graph/ and workloads/ are not algorithm planes.
        src = """
            import time
            def stamp():
                return time.time()
        """
        assert rules_of(src, GRAPH) == []

    def test_datetime_now_flagged(self):
        src = """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """
        assert rules_of(src, SERVICE) == ["RPL001"]

    def test_global_random_flagged_seeded_instance_allowed(self):
        bad = """
            import random
            def pick(xs):
                return random.choice(xs)
        """
        good = """
            import random
            def pick(xs, seed):
                return random.Random(seed).choice(xs)
        """
        assert rules_of(bad, CORE) == ["RPL001"]
        assert rules_of(good, CORE) == []

    def test_from_import_random_resolved_through_alias(self):
        src = """
            from random import shuffle
            def mix(xs):
                shuffle(xs)
        """
        assert rules_of(src, DISTRIBUTED) == ["RPL001"]

    def test_numpy_global_rng_flagged_seeded_default_rng_allowed(self):
        bad = """
            import numpy as np
            def draw(n):
                return np.random.rand(n)
        """
        unseeded = """
            import numpy as np
            def gen():
                return np.random.default_rng()
        """
        seeded = """
            import numpy as np
            def gen(seed):
                return np.random.default_rng(seed)
        """
        assert rules_of(bad, CORE) == ["RPL001"]
        assert rules_of(unseeded, CORE) == ["RPL001"]
        assert rules_of(seeded, CORE) == []

    def test_set_iteration_is_warning_sorted_is_clean(self):
        bad = """
            def route(edges):
                for edge in set(edges):
                    yield edge
        """
        good = """
            def route(edges):
                for edge in sorted(set(edges)):
                    yield edge
        """
        findings = check_source(textwrap.dedent(bad), DISTRIBUTED)
        assert [f.rule for f in findings] == ["RPL001"]
        assert findings[0].severity == "warning"
        assert rules_of(good, DISTRIBUTED) == []

    def test_set_literal_comprehension_iteration_flagged(self):
        src = """
            def labels(xs):
                return [x for x in {v.label for v in xs}]
        """
        assert rules_of(src, CORE) == ["RPL001"]

    def test_id_and_hash_in_ordering_keys_flagged(self):
        by_id = """
            def order(xs):
                return sorted(xs, key=lambda v: id(v))
        """
        by_hash = """
            def order(xs):
                xs.sort(key=lambda v: hash(v.name))
        """
        by_value = """
            def order(xs):
                return sorted(xs, key=lambda v: v.name)
        """
        assert rules_of(by_id, CORE) == ["RPL001"]
        assert rules_of(by_hash, CORE) == ["RPL001"]
        assert rules_of(by_value, CORE) == []


# ----------------------------------------------------------------------
# RPL002 — obs overhead
# ----------------------------------------------------------------------
class TestObsOverheadRule:
    def test_module_level_import_flagged(self):
        for stmt in (
            "from repro.obs import Obs",
            "import repro.obs",
            "import repro.obs.metrics",
            "from repro.obs.trace import TraceRecorder",
            "from repro import obs",
        ):
            assert rules_of(stmt + "\n", CORE) == ["RPL002"], stmt

    def test_function_scoped_import_allowed(self):
        src = """
            def traced_path(enabled):
                if not enabled:
                    return None
                from repro.obs import Obs
                return Obs()
        """
        assert rules_of(src, DISTRIBUTED) == []

    def test_type_checking_guard_allowed(self):
        src = """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.obs import Obs
        """
        assert rules_of(src, CORE) == []

    def test_obs_package_itself_exempt(self):
        src = "from repro.obs.metrics import MetricsRegistry\n"
        assert rules_of(src, "src/repro/obs/trace.py") == []

    def test_unrelated_module_level_imports_clean(self):
        src = "from repro.core.labels import LabelState\n"
        assert rules_of(src, SERVICE) == []


# ----------------------------------------------------------------------
# RPL003 — resource discipline
# ----------------------------------------------------------------------
class TestResourceDisciplineRule:
    def test_straight_line_close_is_not_enough(self):
        # An exception between create and close leaks the socket: the
        # rule demands with/try-finally/owner escape, not happy-path close.
        src = """
            import socket
            def dial(host):
                sock = socket.create_connection((host, 9))
                sock.sendall(b"hello")
                sock.close()
        """
        assert rules_of(src, TRANSPORT) == ["RPL003"]

    def test_try_finally_release_accepted(self):
        src = """
            import socket
            def dial(host):
                sock = socket.create_connection((host, 9))
                try:
                    sock.sendall(b"hello")
                finally:
                    sock.close()
        """
        assert rules_of(src, TRANSPORT) == []

    def test_with_statement_accepted(self):
        src = """
            def publish(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
        """
        assert rules_of(src, DURABILITY) == []

    def test_escape_to_attribute_accepted(self):
        src = """
            import socket
            class Wire:
                def connect(self, host):
                    self._sock = socket.create_connection((host, 9))
        """
        assert rules_of(src, TRANSPORT) == []

    def test_escape_to_subscripted_owner_accepted(self):
        # The transport ring pattern: a local that lands in self._slots
        # is released by the owner's close()/shutdown() path.
        src = """
            from multiprocessing import shared_memory
            class Ring:
                def grow(self, slot, size):
                    segment = shared_memory.SharedMemory(create=True, size=size)
                    self._slots[slot] = segment
                    return segment.name
        """
        assert rules_of(src, TRANSPORT) == []

    def test_shared_memory_leak_flagged(self):
        src = """
            from multiprocessing import shared_memory
            def scratch(size):
                segment = shared_memory.SharedMemory(create=True, size=size)
                segment.buf[:4] = b"demo"
        """
        assert rules_of(src, TRANSPORT) == ["RPL003"]

    def test_write_handle_leak_flagged_read_handle_ignored(self):
        bad = """
            def append(path, line):
                handle = open(path, "a")
                handle.write(line)
        """
        read = """
            def load(path):
                handle = open(path)
                return handle.read()
        """
        assert rules_of(bad, DURABILITY) == ["RPL003"]
        assert rules_of(read, DURABILITY) == []

    def test_returned_resource_is_callers_problem(self):
        src = """
            import socket
            def dial(host):
                return socket.create_connection((host, 9))
        """
        assert rules_of(src, TRANSPORT) == []

    def test_out_of_scope_module_not_checked(self):
        src = """
            import socket
            def dial(host):
                sock = socket.create_connection((host, 9))
                sock.close()
        """
        assert rules_of(src, CORE) == []


# ----------------------------------------------------------------------
# RPL004 — API hygiene
# ----------------------------------------------------------------------
class TestApiHygieneRule:
    def test_deprecated_engine_kwarg_flagged(self):
        src = """
            from repro.core.detector import RSLPADetector
            def fit(graph):
                return RSLPADetector(graph, engine="fast").fit()
        """
        assert rules_of(src, SERVICE) == ["RPL004"]

    def test_backend_kwarg_clean(self):
        src = """
            from repro.core.detector import RSLPADetector
            def fit(graph):
                return RSLPADetector(graph, backend="fast").fit()
        """
        assert rules_of(src, SERVICE) == []

    def test_execution_config_engine_axis_not_confused(self):
        # ExecutionConfig(engine=...) is the *message plane* axis, a
        # different, non-deprecated parameter; it must not be flagged.
        src = """
            from repro.api.config import ExecutionConfig
            def plan():
                return ExecutionConfig(engine="array")
        """
        assert rules_of(src, SERVICE) == []

    def test_unfrozen_config_dataclass_flagged(self):
        bad = """
            from dataclasses import dataclass
            @dataclass
            class RetryConfig:
                attempts: int = 3
        """
        good = """
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class RetryConfig:
                attempts: int = 3
        """
        non_config = """
            from dataclasses import dataclass
            @dataclass
            class RetryState:
                attempts: int = 3
        """
        assert rules_of(bad, CORE) == ["RPL004"]
        assert rules_of(good, CORE) == []
        assert rules_of(non_config, CORE) == []

    def test_concrete_transport_import_flagged_outside_registry(self):
        src = "from repro.distributed.transport import SharedMemoryTransport\n"
        assert rules_of(src, DISTRIBUTED) == ["RPL004"]
        # Home module, registry, and package __init__ re-exports are exempt.
        assert rules_of(src, "src/repro/api/registry.py") == []
        assert rules_of(src, "src/repro/distributed/__init__.py") == []

    def test_abstract_transport_types_importable_anywhere(self):
        src = "from repro.distributed.transport import Transport, WorkerEndpoint\n"
        assert rules_of(src, DISTRIBUTED) == []


# ----------------------------------------------------------------------
# RPL005 — concurrency
# ----------------------------------------------------------------------
class TestConcurrencyRule:
    def test_bare_except_flagged_typed_clean(self):
        bad = """
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
        """
        good = """
            def swallow(fn):
                try:
                    fn()
                except OSError:
                    pass
        """
        assert rules_of(bad, CORE) == ["RPL005"]
        assert rules_of(good, CORE) == []

    def test_mutable_default_flagged_in_pickled_planes_only(self):
        src = """
            class Program:
                def __init__(self, hooks=[]):
                    self.hooks = hooks
        """
        assert rules_of(src, DISTRIBUTED) == ["RPL005"]
        assert rules_of(src, SERVICE) == ["RPL005"]
        assert rules_of(src, CORE) == []  # not a worker-pickled plane

    def test_none_default_clean(self):
        src = """
            class Program:
                def __init__(self, hooks=None):
                    self.hooks = hooks or []
        """
        assert rules_of(src, DISTRIBUTED) == []

    def test_fsync_under_lock_flagged(self):
        src = """
            import os
            class Store:
                def append(self, handle):
                    with self._lock:
                        handle.flush()
                        os.fsync(handle.fileno())
        """
        assert rules_of(src, SERVICE) == ["RPL005"]

    def test_fsync_outside_lock_clean(self):
        src = """
            import os
            class Store:
                def append(self, handle):
                    handle.flush()
                    os.fsync(handle.fileno())
                    with self._lock:
                        self._records += 1
        """
        assert rules_of(src, SERVICE) == []

    def test_blocking_send_under_lock_flagged(self):
        src = """
            class Wire:
                def ship(self, payload):
                    with self._lock:
                        self._sock.sendall(payload)
        """
        assert rules_of(src, SERVICE) == ["RPL005"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_disable_with_reason_suppresses(self):
        src = """
            import os
            class Store:
                def append(self, handle):
                    with self._lock:
                        os.fsync(handle.fileno())  # repro-lint: disable=RPL005 -- the lock IS the contract
        """
        assert rules_of(src, SERVICE) == []

    def test_standalone_disable_covers_next_code_line(self):
        src = """
            import os
            class Store:
                def append(self, handle):
                    with self._lock:
                        # repro-lint: disable=RPL005 -- the lock IS the contract
                        os.fsync(handle.fileno())
        """
        assert rules_of(src, SERVICE) == []

    def test_disable_without_reason_is_flagged_but_still_suppresses(self):
        src = """
            import os
            class Store:
                def append(self, handle):
                    with self._lock:
                        os.fsync(handle.fileno())  # repro-lint: disable=RPL005
        """
        findings = check_source(textwrap.dedent(src), SERVICE)
        assert [f.rule for f in findings] == [FRAMEWORK_RULE]
        assert "justification" in findings[0].message

    def test_unused_disable_is_flagged(self):
        src = "x = 1  # repro-lint: disable=RPL001 -- stale excuse\n"
        findings = check_source(src, CORE)
        assert [f.rule for f in findings] == [FRAMEWORK_RULE]
        assert "unused suppression" in findings[0].message

    def test_disable_for_other_rule_does_not_suppress(self):
        src = """
            def swallow(fn):
                try:
                    fn()
                except:  # repro-lint: disable=RPL001 -- wrong rule id
                    pass
        """
        rule_ids = rules_of(src, CORE)
        assert "RPL005" in rule_ids      # the real finding survives
        assert FRAMEWORK_RULE in rule_ids  # and the disable is unused

    def test_unknown_rule_id_in_disable_is_flagged(self):
        src = "x = 1  # repro-lint: disable=RPL999999 -- typo\n"
        findings = check_source(src, CORE)
        assert [f.rule for f in findings] == [FRAMEWORK_RULE]

    def test_docstring_mention_is_not_a_directive(self):
        src = '''
            def helper():
                """Explains the marker: # repro-lint: disable=RPL001."""
                return 1
        '''
        assert rules_of(src, CORE) == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding(self, rule="RPL001", path=CORE, symbol="f"):
        return Finding(rule=rule, path=path, line=3, col=0,
                       message="m", symbol=symbol)

    def test_round_trip_and_matching(self, tmp_path):
        finding = self._finding()
        baseline = Baseline.from_findings([finding], justification="debt")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        fresh, grandfathered, stale = reloaded.split([finding])
        assert fresh == [] and grandfathered == [finding] and stale == []

    def test_line_drift_still_matches(self, tmp_path):
        baseline = Baseline.from_findings(
            [self._finding()], justification="debt"
        )
        moved = Finding(rule="RPL001", path=CORE, line=99, col=4,
                        message="m", symbol="f")
        fresh, grandfathered, _ = baseline.split([moved])
        assert fresh == [] and grandfathered == [moved]

    def test_unmatched_finding_is_fresh_and_entry_goes_stale(self):
        baseline = Baseline.from_findings(
            [self._finding(symbol="old_site")], justification="debt"
        )
        other = self._finding(symbol="new_site")
        fresh, grandfathered, stale = baseline.split([other])
        assert fresh == [other] and grandfathered == []
        assert [e.symbol for e in stale] == ["old_site"]

    def test_entry_without_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "RPL001", "path": CORE, "symbol": "f",
                         "justification": "  "}],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)
        with pytest.raises(ValueError, match="justification"):
            BaselineEntry("RPL001", CORE, "f", "")

    def test_version_and_shape_checked(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="baseline"):
            Baseline.load(path)


# ----------------------------------------------------------------------
# Framework: context, registry, runner, formats
# ----------------------------------------------------------------------
class TestFramework:
    def test_package_relative(self):
        assert package_relative("src/repro/core/detector.py") == "core/detector.py"
        assert package_relative("repro/obs/trace.py") == "obs/trace.py"
        assert package_relative("tests/test_x.py") is None

    def test_syntax_error_is_a_framework_finding(self):
        findings = check_source("def broken(:\n", CORE)
        assert [f.rule for f in findings] == [FRAMEWORK_RULE]
        assert "syntax error" in findings[0].message

    def test_import_alias_resolution(self):
        ctx = ModuleContext(CORE, textwrap.dedent("""
            import numpy as np
            from multiprocessing import shared_memory
            from time import time as now
        """))
        assert ctx.imports["np"] == "numpy"
        assert ctx.imports["shared_memory"] == "multiprocessing.shared_memory"
        assert ctx.imports["now"] == "time.time"

    def test_plugin_rule_registration(self):
        class NoTodoRule(Rule):
            rule_id = "RPL901"
            title = "no TODO constants"
            scope_any_file = True

            def check(self, ctx):
                import ast
                for node in ctx.walk(ast.Constant):
                    if node.value == "TODO":
                        yield self.finding(ctx, node, "TODO constant")

        RULES.register("RPL901", NoTodoRule)
        try:
            findings = check_source(
                'MARKER = "TODO"\n', CORE, rules=[NoTodoRule()]
            )
            assert [f.rule for f in findings] == ["RPL901"]
        finally:
            RULES._entries.pop("RPL901", None)

    def test_findings_sorted_and_deduplicated(self):
        src = """
            import time
            def a():
                return time.time()
            def b():
                return time.time()
        """
        findings = check_source(textwrap.dedent(src), CORE)
        assert len(findings) == 2
        assert findings == sorted(findings, key=Finding.sort_key)

    def test_run_checks_over_directory(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nT = time.time()\n")
        (pkg / "good.py").write_text("X = 1\n")
        findings = run_checks([tmp_path / "src"])
        assert [f.rule for f in findings] == ["RPL001"]
        assert findings[0].path.endswith("core/bad.py")

    def test_formats(self):
        finding = Finding(rule="RPL001", path=CORE, line=3, col=4,
                          message="msg % with\nnewline", symbol="f")
        report = LintReport([finding], [], [], files_checked=1)
        text = format_text(report, stats=True)
        assert f"{CORE}:3:5: RPL001 error" in text
        assert "RPL001: 1" in text
        github = format_github(report)
        assert f"::error file={CORE},line=3,col=5,title=RPL001::" in github
        assert "%25" in github and "%0A" in github  # escaped payload
        payload = json.loads(format_json(report))
        assert payload["counts_by_rule"] == {"RPL001": 1}
        assert payload["findings"][0]["symbol"] == "f"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestLintCli:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nT = time.time()\n")
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("X = 1\n")
        code, output = run_cli("lint", str(tmp_path / "src"))
        assert code == 0
        assert "0 error(s)" in output

    def test_findings_exit_one(self, dirty_tree):
        code, output = run_cli("lint", str(dirty_tree / "src"))
        assert code == 1
        assert "RPL001" in output

    def test_github_format(self, dirty_tree):
        code, output = run_cli(
            "lint", str(dirty_tree / "src"), "--format", "github"
        )
        assert code == 1
        assert "::error file=" in output and "title=RPL001" in output

    def test_json_format_and_stats(self, dirty_tree):
        code, output = run_cli(
            "lint", str(dirty_tree / "src"), "--format", "json", "--stats"
        )
        assert code == 1
        assert json.loads(output)["counts_by_rule"] == {"RPL001": 1}
        code, output = run_cli("lint", str(dirty_tree / "src"), "--stats")
        assert "per-rule finding counts:" in output
        assert "RPL001: 1" in output

    def test_write_baseline_then_clean(self, dirty_tree):
        baseline = dirty_tree / "baseline.json"
        code, output = run_cli(
            "lint", str(dirty_tree / "src"),
            "--baseline", str(baseline), "--write-baseline",
        )
        assert code == 0 and "grandfathered" in output
        code, output = run_cli(
            "lint", str(dirty_tree / "src"), "--baseline", str(baseline)
        )
        assert code == 0
        assert "1 grandfathered" in output

    def test_write_baseline_requires_path(self, dirty_tree):
        code, _ = run_cli("lint", str(dirty_tree / "src"), "--write-baseline")
        assert code == 2

    def test_strict_promotes_warnings(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "warn.py").write_text(
            "def f(xs):\n    return [x for x in set(xs)]\n"
        )
        code, _ = run_cli("lint", str(tmp_path / "src"))
        assert code == 0  # warning severity does not gate by default
        code, _ = run_cli("lint", str(tmp_path / "src"), "--strict")
        assert code == 1

    def test_missing_path_is_usage_error(self, tmp_path):
        code, _ = run_cli("lint", str(tmp_path / "nope"))
        assert code == 2


# ----------------------------------------------------------------------
# The self-check: the shipped tree is clean (CI runs exactly this)
# ----------------------------------------------------------------------
class TestShippedTreeClean:
    def test_repro_lint_smoke_clean_on_shipped_tree(self, repo_root):
        report = lint_paths([repo_root / "src" / "repro"])
        messages = [str(f) for f in report.findings]
        assert report.exit_code() == 0, (
            "repro lint must be clean on the shipped tree:\n"
            + "\n".join(messages)
        )
        # Warnings would also be new debt; the tree ships with none.
        assert messages == []
        assert report.files_checked >= 75

    def test_committed_baseline_is_empty_or_justified(self, repo_root):
        baseline = Baseline.load(repo_root / ".repro-lint-baseline.json")
        for entry in baseline.entries:
            assert entry.justification.strip()
        # The shipped tree carries no grandfathered debt.
        assert len(baseline) == 0

    def test_cli_self_check(self, repo_root):
        code, output = run_cli(
            "lint", str(repo_root / "src" / "repro"),
            "--baseline", str(repo_root / ".repro-lint-baseline.json"),
            "--stats",
        )
        assert code == 0
        assert "0 error(s), 0 warning(s)" in output


@pytest.fixture
def repo_root():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    if not (root / "src" / "repro").is_dir():  # pragma: no cover
        pytest.skip("source tree not available (installed package)")
    return root
