"""Tests for checkpoint/WAL durability and crash recovery.

The contract under test is the paper's operating mode made restartable:
kill the service after an arbitrary batch, ``recover()`` from the latest
checkpoint plus the WAL tail, and the state must be slot-for-slot
identical to the run that was never interrupted — per-seed label matrices
and extracted cover alike, on both backends.
"""

import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import RSLPADetector
from repro.core.labels_array import ArrayLabelState
from repro.graph.edits import EditBatch
from repro.graph.generators import ring_of_cliques
from repro.service import CommunityService
from repro.service.durability import (
    CheckpointStore,
    CorruptCheckpointError,
    encode_wal_record,
    parse_wal_line,
)
from repro.workloads.dynamic import EditStream

ITERATIONS = 30


def matrices(detector) -> ArrayLabelState:
    state = detector.array_state
    if state is None:
        state = ArrayLabelState.from_label_state(detector.label_state)
    return state


def assert_states_identical(da, db):
    sa, sb = matrices(da), matrices(db)
    for name in ("labels", "srcs", "poss", "epochs"):
        assert np.array_equal(getattr(sa, name), getattr(sb, name)), name
    assert np.array_equal(sa.alive, sb.alive)


class TestCheckpointStore:
    def fitted_state(self, graph, seed=5):
        detector = RSLPADetector(
            graph, seed=seed, iterations=ITERATIONS, backend="fast"
        ).fit()
        return detector.array_state, detector.graph

    def test_checkpoint_roundtrip(self, cliques_ring, tmp_path):
        state, graph = self.fitted_state(cliques_ring)
        store = CheckpointStore(tmp_path)
        store.write_checkpoint(state, graph, seed=5, batch_epoch=0)
        ckpt = store.load_checkpoint()
        assert ckpt.seed == 5
        assert ckpt.batch_epoch == 0
        assert ckpt.graph == graph
        for name in ("labels", "srcs", "poss", "epochs"):
            assert np.array_equal(getattr(ckpt.state, name), getattr(state, name))

    def test_latest_checkpoint_wins_and_old_pruned(self, cliques_ring, tmp_path):
        state, graph = self.fitted_state(cliques_ring)
        store = CheckpointStore(tmp_path, keep=2)
        for epoch in (0, 3, 7):
            store.write_checkpoint(state, graph, seed=5, batch_epoch=epoch)
        assert store.checkpoint_epochs() == [3, 7]
        assert store.load_checkpoint().batch_epoch == 7

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no checkpoints"):
            CheckpointStore(tmp_path).load_checkpoint()

    def test_wal_roundtrip_in_order(self, tmp_path):
        store = CheckpointStore(tmp_path)
        batches = [
            EditBatch.build(insertions=[(0, 1)]),
            EditBatch.build(deletions=[(0, 1)], insertions=[(2, 3)]),
        ]
        for epoch, batch in enumerate(batches, start=1):
            store.append_wal(epoch, batch)
        records = store.read_wal()
        assert [e for e, _ in records] == [1, 2]
        assert [b for _, b in records] == batches

    def test_wal_filter_by_epoch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for epoch in (1, 2, 3):
            store.append_wal(epoch, EditBatch.build(insertions=[(0, epoch)]))
        assert [e for e, _ in store.read_wal(after_epoch=2)] == [3]

    def test_torn_tail_is_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append_wal(1, EditBatch.build(insertions=[(0, 1)]))
        store.append_wal(2, EditBatch.build(insertions=[(0, 2)]))
        store.close()
        with open(store.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 3, "ins": [[0')  # crash mid-write
        assert [e for e, _ in store.read_wal()] == [1, 2]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append_wal(1, EditBatch.build(insertions=[(0, 1)]))
        store.append_wal(2, EditBatch.build(insertions=[(0, 2)]))
        store.close()
        lines = store.wal_path.read_text().splitlines()
        lines[0] = lines[0].replace('"epoch":1', '"epoch":9')
        store.wal_path.write_text("\n".join(lines) + "\n")
        # First record fails its CRC: nothing after it may replay either.
        assert store.read_wal() == []

    def test_checkpoint_rotates_wal(self, cliques_ring, tmp_path):
        state, graph = self.fitted_state(cliques_ring)
        store = CheckpointStore(tmp_path)
        for epoch in (1, 2, 3):
            store.append_wal(epoch, EditBatch.build(insertions=[(0, epoch + 30)]))
        store.write_checkpoint(state, graph, seed=5, batch_epoch=2)
        assert [e for e, _ in store.read_wal()] == [3]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestServiceRecovery:
    def run_service(self, tmp_path, backend, num_batches, checkpoint_every=2):
        graph = ring_of_cliques(5, 6)
        service = CommunityService(
            graph,
            seed=7,
            iterations=ITERATIONS,
            backend=backend,
            batch_size=4,
            staleness_batches=0,  # covers compare below: keep them fresh
            checkpoint_every=checkpoint_every,
            checkpoint_dir=str(tmp_path),
        ).start()
        stream = EditStream(graph, batch_size=4, seed=13)
        for batch in stream.take(num_batches):
            service.apply(batch)
        return service

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_recover_replays_wal_tail(self, tmp_path, backend):
        # checkpoint_every=2 and 5 batches: checkpoint at 4, WAL tail = [5].
        service = self.run_service(tmp_path, backend, num_batches=5)
        service.close()
        recovered = CommunityService.recover(
            str(tmp_path), backend=backend, staleness_batches=0
        )
        assert recovered.batches_applied == 5
        assert recovered.edits_applied == service.edits_applied
        assert_states_identical(service.detector, recovered.detector)
        assert recovered.cover() == service.cover()

    def test_recovered_service_continues_identically(self, tmp_path):
        service = self.run_service(tmp_path, "fast", num_batches=3)
        service.close()
        recovered = CommunityService.recover(str(tmp_path), staleness_batches=0)
        stream = EditStream(service.graph, batch_size=4, seed=99)
        for batch in stream.take(3):
            # The dead service continues detector-only (its durability files
            # now belong to the recovered instance); the recovered service
            # keeps the full ingest + durability path.
            service.detector.update(batch)
            recovered.apply(batch)
        assert_states_identical(service.detector, recovered.detector)
        assert recovered.cover() == service.detector.communities()

    def test_recover_across_backends(self, tmp_path):
        """A fast-backend run recovers bit-identically on the reference
        backend (checkpoints are backend-neutral)."""
        service = self.run_service(tmp_path, "fast", num_batches=3)
        service.close()
        recovered = CommunityService.recover(
            str(tmp_path), backend="reference", staleness_batches=0
        )
        assert_states_identical(service.detector, recovered.detector)

    def test_recover_requires_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CommunityService.recover(str(tmp_path))

    def test_gap_in_wal_rejected(self, tmp_path):
        service = self.run_service(tmp_path, "fast", num_batches=2,
                                   checkpoint_every=0)
        # WAL holds epochs 1..2 after the epoch-0 checkpoint; drop record 1.
        service.close()
        store = service.store
        lines = store.wal_path.read_text().splitlines()
        store.wal_path.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match="does not continue"):
            CommunityService.recover(str(tmp_path))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=4),
    backend=st.sampled_from(["fast", "reference"]),
    kill_after=st.integers(min_value=0, max_value=6),
    checkpoint_every=st.integers(min_value=1, max_value=3),
)
def test_crash_recovery_is_bit_identical(seed, backend, kill_after, checkpoint_every):
    """Kill after an arbitrary batch: recover() == the uninterrupted run.

    The property quantifies over seeds, backends, kill points, and
    checkpoint cadences (so the replayed WAL tail length varies from zero
    to everything-since-start).
    """
    total_batches = 6
    graph = ring_of_cliques(4, 5)

    # The uninterrupted run, stopped at the kill point for comparison.
    reference = RSLPADetector(
        graph, seed=seed, iterations=ITERATIONS, backend=backend
    ).fit()
    batches = EditStream(graph, batch_size=3, seed=seed + 100).take(total_batches)
    for batch in batches[:kill_after]:
        reference.update(batch)

    with tempfile.TemporaryDirectory() as tmp_dir:
        service = CommunityService(
            graph,
            seed=seed,
            iterations=ITERATIONS,
            backend=backend,
            batch_size=3,
            staleness_batches=0,  # covers compare below: keep them fresh
            checkpoint_every=checkpoint_every,
            checkpoint_dir=tmp_dir,
        ).start()
        for batch in batches[:kill_after]:
            service.apply(batch)
        service.close()  # the process dies here; only the files survive

        recovered = CommunityService.recover(
            tmp_dir, backend=backend, staleness_batches=0
        )
        assert recovered.batches_applied == kill_after
        assert_states_identical(reference, recovered.detector)
        assert recovered.cover() == reference.communities()

        # And the recovered service keeps absorbing the rest of the stream
        # exactly as the uninterrupted run would.
        for batch in batches[kill_after:]:
            reference.update(batch)
            recovered.apply(batch)
        assert_states_identical(reference, recovered.detector)
        assert recovered.cover() == reference.communities()
        recovered.close()


class TestDurabilityIdContract:
    def test_non_contiguous_graph_rejected_at_construction(self, tmp_path):
        from repro.graph.adjacency import Graph

        graph = Graph.from_edges([(10, 20), (20, 30), (10, 30)])
        with pytest.raises(ValueError, match="contiguous"):
            CommunityService(
                graph, seed=1, iterations=10, checkpoint_dir=str(tmp_path)
            )

    def test_gap_vertex_batch_skips_checkpoint_but_recovery_stays_exact(
        self, tmp_path
    ):
        """An auto-mode downgrade mid-ingest must not crash the service;
        the WAL keeps the un-checkpointable tail and recovery replays it."""
        graph = ring_of_cliques(4, 5)  # ids 0..19
        service = CommunityService(
            graph,
            seed=7,
            iterations=ITERATIONS,
            backend="auto",
            batch_size=4,
            staleness_batches=0,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        ).start()
        service.apply(EditBatch.build(insertions=[(0, 25)]))  # id gap: 20..24
        assert service.stats()["checkpoints_skipped"] == 1
        assert service.store.latest_epoch() == 0  # baseline checkpoint only
        service.apply(EditBatch.build(insertions=[(1, 26)]))
        service.close()

        recovered = CommunityService.recover(str(tmp_path), staleness_batches=0)
        assert recovered.batches_applied == 2
        # Gap ids cannot round-trip through the array helper: compare the
        # dict-backed states directly.
        sa = service.detector.label_state
        sb = recovered.detector.label_state
        for name in ("labels", "srcs", "poss", "epochs"):
            assert getattr(sa, name) == getattr(sb, name), name
        assert recovered.cover() == service.detector.communities()


class TestTornWALTail:
    """A torn WAL tail is counted, warned about, and cleanly discarded."""

    def run_service(self, tmp_path, num_batches, checkpoint_every=2):
        graph = ring_of_cliques(5, 6)
        service = CommunityService(
            graph,
            seed=7,
            iterations=ITERATIONS,
            batch_size=4,
            staleness_batches=0,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=str(tmp_path),
        ).start()
        stream = EditStream(graph, batch_size=4, seed=13)
        for batch in stream.take(num_batches):
            service.apply(batch)
        return service

    def tear_last_wal_record(self, store):
        lines = store.wal_path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn mid-write
        store.wal_path.write_text("\n".join(lines) + "\n")

    def test_recover_counts_discarded_tail(self, tmp_path, caplog):
        # Checkpoint at 4, WAL tail [5]; tearing epoch 5 loses one batch.
        service = self.run_service(tmp_path, num_batches=5)
        service.close()
        self.tear_last_wal_record(service.store)
        with caplog.at_level("WARNING", logger="repro.service.facade"):
            recovered = CommunityService.recover(
                str(tmp_path), staleness_batches=0
            )
        assert recovered.batches_applied == 4
        assert recovered.wal_discarded_records == 1
        assert recovered.stats()["wal_discarded_records"] == 1
        assert any(
            "torn WAL" in record.message for record in caplog.records
        )

    def test_recovered_state_is_exact_at_surviving_epoch(self, tmp_path):
        # The torn-tail recovery equals a run that only ever saw 4 batches.
        service = self.run_service(tmp_path, num_batches=5)
        service.close()
        self.tear_last_wal_record(service.store)
        recovered = CommunityService.recover(str(tmp_path), staleness_batches=0)
        with tempfile.TemporaryDirectory() as other:
            truth = self.run_service(other, num_batches=4)
            assert_states_identical(truth.detector, recovered.detector)
            assert recovered.cover() == truth.cover()
            truth.close()

    def test_intact_wal_discards_nothing(self, tmp_path):
        service = self.run_service(tmp_path, num_batches=5)
        service.close()
        recovered = CommunityService.recover(str(tmp_path), staleness_batches=0)
        assert recovered.wal_discarded_records == 0
        assert recovered.stats()["wal_discarded_records"] == 0


class TestWalRecordCodec:
    """encode_wal_record / parse_wal_line: the one codec every copy of a
    record passes through — on disk, in rotation, and on the replication
    wire."""

    def test_round_trip(self):
        batch = EditBatch.build(insertions=[(0, 5), (2, 3)],
                                deletions=[(1, 4)])
        line = encode_wal_record(7, batch)
        assert line.endswith("\n")
        parsed = parse_wal_line(line)
        assert parsed == (7, batch)

    def test_encoding_is_canonical(self):
        # Same batch, differently-ordered inputs: byte-identical lines.
        # Replication depends on this — the supervisor's encoded record
        # must match the line the primary logged, byte for byte.
        a = EditBatch.build(insertions=[(0, 5), (2, 3)])
        b = EditBatch.build(insertions=[(2, 3), (0, 5)])
        assert encode_wal_record(3, a) == encode_wal_record(3, b)

    def test_flipped_payload_fails_crc(self):
        line = encode_wal_record(7, EditBatch.build(insertions=[(0, 5)]))
        assert parse_wal_line(line.replace('"epoch":7', '"epoch":8')) is None

    def test_torn_line_is_rejected(self):
        line = encode_wal_record(7, EditBatch.build(insertions=[(0, 5)]))
        assert parse_wal_line(line[: len(line) // 2]) is None
        assert parse_wal_line("") is None
        assert parse_wal_line("not json at all\n") is None


class TestCorruptCheckpointFallback:
    """A corrupt checkpoint *file* falls back to an older retained one.

    Rotation keeps the full WAL tail of the *oldest retained* checkpoint,
    so recovering from an older epoch replays forward to the exact same
    state — the fallback costs replay time, never exactness.
    """

    def run_service(self, tmp_path, num_batches):
        graph = ring_of_cliques(5, 6)
        service = CommunityService(
            graph,
            seed=7,
            iterations=ITERATIONS,
            batch_size=4,
            staleness_batches=0,
            checkpoint_every=2,
            keep_checkpoints=3,
            checkpoint_dir=str(tmp_path),
        ).start()
        stream = EditStream(graph, batch_size=4, seed=13)
        for batch in stream.take(num_batches):
            service.apply(batch)
        return service

    def corrupt_checkpoint(self, store, epoch):
        path = store._checkpoint_path(epoch)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])  # torn copy

    def test_fallback_recovers_bit_identically(self, tmp_path):
        # Checkpoints at 2, 4, 6; corrupt the latest so recovery falls
        # back to epoch 4 and replays 5..6 from the retained WAL tail.
        service = self.run_service(tmp_path, num_batches=6)
        service.close()
        self.corrupt_checkpoint(service.store, 6)
        recovered = CommunityService.recover(str(tmp_path),
                                             staleness_batches=0)
        assert recovered.batches_applied == 6
        assert recovered.checkpoint_fallbacks == 1
        assert recovered.stats()["checkpoint_fallbacks"] == 1
        assert_states_identical(service.detector, recovered.detector)
        assert recovered.cover() == service.cover()

    def test_fallback_two_epochs_deep(self, tmp_path):
        service = self.run_service(tmp_path, num_batches=6)
        service.close()
        self.corrupt_checkpoint(service.store, 6)
        self.corrupt_checkpoint(service.store, 4)
        recovered = CommunityService.recover(str(tmp_path),
                                             staleness_batches=0)
        assert recovered.batches_applied == 6
        assert recovered.checkpoint_fallbacks == 2
        assert_states_identical(service.detector, recovered.detector)

    def test_every_checkpoint_corrupt_raises(self, tmp_path):
        service = self.run_service(tmp_path, num_batches=6)
        service.close()
        for epoch in service.store.checkpoint_epochs():
            self.corrupt_checkpoint(service.store, epoch)
        with pytest.raises(CorruptCheckpointError):
            CommunityService.recover(str(tmp_path))


class TestRotationRace:
    """WAL rotation racing concurrent appends loses no committed record.

    ``append_wal`` and ``write_checkpoint`` (which rewrites the log down
    to the oldest retained checkpoint) serialise on the store's lock; a
    rotation sliding under an appender must neither tear a record nor
    drop one newer than the rotation point.
    """

    def test_concurrent_appends_survive_rotation(self, cliques_ring,
                                                 tmp_path):
        detector = RSLPADetector(
            cliques_ring, seed=5, iterations=ITERATIONS, backend="fast"
        ).fit()
        store = CheckpointStore(tmp_path, keep=2)
        total = 200
        errors = []

        def appender():
            try:
                for epoch in range(1, total + 1):
                    store.append_wal(
                        epoch, EditBatch.build(insertions=[(0, epoch + 30)])
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=appender)
        thread.start()
        # Rotate twice mid-stream — each only once the appender is
        # demonstrably past the rotation point, so the rewrite slides
        # under live appends.  keep=2 retains both checkpoints, so the
        # final log must hold everything after the *older* point (50).
        for rotation_epoch, reached in ((50, 60), (100, 120)):
            while thread.is_alive() and store.wal_records() < reached:
                pass  # busy-poll; contends the store lock on purpose
            store.write_checkpoint(
                detector.array_state, cliques_ring, seed=5,
                batch_epoch=rotation_epoch,
            )
        thread.join()
        assert not errors
        store.close()
        assert store.checkpoint_epochs() == [50, 100]
        records = store.read_wal()
        # Every surviving line re-passed its CRC and none after the
        # oldest retained checkpoint went missing or out of order.
        assert store.last_discarded_records == 0
        assert [e for e, _ in records] == list(range(51, total + 1))

    def test_append_reopens_after_rotation(self, cliques_ring, tmp_path):
        # Rotation swaps the log file out from under the open handle; a
        # subsequent append must land in the *new* file, not the unlinked
        # one.
        detector = RSLPADetector(
            cliques_ring, seed=5, iterations=ITERATIONS, backend="fast"
        ).fit()
        store = CheckpointStore(tmp_path, keep=1)
        for epoch in (1, 2):
            store.append_wal(epoch, EditBatch.build(insertions=[(0, epoch + 30)]))
        store.write_checkpoint(detector.array_state, cliques_ring, seed=5,
                               batch_epoch=2)
        store.append_wal(3, EditBatch.build(insertions=[(0, 33)]))
        assert [e for e, _ in store.read_wal()] == [3]
