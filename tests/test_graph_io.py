"""Tests for repro.graph.io."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.io import (
    from_networkx,
    parse_edge_lines,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)


class TestParseEdgeLines:
    def test_basic(self):
        assert parse_edge_lines(["0 1", "2 3"]) == [(0, 1), (2, 3)]

    def test_skips_comments_and_blanks(self):
        lines = ["# header", "", "% other", "1 2"]
        assert parse_edge_lines(lines) == [(1, 2)]

    def test_drops_self_loops(self):
        assert parse_edge_lines(["3 3", "1 2"]) == [(1, 2)]

    def test_extra_columns_ignored(self):
        assert parse_edge_lines(["1 2 0.5"]) == [(1, 2)]

    def test_rejects_single_column(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_edge_lines(["42"])

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_edge_lines(["a b"])


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path, two_cliques_bridge):
        path = str(tmp_path / "graph.txt")
        write_edge_list(two_cliques_bridge, path, header="test graph")
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(two_cliques_bridge.edges())

    def test_read_normalises_directed_multigraph(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("0 1\n1 0\n1 1\n2 0\n")
        g = read_edge_list(str(path))
        assert set(g.edges()) == {(0, 1), (0, 2)}

    def test_header_written_as_comments(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, str(path), header="line1\nline2")
        content = path.read_text()
        assert content.startswith("# line1\n# line2\n")


class TestNetworkxInterop:
    def test_roundtrip(self, two_cliques_bridge):
        nxg = to_networkx(two_cliques_bridge)
        back = from_networkx(nxg)
        assert back == two_cliques_bridge

    def test_to_networkx_preserves_isolated(self):
        g = Graph.from_edges([(0, 1)], vertices=[9])
        nxg = to_networkx(g)
        assert nxg.has_node(9)

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.Graph([(0, 0), (0, 1)])
        assert set(from_networkx(nxg).edges()) == {(0, 1)}

    def test_components_agree_with_networkx(self, sparse_random):
        ours = sorted(sorted(c) for c in sparse_random.connected_components())
        theirs = sorted(
            sorted(c) for c in nx.connected_components(to_networkx(sparse_random))
        )
        assert ours == theirs


class TestRelabel:
    def test_relabel_to_contiguous(self):
        g = Graph.from_edges([(10, 20), (20, 30)])
        relabeled, mapping = relabel_to_integers(g)
        assert sorted(relabeled.vertices()) == [0, 1, 2]
        assert relabeled.has_edge(mapping[10], mapping[20])

    def test_relabel_preserves_counts(self, sparse_random):
        relabeled, _ = relabel_to_integers(sparse_random)
        assert relabeled.num_vertices == sparse_random.num_vertices
        assert relabeled.num_edges == sparse_random.num_edges
