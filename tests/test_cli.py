"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main, parse_edit_file
from repro.core.serialize import load_state
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path, cliques_ring):
    path = str(tmp_path / "graph.txt")
    write_edge_list(cliques_ring, path)
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParseEditFile:
    def test_parses_inserts_and_deletes(self, tmp_path):
        path = tmp_path / "edits.txt"
        path.write_text("# comment\n+ 1 2\n- 3 4\n\n+ 5 6\n")
        batch = parse_edit_file(str(path))
        assert batch.insertions == frozenset({(1, 2), (5, 6)})
        assert batch.deletions == frozenset({(3, 4)})

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "edits.txt"
        path.write_text("* 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            parse_edit_file(str(path))

    def test_rejects_non_integer(self, tmp_path):
        path = tmp_path / "edits.txt"
        path.write_text("+ a b\n")
        with pytest.raises(ValueError, match="non-integer"):
            parse_edit_file(str(path))


class TestStats:
    def test_stats_output(self, graph_file):
        code, output = run_cli("stats", graph_file)
        assert code == 0
        payload = json.loads(output)
        assert payload["vertices"] == 30
        assert payload["edges"] == 80
        assert payload["connected_components"] == 1

    def test_missing_file_is_error(self):
        code, _ = run_cli("stats", "/nonexistent/graph.txt")
        assert code == 2


class TestDetect:
    def test_detect_prints_cover_summary(self, graph_file):
        code, output = run_cli(
            "detect", graph_file, "--seed", "1", "-T", "60",
            "--tau-step", "0.005",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["num_communities"] == 5
        assert sorted(payload["sizes"]) == [6, 6, 6, 6, 6]

    def test_detect_saves_state_and_cover(self, graph_file, tmp_path):
        state_path = str(tmp_path / "state.json")
        cover_path = str(tmp_path / "cover.json")
        code, output = run_cli(
            "detect", graph_file, "--seed", "1", "-T", "40",
            "--state", state_path, "--cover", cover_path,
        )
        assert code == 0
        state = load_state(state_path)
        assert state.num_iterations == 40
        assert json.load(open(cover_path))["format"] == "repro.cover"

    def test_detect_distributed_matches_local(self, graph_file, tmp_path):
        """--distributed N produces the same state/cover as a local fit."""
        local_state = str(tmp_path / "local.json")
        dist_state = str(tmp_path / "dist.json")
        code, _ = run_cli(
            "detect", graph_file, "--seed", "1", "-T", "40",
            "--state", local_state,
        )
        assert code == 0
        for dist_engine in ("array", "reference"):
            code, output = run_cli(
                "detect", graph_file, "--seed", "1", "-T", "40",
                "--state", dist_state,
                "--distributed", "3", "--dist-engine", dist_engine,
            )
            assert code == 0
            assert "distributed fit:" in output
            assert (
                load_state(dist_state).labels == load_state(local_state).labels
            )


class TestUpdate:
    def test_full_detect_update_cycle(self, graph_file, tmp_path, cliques_ring):
        state_path = str(tmp_path / "state.json")
        code, _ = run_cli(
            "detect", graph_file, "--seed", "3", "-T", "40",
            "--state", state_path,
        )
        assert code == 0

        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("- 0 1\n+ 0 12\n")
        code, output = run_cli(
            "update", state_path, graph_file, str(edits_path),
            "--seed", "3", "--tau-step", "0.01",
        )
        assert code == 0
        assert "labels touched" in output

        # The saved state must reflect the post-batch graph.
        state = load_state(state_path)
        updated = cliques_ring.copy()
        updated.remove_edge(0, 1)
        updated.add_edge(0, 12)
        state.validate(updated)

    def test_update_backends_write_identical_state(self, graph_file, tmp_path):
        ref_path = str(tmp_path / "state_ref.json")
        fast_path = str(tmp_path / "state_fast.json")
        run_cli("detect", graph_file, "--seed", "3", "-T", "30",
                "--state", ref_path)
        run_cli("detect", graph_file, "--seed", "3", "-T", "30",
                "--state", fast_path)
        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("- 0 1\n+ 0 12\n+ 30 4\n")
        for path, backend in ((ref_path, "reference"), (fast_path, "fast")):
            code, _ = run_cli(
                "update", path, graph_file, str(edits_path),
                "--seed", "3", "--backend", backend,
            )
            assert code == 0
        with open(ref_path) as ref, open(fast_path) as fast:
            assert json.load(ref) == json.load(fast)

    def test_update_fast_backend_rejects_gappy_ids(self, tmp_path):
        from repro.graph.adjacency import Graph

        gap_graph = str(tmp_path / "gap.txt")
        write_edge_list(Graph.from_edges([(10, 20), (20, 30)]), gap_graph)
        state_path = str(tmp_path / "state.json")
        code, _ = run_cli("detect", gap_graph, "--seed", "1", "-T", "10",
                          "--backend", "reference", "--state", state_path)
        assert code == 0
        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("+ 10 30\n")
        code, _ = run_cli(
            "update", state_path, gap_graph, str(edits_path),
            "--seed", "1", "--backend", "fast",
        )
        assert code == 2  # clean CLI error, not a crash

    def test_update_auto_falls_back_on_gap_vertex_batch(self, graph_file, tmp_path):
        auto_path = str(tmp_path / "state_auto.json")
        ref_path = str(tmp_path / "state_ref.json")
        run_cli("detect", graph_file, "--seed", "3", "-T", "30",
                "--state", auto_path)
        run_cli("detect", graph_file, "--seed", "3", "-T", "30",
                "--state", ref_path)
        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("+ 0 100\n")  # vertex 100 leaves a gap
        code, _ = run_cli("update", auto_path, graph_file, str(edits_path),
                          "--seed", "3")  # default --backend auto
        assert code == 0
        code, _ = run_cli("update", ref_path, graph_file, str(edits_path),
                          "--seed", "3", "--backend", "reference")
        assert code == 0
        with open(auto_path) as a, open(ref_path) as r:
            assert json.load(a) == json.load(r)

    def test_update_corrupt_state_is_clean_error(self, graph_file, tmp_path):
        state_path = str(tmp_path / "state.json")
        run_cli("detect", graph_file, "--seed", "3", "-T", "20",
                "--state", state_path)
        with open(state_path) as handle:
            payload = json.load(handle)
        payload["vertices"]["0"]["labels"][5] = 999_999  # break an invariant
        with open(state_path, "w") as handle:
            json.dump(payload, handle)
        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("- 0 1\n")
        for backend in ("auto", "reference", "fast"):
            code, _ = run_cli("update", state_path, graph_file,
                              str(edits_path), "--seed", "3",
                              "--backend", backend)
            assert code == 2  # clean CLI error, not a traceback

    def test_update_with_cover_extraction(self, graph_file, tmp_path):
        state_path = str(tmp_path / "state.json")
        run_cli("detect", graph_file, "--seed", "3", "-T", "40",
                "--state", state_path)
        edits_path = tmp_path / "edits.txt"
        edits_path.write_text("- 0 1\n")
        cover_path = str(tmp_path / "cover.json")
        code, output = run_cli(
            "update", state_path, graph_file, str(edits_path),
            "--seed", "3", "--cover", cover_path, "--tau-step", "0.01",
        )
        assert code == 0
        assert "num_communities" in output


class TestServe:
    def test_serve_runs_and_reports(self, graph_file, tmp_path):
        edits = tmp_path / "edits.txt"
        edits.write_text("+ 0 12\n+ 3 18\n- 0 1\n+ 0 1\n- 0 1\n")
        code, output = run_cli(
            "serve", graph_file, "--seed", "3", "-T", "40",
            "--edits", str(edits), "--batch-size", "2", "--query", "0",
        )
        assert code == 0
        payload = json.loads(output)
        # 5 raw edits: one insert/delete pair cancels in the queue, the
        # re-offered delete lands in the final flush -> 2 batches, 3 edits.
        assert payload["stats"]["batches_applied"] == 2
        assert payload["stats"]["edits_applied"] == 3
        assert payload["stats"]["queue_cancelled_pairs"] == 1
        assert payload["memberships"]["0"]["communities"]

    def test_serve_with_durability_then_recover(self, graph_file, tmp_path):
        ckpt_dir = str(tmp_path / "svc")
        edits = tmp_path / "edits.txt"
        edits.write_text("+ 0 12\n+ 3 18\n+ 7 25\n")
        code, first = run_cli(
            "serve", graph_file, "--seed", "3", "-T", "40",
            "--edits", str(edits), "--batch-size", "2",
            "--checkpoint-dir", ckpt_dir, "--query", "0",
        )
        assert code == 0
        code, second = run_cli(
            "serve", "--recover", "--checkpoint-dir", ckpt_dir, "--query", "0",
        )
        assert code == 0
        body = second[second.index("{"):]
        recovered = json.loads(body)
        original = json.loads(first)
        assert recovered["stats"]["batches_applied"] == \
            original["stats"]["batches_applied"]
        assert recovered["stats"]["edges"] == original["stats"]["edges"]
        assert recovered["memberships"] == original["memberships"]

    def test_serve_recover_requires_dir(self):
        code, _ = run_cli("serve", "--recover")
        assert code == 2

    def test_serve_requires_graph_without_recover(self):
        code, _ = run_cli("serve")
        assert code == 2

    def test_serve_distributed_matches_local(self, graph_file):
        code_l, local = run_cli("serve", graph_file, "--seed", "3", "-T", "40",
                                "--query", "5")
        code_d, dist = run_cli("serve", graph_file, "--seed", "3", "-T", "40",
                               "--query", "5", "--distributed", "2")
        assert code_l == 0 and code_d == 0
        assert json.loads(local)["memberships"] == json.loads(dist)["memberships"]


class TestUpdateNpzState:
    """`update` must handle array-native state files exactly like JSON ones."""

    @pytest.mark.parametrize("backend", ["auto", "fast", "reference"])
    def test_npz_state_update_matches_json_state_update(
        self, graph_file, tmp_path, backend
    ):
        json_state = str(tmp_path / "state.json")
        npz_state = str(tmp_path / "state.npz")
        for state_path in (json_state, npz_state):
            code, _ = run_cli(
                "detect", graph_file, "--seed", "1", "-T", "40",
                "--state", state_path,
            )
            assert code == 0
        edits = tmp_path / "edits.txt"
        edits.write_text("+ 0 12\n- 0 1\n+ 7 25\n- 6 8\n")
        outputs = {}
        for state_path in (json_state, npz_state):
            cover_path = state_path + ".cover"
            code, output = run_cli(
                "update", state_path, graph_file, str(edits),
                "--seed", "1", "--backend", backend, "--cover", cover_path,
            )
            assert code == 0
            # "applied N edits: R repicked, L labels touched; state saved..."
            outputs[state_path] = output.splitlines()[0].split("; state saved")[0]
        # Identical repick/η line and identical covers for both formats.
        assert outputs[json_state] == outputs[npz_state]
        from repro.core.serialize import load_cover

        assert load_cover(json_state + ".cover") == load_cover(npz_state + ".cover")

    def test_npz_state_stays_npz_after_update(self, graph_file, tmp_path):
        npz_state = str(tmp_path / "state.npz")
        run_cli("detect", graph_file, "--seed", "1", "-T", "40",
                "--state", npz_state)
        edits = tmp_path / "edits.txt"
        edits.write_text("+ 0 12\n")
        code, _ = run_cli("update", npz_state, graph_file, str(edits),
                          "--seed", "1")
        assert code == 0
        with open(npz_state, "rb") as handle:
            assert handle.read(2) == b"PK"
        assert type(load_state(npz_state)).__name__ == "ArrayLabelState"


class TestFaultToleranceFlags:
    def test_plan_resolves_fault_tolerance(self, graph_file):
        code, output = run_cli(
            "plan", graph_file, "--distributed", "2", "--multiprocess",
            "--fault-tolerance", "--checkpoint-interval", "2",
        )
        assert code == 0
        assert "fault_tolerance=on (checkpoint_interval=2, max_restarts=3)" in output
        assert "checkpoint_interval" in output
        assert "explicitly requested" in output

    def test_fault_tolerance_requires_multiprocess(self, graph_file):
        code, output = run_cli(
            "plan", graph_file, "--distributed", "2", "--fault-tolerance"
        )
        assert code != 0

    def test_knobs_require_fault_tolerance(self, graph_file):
        code, _ = run_cli(
            "plan", graph_file, "--distributed", "2", "--multiprocess",
            "--max-restarts", "5",
        )
        assert code != 0
