"""Integration tests for the observability plane across engines + service.

The acceptance bar: a fault-injected multiprocess run (one SIGKILL,
fault_tolerance on) exports a valid Chrome trace covering every
superstep phase plus checkpoint/restore/respawn, attributed per worker
— and tracing never perturbs results (covers and per-superstep
CommStats bit-identical with it on or off).

Tests named ``*smoke*`` are the CI subset (``-k "obs and smoke"``).
"""

import json
from functools import partial

import pytest

from repro.api import AlgoConfig, ExecutionConfig
from repro.api.run import run_distributed
from repro.distributed.faults import FaultPlan
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs_array import FastSLPAPropagationProgram
from repro.distributed.worker import build_shards
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import HashPartitioner
from repro.obs import DRIVER, validate_chrome_trace

SEED, ITERATIONS = 11, 6

#: Every per-superstep engine phase the multiprocess plane must attribute.
SUPERSTEP_PHASES = {
    "engine.compute",
    "engine.pack",
    "engine.transport_send",
    "engine.barrier_wait",
    "engine.route",
}


def _step_tuples(stats):
    return [
        (s.superstep, s.messages, s.remote_messages, s.bytes, s.remote_bytes)
        for s in stats.per_superstep
    ]


def _sequences(state):
    """Canonical ``vertex -> label sequence`` view of either state kind."""
    if hasattr(state, "sequences_dict"):
        return {v: tuple(seq) for v, seq in state.sequences_dict().items()}
    return {v: tuple(state.sequence(v)) for v in state.vertices()}


def _multiprocess_run(traced, fault_plan=None):
    """One supervised multiprocess run; returns (memories, stats)."""
    graph = ring_of_cliques(3, 5)
    part = HashPartitioner(2)
    shards = build_shards(graph, part)
    factory = partial(
        FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
    )
    obs = None
    if traced:
        from repro.obs import Obs

        obs = Obs()
    with MultiprocessBSPEngine(
        shards,
        part,
        factory,
        plane="array",
        transport="shm",
        fault_tolerance=True,
        checkpoint_interval=2,
        max_restarts=3,
        fault_plan=fault_plan,
        obs=obs,
    ) as engine:
        stats = engine.run()
        memories = {}
        for result in engine.collect():
            memories.update(result)
    return memories, stats


class TestMultiprocessTracing:
    def test_fault_injected_trace_covers_every_phase_smoke(self):
        """The acceptance test: SIGKILL mid-run, full phase coverage."""
        memories, stats = _multiprocess_run(
            traced=True, fault_plan=FaultPlan(kill=(1, 3))
        )
        assert stats.recovery.recoveries == 1
        assert stats.obs is not None
        result = stats.obs.result()

        names = {span.name for span in result.spans}
        assert SUPERSTEP_PHASES <= names, f"missing: {SUPERSTEP_PHASES - names}"
        # The fault-tolerance phases fired too: the run checkpointed,
        # detected the kill, restored the cut, and respawned worker 1.
        assert {"engine.checkpoint", "engine.restore",
                "engine.respawn"} <= names

        # Per-worker attribution: driver timeline + both worker timelines.
        assert result.workers() == [DRIVER, 0, 1]
        compute_workers = {
            s.worker for s in result.spans if s.name == "engine.compute"
        }
        assert compute_workers == {0, 1}
        respawned = [s for s in result.spans if s.name == "engine.respawn"]
        assert [s.worker for s in respawned] == [1]

        # Transport metrics rode along on the merged registry.
        snap = result.metrics
        assert snap["histograms"]["transport.shm.inbox_bytes"]["count"] > 0
        assert snap["histograms"]["transport.shm.outbox_bytes"]["count"] > 0

        # The export is a valid Chrome trace even after JSON encoding.
        payload = json.loads(json.dumps(result.to_chrome_trace()))
        validate_chrome_trace(payload)
        thread_rows = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert thread_rows == {"driver", "worker-0", "worker-1"}

        # And tracing never perturbed the run: memories + per-superstep
        # stats bit-identical to the same faulty run without tracing.
        ref_memories, ref_stats = _multiprocess_run(
            traced=False, fault_plan=FaultPlan(kill=(1, 3))
        )
        assert ref_stats.obs is None
        assert set(memories) == set(ref_memories)
        for key in ref_memories:
            eq = memories[key] == ref_memories[key]
            assert eq.all() if hasattr(eq, "all") else eq
        assert _step_tuples(stats) == _step_tuples(ref_stats)

    def test_failure_free_trace_has_no_recovery_spans(self):
        _memories, stats = _multiprocess_run(traced=True)
        names = {span.name for span in stats.obs.result().spans}
        assert SUPERSTEP_PHASES <= names
        assert "engine.checkpoint" in names  # checkpoint_interval=2 fired
        assert "engine.restore" not in names
        assert "engine.respawn" not in names


class TestInProcessTracing:
    @pytest.mark.parametrize("engine", ["reference", "array"])
    def test_trace_on_off_bit_identical_smoke(self, engine):
        graph = ring_of_cliques(4, 5)
        algo = AlgoConfig(seed=SEED, iterations=ITERATIONS)

        def _run(trace):
            return run_distributed(
                graph, algo,
                ExecutionConfig(num_workers=3, engine=engine, trace=trace),
            )

        traced, plain = _run(True), _run(False)
        assert plain.trace is None and plain.comm_stats.obs is None
        result = traced.trace
        assert result is not None
        names = {span.name for span in result.spans}
        assert {"engine.compute", "engine.route"} <= names
        assert set(result.workers()) >= {DRIVER, 0, 1, 2}
        assert "plan" in result.meta and "timings" in result.meta

        assert _sequences(traced.state) == _sequences(plain.state)
        assert _step_tuples(traced.comm_stats) == _step_tuples(plain.comm_stats)

        # The in-process engines mirrored communication into the registry.
        counters = result.metrics["counters"]
        assert counters["engine.messages"] == traced.comm_stats.total_messages
        assert counters["engine.bytes"] == traced.comm_stats.total_bytes
        assert "# TYPE repro_engine_messages counter" in result.to_prometheus()


class TestServiceTracing:
    def _drive(self, trace, tmp_path, tag):
        from repro.api.config import ServicePlanConfig
        from repro.service import CommunityService

        service = CommunityService(
            ring_of_cliques(4, 5),
            config=ServicePlanConfig(
                algo=AlgoConfig(seed=SEED, iterations=ITERATIONS),
                execution=ExecutionConfig(trace=trace),
                batch_size=2,
                staleness_batches=2,
            ),
            checkpoint_dir=str(tmp_path / tag),
        )
        service.start()
        # The duplicate (0, 7) rides in the same window as the original,
        # so it coalesces in the queue instead of reaching the detector.
        for u, v in ((0, 7), (0, 7), (1, 9), (3, 12), (5, 16), (2, 14)):
            service.submit_insert(u, v)
        service.flush()
        service.refresh()
        service.communities_of(0)
        cover = sorted(tuple(sorted(c)) for c in service.cover())
        stats = service.stats()
        trace_result = service.trace_result()
        service.close()
        return cover, stats, trace_result

    def test_service_spans_metrics_and_bit_identity_smoke(self, tmp_path):
        cover, stats, result = self._drive(True, tmp_path, "on")
        assert result is not None
        names = {span.name for span in result.spans}
        assert {"service.apply", "service.extract"} <= names

        metrics = stats["metrics"]
        counters = metrics["counters"]
        assert counters["service.batches_applied"] == stats["batches_applied"]
        assert counters["service.edits_applied"] == stats["edits_applied"]
        assert counters["service.queries"] == 1
        assert metrics["histograms"]["service.staleness_at_serve"]["count"] == 1
        # Durability instrumentation: every applied batch fsyncs the WAL.
        assert (
            metrics["histograms"]["service.wal_fsync_seconds"]["count"]
            >= stats["batches_applied"]
        )
        # The duplicate (0, 7) offer coalesced; the gauge exposes the ratio.
        assert metrics["gauges"]["service.coalesce_ratio"] == pytest.approx(
            1 / 6
        )
        validate_chrome_trace(result.to_chrome_trace())

        plain_cover, plain_stats, plain_result = self._drive(
            False, tmp_path, "off"
        )
        assert plain_result is None and "metrics" not in plain_stats
        assert plain_cover == cover


class TestReplicationTracing:
    def test_failover_run_records_commit_ship_failover(self, tmp_path):
        from repro.api.config import ServicePlanConfig
        from repro.service.replication import ServiceSupervisor

        def _run(trace, tag, fault_plan=None):
            config = ServicePlanConfig(
                algo=AlgoConfig(seed=SEED, iterations=ITERATIONS),
                execution=ExecutionConfig(trace=trace),
                batch_size=2,
                replicas=1,
                staleness_batches=2,
            )
            supervisor = ServiceSupervisor(
                ring_of_cliques(4, 5), str(tmp_path / tag), config,
                fault_plan=fault_plan,
            )
            supervisor.start()
            for u, v in ((0, 7), (1, 9), (3, 12), (5, 16)):
                supervisor.submit_insert(u, v)
            result = supervisor.finish()
            return result, supervisor.trace_result()

        run, trace = _run(True, "on", FaultPlan(kill_primary=(2, "recv")))
        assert run.stats["failovers"] == 1
        names = {span.name for span in trace.spans}
        assert {"service.commit", "service.wal_ship",
                "service.failover"} <= names
        counters = run.stats["supervisor_metrics"]["counters"]
        assert counters["service.failovers"] == 1
        assert counters["service.records_committed"] == 2
        validate_chrome_trace(trace.to_chrome_trace())

        plain, plain_trace = _run(
            False, "off", FaultPlan(kill_primary=(2, "recv"))
        )
        assert plain_trace is None
        assert "supervisor_metrics" not in plain.stats
        assert sorted(map(sorted, plain.cover)) == sorted(map(sorted, run.cover))


class TestCliTraceRoundTrip:
    def test_cli_trace_export_round_trip_smoke(self, tmp_path, capsys):
        """detect --trace-out, then `repro trace --chrome` — schema-valid."""
        from repro.cli import main
        from repro.graph.io import write_edge_list

        write_edge_list(ring_of_cliques(4, 5), str(tmp_path / "graph.txt"))
        trace_path = str(tmp_path / "run.trace.json")
        prom_path = str(tmp_path / "run.prom")
        chrome_path = str(tmp_path / "run.chrome.json")
        code = main(
            [
                "detect", str(tmp_path / "graph.txt"),
                "--seed", str(SEED), "-T", str(ITERATIONS),
                "--distributed", "2",
                "--trace-out", trace_path, "--metrics", prom_path,
            ]
        )
        assert code == 0
        code = main(
            ["trace", trace_path, "--chrome", chrome_path,
             "--prometheus", str(tmp_path / "run2.prom")]
        )
        assert code == 0
        with open(chrome_path, "r", encoding="utf-8") as handle:
            validate_chrome_trace(json.load(handle))
        with open(prom_path, "r", encoding="utf-8") as handle:
            assert "# TYPE repro_" in handle.read()
        # The summary view of a saved trace mentions the engine phases.
        code = main(["trace", trace_path])
        assert code == 0
        assert "engine.compute" in capsys.readouterr().out
