"""Columnar vs tuple message plane: bit-identical results and accounting.

The acceptance oracle for the array message plane: for every program
(rSLPA, SLPA, correction), every shard backend (dict, CSR), both
partitioner families and several seeds, the :class:`ArrayBSPEngine` run
must reproduce the reference :class:`BSPEngine` run exactly — same
collected results, same per-superstep :class:`CommStats` counters — and
the multiprocess backend must agree across planes.
"""

from functools import partial

import numpy as np
import pytest

from repro.baselines.slpa import SLPA
from repro.core.incremental import CorrectionPropagator
from repro.core.labels_array import ArrayLabelState
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.distributed.engine import BSPEngine
from repro.distributed.engine_array import ArrayBSPEngine
from repro.distributed.message import message_size_bytes
from repro.distributed.message_array import (
    SCHEMAS,
    ArrayInbox,
    ArrayMessageContext,
    register_schema,
)
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import (
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.programs_array import (
    FastRSLPAPropagationProgram,
    FastSLPAPropagationProgram,
    shard_local_csr,
)
from repro.distributed.worker import build_csr_shards, build_shards
from repro.graph.generators import erdos_renyi, ring_of_cliques
from repro.graph.partition import ContiguousPartitioner, HashPartitioner
from repro.workloads.dynamic import random_edit_batch


def assert_stats_equal(a, b):
    """Per-superstep CommStats equality, counter for counter."""
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.per_superstep, b.per_superstep):
        assert step_a.superstep == step_b.superstep
        assert step_a.messages == step_b.messages
        assert step_a.remote_messages == step_b.remote_messages
        assert step_a.bytes == step_b.bytes
        assert step_a.remote_bytes == step_b.remote_bytes


def partitioners(graph):
    return [
        HashPartitioner(3),
        HashPartitioner(4, salt=9),
        ContiguousPartitioner(3, graph.num_vertices),
    ]


class TestSchemas:
    def test_schema_bytes_match_tuple_plane(self):
        """Per-schema sizes == message_size_bytes on the equivalent tuple."""
        for kind, schema in SCHEMAS.items():
            tuple_form = (0, (kind,) + (1,) * schema.width)
            assert schema.message_bytes == message_size_bytes(tuple_form), kind

    def test_reregister_identical_is_ok(self):
        register_schema("req", ("pos", "requester", "t"))

    def test_reregister_conflicting_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_schema("req", ("other",))

    def test_unknown_kind_rejected(self):
        ctx = ArrayMessageContext()
        with pytest.raises(KeyError, match="unknown message kind"):
            ctx.send(0, ("nonexistent-kind", 1))

    def test_column_width_mismatch_rejected(self):
        ctx = ArrayMessageContext()
        with pytest.raises(ValueError, match="payload columns"):
            ctx.send_columns("spk", np.array([1]), np.array([2]))

    def test_column_length_mismatch_rejected(self):
        ctx = ArrayMessageContext()
        with pytest.raises(ValueError, match="length mismatch"):
            ctx.send_columns(
                "spk", np.array([1, 2]), np.array([3, 4]), np.array([5])
            )


class TestContextAndInbox:
    def test_scalar_and_column_sends_merge(self):
        ctx = ArrayMessageContext()
        ctx.send(4, ("spk", 7, 1))
        ctx.send_columns(
            "spk", np.array([1, 2]), np.array([8, 9]), np.array([1, 1])
        )
        assert ctx.total_messages == 3
        outbox = ctx.finalize()
        assert outbox["spk"][0].tolist() == [4, 1, 2]

    def test_buffer_growth_preserves_rows(self):
        ctx = ArrayMessageContext()
        for i in range(100):  # force several capacity doublings
            ctx.send(i, ("spk", i * 2, 1))
        (dst, label, t) = ctx.finalize()["spk"]
        assert dst.tolist() == list(range(100))
        assert label.tolist() == [i * 2 for i in range(100)]
        assert t.tolist() == [1] * 100

    def test_to_sorted_tuples_matches_reference_order(self):
        """Mixed-kind inbox reconstructs the reference engine's sort."""
        ctx = ArrayMessageContext()
        messages = [
            (5, ("req", 2, 7, 3)),
            (5, ("lab", 9, 1, 0, 3)),
            (2, ("req", 1, 5, 3)),
            (5, ("req", 0, 4, 3)),
        ]
        for dst, payload in messages:
            ctx.send(dst, payload)
        inbox = ArrayInbox(ctx.finalize())
        expected = sorted((dst,) + payload for dst, payload in messages)
        assert inbox.to_sorted_tuples() == expected
        assert inbox.total_messages == 4

    def test_empty_inbox(self):
        inbox = ArrayInbox()
        assert not inbox
        assert inbox.to_sorted_tuples() == []
        assert inbox.columns("spk") is None


class TestShardLocalCSR:
    def test_dict_and_csr_shards_agree(self, small_lfr):
        graph = small_lfr.graph
        part = HashPartitioner(4)
        for dshard, cshard in zip(
            build_shards(graph, part), build_csr_shards(graph, part)
        ):
            d_ids, d_indptr, d_indices = shard_local_csr(dshard)
            c_ids, c_indptr, c_indices = shard_local_csr(cshard)
            assert d_ids.tolist() == c_ids.tolist()
            assert d_indptr.tolist() == c_indptr.tolist()
            assert d_indices.tolist() == c_indices.tolist()

    def test_csr_shard_arrays_are_read_only(self, cliques_ring):
        """Programs cannot silently corrupt the shared shard adjacency."""
        shard = build_csr_shards(cliques_ring, HashPartitioner(2))[0]
        view = shard.neighbors(next(iter(shard.vertices)))
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 99
        with pytest.raises(ValueError):
            shard.indices[0] = 99
        with pytest.raises(ValueError):
            shard.indptr[0] = 99
        with pytest.raises(ValueError):
            shard.local_ids[0] = 99

    def test_csr_shard_does_not_freeze_caller_arrays(self):
        """The shard freezes its own views, not the constructor arguments."""
        from repro.distributed.worker import CSRShard

        ids = np.array([0, 1], dtype=np.int64)
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        shard = CSRShard(0, ids, indptr, indices)
        ids[0] = 5  # caller's buffer stays writeable...
        indices[0] = 7
        assert not shard.local_ids.flags.writeable  # ...the shard's view not


class TestRSLPAEquality:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    @pytest.mark.parametrize("shard_backend", ["dict", "csr"])
    def test_engine_equality_all_partitioners(self, seed, shard_backend):
        graph = erdos_renyi(60, 0.08, seed=11)  # includes isolated vertices
        for part in partitioners(graph):
            ref_state, ref_stats = run_distributed_rslpa(
                graph.copy(), seed=seed, iterations=12, partitioner=part,
                num_workers=part.num_partitions,
                shard_backend=shard_backend, engine="reference",
            )
            arr_state, arr_stats = run_distributed_rslpa(
                graph.copy(), seed=seed, iterations=12, partitioner=part,
                num_workers=part.num_partitions,
                shard_backend=shard_backend, engine="array",
            )
            assert arr_state.labels == ref_state.labels
            assert arr_state.srcs == ref_state.srcs
            assert arr_state.poss == ref_state.poss
            assert arr_state.epochs == ref_state.epochs
            assert arr_state.receivers == ref_state.receivers
            assert_stats_equal(arr_stats, ref_stats)

    def test_program_collect_identical(self, small_lfr):
        """Program-level oracle: same shard, both planes, same collect()."""
        graph = small_lfr.graph
        part = HashPartitioner(3)
        shards = build_csr_shards(graph, part)
        ref_programs = [
            RSLPAPropagationProgram(s, seed=5, iterations=10) for s in shards
        ]
        BSPEngine(shards, part).run(ref_programs)
        arr_programs = [
            FastRSLPAPropagationProgram(s, seed=5, iterations=10)
            for s in shards
        ]
        ArrayBSPEngine(shards, part).run(arr_programs)
        for ref_p, arr_p in zip(ref_programs, arr_programs):
            ref_collected = {
                v: (list(l), list(s), list(p))
                for v, (l, s, p) in ref_p.collect().items()
            }
            assert arr_p.collect() == ref_collected

    def test_auto_prefers_array_on_csr_shards(self, cliques_ring):
        """auto == array on CSR shards, == reference on dict shards."""
        for shard_backend, forced in (("csr", "array"), ("dict", "reference")):
            auto_state, auto_stats = run_distributed_rslpa(
                cliques_ring.copy(), seed=3, iterations=8,
                shard_backend=shard_backend, engine="auto",
            )
            forced_state, forced_stats = run_distributed_rslpa(
                cliques_ring.copy(), seed=3, iterations=8,
                shard_backend=shard_backend, engine=forced,
            )
            assert auto_state.labels == forced_state.labels
            assert_stats_equal(auto_stats, forced_stats)

    def test_array_state_format(self, cliques_ring):
        """state_format='array' returns the ArrayLabelState export."""
        ref = ReferencePropagator(cliques_ring.copy(), seed=7)
        ref.propagate(15)
        astate, _ = run_distributed_rslpa(
            cliques_ring.copy(), seed=7, iterations=15,
            shard_backend="csr", engine="array", state_format="array",
        )
        assert isinstance(astate, ArrayLabelState)
        exported = astate.to_label_state()
        assert exported.labels == ref.state.labels
        assert exported.receivers == ref.state.receivers

    def test_invalid_engine_rejected(self, cliques_ring):
        with pytest.raises(ValueError, match="engine"):
            run_distributed_rslpa(cliques_ring, engine="spark")

    def test_out_of_range_owner_fails_loudly(self, cliques_ring):
        """A buggy partitioner cannot silently drop routed messages."""
        from repro.distributed.message_array import route_columns

        class OffByOne(HashPartitioner):
            def owner_array(self, vertices):
                return super().owner_array(vertices) + self.num_partitions

        part = OffByOne(2)
        outbox = {0: {"spk": (np.array([1]), np.array([5]), np.array([1]))}}
        with pytest.raises(ValueError, match="outside"):
            route_columns(outbox, part, 2, superstep=1)

    def test_unowned_destination_fails_loudly(self, cliques_ring):
        """A partitioner/shard mismatch raises instead of mis-scattering."""
        part = HashPartitioner(2)
        shards = build_csr_shards(cliques_ring, part)
        program = FastRSLPAPropagationProgram(shards[0], seed=1, iterations=4)
        foreign = next(v for v in cliques_ring.vertices()
                       if v not in shards[0].vertices)
        with pytest.raises(KeyError, match="not owned"):
            program._rows_of(np.array([foreign], dtype=np.int64))

    def test_non_partition_worker_ids_rejected(self, cliques_ring):
        """Misnumbered shards fail loudly instead of dropping messages."""
        from repro.distributed.worker import CSRShard

        part = HashPartitioner(2)
        shards = build_csr_shards(cliques_ring, part)
        renumbered = [
            CSRShard(s.worker_id + 5, s.local_ids, s.indptr, s.indices)
            for s in shards
        ]
        with pytest.raises(ValueError, match="partition"):
            ArrayBSPEngine(renumbered, part)
        with pytest.raises(ValueError, match="partition"):
            MultiprocessBSPEngine(
                renumbered, part,
                partial(FastRSLPAPropagationProgram, seed=1, iterations=2),
                plane="array",
            )

    def test_invalid_state_format_rejected(self, cliques_ring):
        with pytest.raises(ValueError, match="state_format"):
            run_distributed_rslpa(cliques_ring, state_format="parquet")


class TestSLPAEquality:
    @pytest.mark.parametrize("seed", [0, 4])
    @pytest.mark.parametrize("shard_backend", ["dict", "csr"])
    def test_engine_equality_all_partitioners(self, seed, shard_backend):
        graph = erdos_renyi(50, 0.1, seed=2)
        for part in partitioners(graph):
            ref_mem, ref_stats = run_distributed_slpa(
                graph.copy(), seed=seed, iterations=10, partitioner=part,
                num_workers=part.num_partitions,
                shard_backend=shard_backend, engine="reference",
            )
            arr_mem, arr_stats = run_distributed_slpa(
                graph.copy(), seed=seed, iterations=10, partitioner=part,
                num_workers=part.num_partitions,
                shard_backend=shard_backend, engine="array",
            )
            assert arr_mem == ref_mem
            assert_stats_equal(arr_stats, ref_stats)

    def test_matches_sequential_slpa(self, small_lfr):
        graph = small_lfr.graph
        seq = SLPA(graph.copy(), seed=6, iterations=12)
        seq.propagate()
        mem, _ = run_distributed_slpa(
            graph.copy(), seed=6, iterations=12, num_workers=4,
            shard_backend="csr", engine="array",
        )
        assert mem == seq.memories


class TestCorrectionEquality:
    @pytest.mark.parametrize("shard_backend", ["dict", "csr"])
    def test_adapter_equals_reference_across_batches(self, shard_backend):
        """Correction via TupleProgramAdapter: same repairs, same stats."""
        graph = erdos_renyi(60, 0.06, seed=17)

        def fresh(engine):
            g = graph.copy()
            prop = ReferencePropagator(g, seed=3)
            prop.propagate(15)
            return g, prop.state

        seq_graph = graph.copy()
        seq_prop = ReferencePropagator(seq_graph, seed=3)
        seq_prop.propagate(15)
        corrector = CorrectionPropagator(seq_prop)

        ref_graph, ref_state = fresh("reference")
        arr_graph, arr_state = fresh("array")
        for epoch in range(1, 5):
            batch = random_edit_batch(seq_graph, 6, seed=epoch)
            corrector.apply_batch(batch)
            ref_graph, ref_state, ref_stats = run_distributed_update(
                ref_graph, ref_state, batch, seed=3, batch_epoch=epoch,
                num_workers=3, shard_backend=shard_backend, engine="reference",
            )
            arr_graph, arr_state, arr_stats = run_distributed_update(
                arr_graph, arr_state, batch, seed=3, batch_epoch=epoch,
                num_workers=3, shard_backend=shard_backend, engine="array",
            )
            assert arr_state.labels == corrector.state.labels, epoch
            assert ref_state.labels == corrector.state.labels, epoch
            assert arr_state.epochs == corrector.state.epochs
            assert arr_state.receivers == ref_state.receivers
            assert_stats_equal(arr_stats, ref_stats)


class TestMultiprocessArrayPlane:
    """Array plane over real processes (small worker counts for CI)."""

    def _run(self, shards, part, factory, plane):
        with MultiprocessBSPEngine(shards, part, factory, plane=plane) as eng:
            stats = eng.run()
            results = eng.collect()
        merged = {}
        for result in results:
            merged.update(result)
        return merged, stats

    def test_rslpa_array_plane_matches_tuple_plane(self):
        graph = ring_of_cliques(3, 5)
        part = HashPartitioner(2)
        tuple_merged, tuple_stats = self._run(
            build_shards(graph, part), part,
            partial(RSLPAPropagationProgram, seed=5, iterations=10), "tuple",
        )
        array_merged, array_stats = self._run(
            build_csr_shards(graph, part), part,
            partial(FastRSLPAPropagationProgram, seed=5, iterations=10),
            "array",
        )
        assert array_merged == tuple_merged
        assert_stats_equal(array_stats, tuple_stats)

    def test_slpa_array_plane_matches_tuple_plane(self):
        graph = ring_of_cliques(3, 4)
        part = HashPartitioner(2)
        tuple_merged, tuple_stats = self._run(
            build_shards(graph, part), part,
            partial(SLPAPropagationProgram, seed=2, iterations=8), "tuple",
        )
        array_merged, array_stats = self._run(
            build_csr_shards(graph, part), part,
            partial(FastSLPAPropagationProgram, seed=2, iterations=8),
            "array",
        )
        assert array_merged == tuple_merged
        assert_stats_equal(array_stats, tuple_stats)

    def test_tuple_program_auto_wrapped_on_array_plane(self):
        """A tuple-plane factory runs on plane='array' via the adapter."""
        graph = ring_of_cliques(2, 4)
        part = HashPartitioner(2)
        tuple_merged, tuple_stats = self._run(
            build_shards(graph, part), part,
            partial(RSLPAPropagationProgram, seed=3, iterations=6), "tuple",
        )
        wrapped_merged, wrapped_stats = self._run(
            build_csr_shards(graph, part), part,
            partial(RSLPAPropagationProgram, seed=3, iterations=6), "array",
        )
        assert wrapped_merged == tuple_merged
        assert_stats_equal(wrapped_stats, tuple_stats)

    def test_invalid_plane_rejected(self):
        graph = ring_of_cliques(2, 4)
        part = HashPartitioner(2)
        with pytest.raises(ValueError, match="plane"):
            MultiprocessBSPEngine(
                build_shards(graph, part), part,
                partial(RSLPAPropagationProgram, seed=1, iterations=2),
                plane="quantum",
            )


class TestDetectorDistributedFit:
    def test_fit_distributed_matches_fit(self, cliques_ring):
        from repro.core.detector import RSLPADetector

        local = RSLPADetector(cliques_ring, seed=9, iterations=40).fit()
        assert local.comm_stats is None
        dist = RSLPADetector(cliques_ring, seed=9, iterations=40)
        dist.fit_distributed(num_workers=3)
        assert dist.comm_stats is not None
        assert dist.comm_stats.total_messages > 0
        assert dist.label_state.labels == local.label_state.labels
        assert dist.communities() == local.communities()
        dist.fit()  # a local re-fit clears the distributed counters
        assert dist.comm_stats is None

    def test_fit_distributed_reference_backend(self, cliques_ring):
        from repro.core.detector import RSLPADetector

        local = RSLPADetector(
            cliques_ring, seed=9, iterations=30, backend="reference"
        ).fit()
        dist = RSLPADetector(
            cliques_ring, seed=9, iterations=30, backend="reference"
        )
        dist.fit_distributed(num_workers=2, engine="reference",
                             shard_backend="dict")
        assert dist.label_state.labels == local.label_state.labels

    def test_update_after_fit_distributed(self, cliques_ring):
        """The incremental lifecycle continues off a distributed fit."""
        from repro.core.detector import RSLPADetector

        batch = random_edit_batch(cliques_ring, 4, seed=1)
        local = RSLPADetector(cliques_ring, seed=2, iterations=25).fit()
        local.update(batch)
        dist = RSLPADetector(cliques_ring, seed=2, iterations=25)
        dist.fit_distributed(num_workers=3)
        dist.update(batch)
        assert dist.label_state.labels == local.label_state.labels
