"""Tests for repro.graph.edits — edit batches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch, apply_batch, diff_graphs


class TestConstruction:
    def test_build_canonicalises(self):
        batch = EditBatch.build(insertions=[(3, 1)], deletions=[(5, 2)])
        assert batch.insertions == frozenset({(1, 3)})
        assert batch.deletions == frozenset({(2, 5)})

    def test_build_deduplicates_directions(self):
        batch = EditBatch.build(insertions=[(0, 1), (1, 0)])
        assert batch.size == 1

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="both inserted and deleted"):
            EditBatch.build(insertions=[(0, 1)], deletions=[(1, 0)])

    def test_rejects_non_canonical_direct_construction(self):
        with pytest.raises(ValueError, match="canonical"):
            EditBatch(insertions=frozenset({(3, 1)}))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            EditBatch.build(insertions=[(2, 2)])

    def test_empty(self):
        assert not EditBatch.empty()
        assert EditBatch.empty().size == 0


class TestAccessors:
    def test_size_and_bool(self):
        batch = EditBatch.build(insertions=[(0, 1)], deletions=[(2, 3)])
        assert batch.size == 2
        assert bool(batch)

    def test_touched_vertices(self):
        batch = EditBatch.build(insertions=[(0, 1)], deletions=[(2, 3)])
        assert batch.touched_vertices() == frozenset({0, 1, 2, 3})

    def test_added_removed_neighbors(self):
        batch = EditBatch.build(insertions=[(0, 1), (0, 2)], deletions=[(1, 2)])
        assert batch.added_neighbors() == {0: {1, 2}, 1: {0}, 2: {0}}
        assert batch.removed_neighbors() == {1: {2}, 2: {1}}

    def test_inverse(self):
        batch = EditBatch.build(insertions=[(0, 1)], deletions=[(2, 3)])
        inv = batch.inverse()
        assert inv.insertions == batch.deletions
        assert inv.deletions == batch.insertions


class TestMerge:
    def test_merge_cancels_insert_then_delete(self):
        first = EditBatch.build(insertions=[(0, 1)])
        second = EditBatch.build(deletions=[(0, 1)])
        assert first.merged_with(second).size == 0

    def test_merge_cancels_delete_then_insert(self):
        first = EditBatch.build(deletions=[(0, 1)])
        second = EditBatch.build(insertions=[(0, 1)])
        assert first.merged_with(second).size == 0

    def test_merge_accumulates_disjoint(self):
        first = EditBatch.build(insertions=[(0, 1)])
        second = EditBatch.build(deletions=[(2, 3)])
        merged = first.merged_with(second)
        assert merged.insertions == frozenset({(0, 1)})
        assert merged.deletions == frozenset({(2, 3)})


class TestApply:
    def test_apply_roundtrip(self, triangle):
        batch = EditBatch.build(insertions=[(0, 3)], deletions=[(0, 1)])
        apply_batch(triangle, batch)
        assert triangle.has_edge(0, 3)
        assert not triangle.has_edge(0, 1)
        apply_batch(triangle, batch.inverse())
        assert triangle == Graph.from_edges([(0, 1), (1, 2), (0, 2)], vertices=[3])

    def test_strict_apply_validates_first(self, triangle):
        bad = EditBatch.build(deletions=[(0, 9)])
        with pytest.raises(ValueError, match="deletions not present"):
            apply_batch(triangle, bad)
        triangle.check_invariants()  # untouched

    def test_validate_reports_existing_insertions(self, triangle):
        bad = EditBatch.build(insertions=[(0, 1)])
        with pytest.raises(ValueError, match="insertions already present"):
            bad.validate_against(triangle)


class TestDiff:
    def test_diff_recovers_batch(self, two_cliques_bridge):
        old = two_cliques_bridge.copy()
        batch = EditBatch.build(insertions=[(1, 5)], deletions=[(0, 4)])
        apply_batch(two_cliques_bridge, batch)
        assert diff_graphs(old, two_cliques_bridge) == batch

    def test_diff_identical_graphs_is_empty(self, triangle):
        assert diff_graphs(triangle, triangle.copy()).size == 0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_apply_then_inverse_restores(data):
    """batch followed by batch.inverse() is the identity on graphs."""
    edges = data.draw(
        st.sets(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
                lambda e: e[0] < e[1]
            ),
            max_size=25,
        )
    )
    graph = Graph.from_edges(edges, vertices=range(13))
    original = graph.copy()
    existing = sorted(graph.edges())
    to_delete = data.draw(st.sets(st.sampled_from(existing), max_size=5)) if existing else set()
    non_edges = [
        (u, v)
        for u in range(13)
        for v in range(u + 1, 13)
        if not graph.has_edge(u, v)
    ]
    to_insert = data.draw(st.sets(st.sampled_from(non_edges), max_size=5)) if non_edges else set()
    batch = EditBatch.build(insertions=to_insert, deletions=to_delete)
    apply_batch(graph, batch)
    apply_batch(graph, batch.inverse())
    assert graph == original
