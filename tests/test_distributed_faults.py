"""Fault-tolerance tests: FaultPlan scripting, checkpoint/replay, respawn.

The load-bearing contract: a ``fault_tolerance=True`` multiprocess run
that loses workers mid-flight must *complete* and produce covers AND
per-superstep CommStats bit-identical to a failure-free run, on every
transport.  Quick per-transport kill tests carry ``smoke`` in their name
so CI can select them with ``-k "fault and smoke"``.
"""

import os
import pickle
import signal
import time
from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed.engine_array import ArrayBSPEngine
from repro.distributed.faults import FaultPlan
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs_array import FastSLPAPropagationProgram
from repro.distributed.transport import WorkerCrashedError
from repro.distributed.worker import build_shards
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import HashPartitioner

SEED, ITERATIONS = 11, 6
TRANSPORTS = ["pipe", "shm", "tcp"]


# ----------------------------------------------------------------------
# FaultPlan unit tests (no processes involved)
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_singular_and_plural_specs_merge(self):
        plan = FaultPlan(kill=(1, 3), kills=[(0, 2), (1, 3)])
        assert plan.kills == frozenset({(0, 2), (1, 3)})
        assert plan.should_kill(1, 3) and plan.should_kill(0, 2)
        assert not plan.should_kill(1, 2)

    def test_timed_faults_default_to_zero(self):
        plan = FaultPlan(stall=(0, 2, 0.25), delays=[(1, 3, 0.5)])
        assert plan.stall_seconds(0, 2) == 0.25
        assert plan.stall_seconds(0, 3) == 0.0
        assert plan.delay_seconds(1, 3) == 0.5
        assert plan.delay_seconds(0, 0) == 0.0

    def test_invalid_site_rejected(self):
        with pytest.raises(ValueError, match="pair"):
            FaultPlan(kill=3)
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(drop_send=(-1, 2))
        with pytest.raises(ValueError, match="triple"):
            FaultPlan(stall=(0, 2))
        with pytest.raises(ValueError, match="seconds"):
            FaultPlan(delay=(0, 2, -0.1))

    def test_without_worker_strips_only_that_worker(self):
        plan = FaultPlan(
            kills=[(0, 1), (1, 2)],
            drop_send=(1, 4),
            stall=(1, 3, 0.2),
            torn_snapshot=(0, 2),
        )
        stripped = plan.without_worker(1)
        assert stripped.should_kill(0, 1)
        assert not stripped.should_kill(1, 2)
        assert not stripped.should_drop_send(1, 4)
        assert stripped.stall_seconds(1, 3) == 0.0
        assert stripped.should_tear_snapshot(0, 2)

    def test_pickle_roundtrip_and_value_equality(self):
        plan = FaultPlan(kill=(1, 3), stall=(0, 2, 0.1), torn_snapshot=(0, 4))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert hash(clone) == hash(plan)
        assert clone != FaultPlan(kill=(1, 3))

    def test_bool_and_repr(self):
        assert not FaultPlan()
        plan = FaultPlan(kill=(1, 0))
        assert plan
        assert "kills=[(1, 0)]" in repr(plan)


# ----------------------------------------------------------------------
# Shared harness: small graph, array plane, in-process reference
# ----------------------------------------------------------------------
def _setup(workers=2):
    graph = ring_of_cliques(3, 5)
    part = HashPartitioner(workers)
    return graph, part


def _step_tuples(stats):
    return [
        (s.superstep, s.messages, s.remote_messages, s.bytes, s.remote_bytes)
        for s in stats.per_superstep
    ]


def _same(a, b):
    eq = a == b
    return eq.all() if hasattr(eq, "all") else bool(eq)


def _assert_identical(got, ref):
    assert set(got) == set(ref)
    for key in ref:
        assert _same(got[key], ref[key]), f"collect mismatch at {key!r}"


def _reference(graph, part):
    """Failure-free in-process ground truth: (memories, superstep stats)."""
    shards = build_shards(graph, part)
    engine = ArrayBSPEngine(shards, part)
    programs = engine.run(
        [
            FastSLPAPropagationProgram(s, seed=SEED, iterations=ITERATIONS)
            for s in shards
        ]
    )
    memories = {}
    for program in programs:
        memories.update(program.collect())
    return memories, _step_tuples(engine.stats)


@pytest.fixture(scope="module")
def reference():
    graph, part = _setup()
    return _reference(graph, part)


def _faulty_run(transport, fault_plan, checkpoint_interval=2, max_restarts=3):
    """One fault-tolerant multiprocess run: (memories, steps, recovery)."""
    graph, part = _setup()
    shards = build_shards(graph, part)
    factory = partial(FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS)
    with MultiprocessBSPEngine(
        shards,
        part,
        factory,
        plane="array",
        transport=transport,
        fault_tolerance=True,
        checkpoint_interval=checkpoint_interval,
        max_restarts=max_restarts,
        fault_plan=fault_plan,
    ) as engine:
        stats = engine.run()
        memories = {}
        for result in engine.collect():
            memories.update(result)
    return memories, _step_tuples(stats), engine.recovery


def _shm_segments():
    # Dynamic half of the resource-discipline contract; the static half
    # is lint rule RPL003, which rejects SharedMemory/socket creations
    # in transport.py that cannot reach a close() on every path.
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # non-tmpfs platform: skip the leak check
        return set()


# ----------------------------------------------------------------------
# Per-transport kill/recovery smokes (CI selects these: -k "fault and smoke")
# ----------------------------------------------------------------------
class TestKillRecovery:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_recovery_bit_identical_smoke(self, transport, reference):
        ref_memories, ref_steps = reference
        before = _shm_segments()
        memories, steps, recovery = _faulty_run(
            transport, FaultPlan(kill=(1, 3))
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.recoveries == 1
        assert recovery.workers_respawned == 1
        assert recovery.checkpoints_taken >= 1
        assert recovery.supersteps_replayed >= 1
        assert _shm_segments() <= before  # recovery leaks no shm segments

    def test_kill_at_start_barrier_smoke(self, reference):
        # Superstep 0 dies before any cut exists: full reset + re-start.
        ref_memories, ref_steps = reference
        memories, steps, recovery = _faulty_run("pipe", FaultPlan(kill=(0, 0)))
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.recoveries == 1


# Crash at every superstep on the reference transport; the cheaper spot
# checks keep the slower transports honest without tripling the wall time
# (the every-(worker, superstep) × transport sweep lives in the benchmark).
KILL_MATRIX = [("pipe", w, s) for w in (0, 1) for s in range(ITERATIONS + 1)] + [
    (transport, 1, s)
    for transport in ("shm", "tcp")
    for s in (0, ITERATIONS // 2, ITERATIONS)
]


class TestCrashMatrix:
    @pytest.mark.parametrize("transport,worker,superstep", KILL_MATRIX)
    def test_kill_everywhere_bit_identical(
        self, transport, worker, superstep, reference
    ):
        ref_memories, ref_steps = reference
        memories, steps, recovery = _faulty_run(
            transport, FaultPlan(kill=(worker, superstep))
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.recoveries == 1
        assert recovery.workers_respawned == 1


# ----------------------------------------------------------------------
# The other fault kinds
# ----------------------------------------------------------------------
class TestFaultKinds:
    def test_drop_send_recovers_bit_identical(self, reference):
        ref_memories, ref_steps = reference
        memories, steps, recovery = _faulty_run(
            "pipe", FaultPlan(drop_send=(0, 2))
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.recoveries == 1

    def test_torn_snapshot_falls_back_to_older_cut(self, reference):
        # The cut at superstep 2 is torn, so the kill at 3 must replay
        # from the superstep-0 cut — more replay, same bits.
        ref_memories, ref_steps = reference
        memories, steps, recovery = _faulty_run(
            "pipe", FaultPlan(torn_snapshot=(0, 2), kill=(1, 3))
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.checkpoints_torn >= 1
        assert recovery.recoveries == 1
        assert recovery.supersteps_replayed >= 3

    def test_stall_and_delay_are_not_crashes(self, reference):
        ref_memories, ref_steps = reference
        memories, steps, recovery = _faulty_run(
            "pipe", FaultPlan(stall=(1, 2, 0.2), delay=(0, 3, 0.1))
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        assert recovery.recoveries == 0
        assert recovery.workers_respawned == 0

    def test_collect_crash_recovers(self, reference):
        # A worker lost between run() and collect() forces a replay from
        # the final (quiescence) cut; collect must still return full bits.
        ref_memories, _ = reference
        graph, part = _setup()
        shards = build_shards(graph, part)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
        )
        with MultiprocessBSPEngine(
            shards,
            part,
            factory,
            plane="array",
            transport="tcp",
            fault_tolerance=True,
            checkpoint_interval=2,
        ) as engine:
            engine.run()
            os.kill(engine._processes[0].pid, signal.SIGKILL)
            memories = {}
            for result in engine.collect():
                memories.update(result)
            assert engine.recovery.recoveries == 1
        _assert_identical(memories, ref_memories)


# ----------------------------------------------------------------------
# Policy knobs, back-compat, shutdown accounting
# ----------------------------------------------------------------------
class TestPolicy:
    def test_constructor_validation(self):
        graph, part = _setup()
        shards = build_shards(graph, part)
        factory = partial(FastSLPAPropagationProgram, seed=SEED, iterations=2)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            MultiprocessBSPEngine(shards, part, factory, checkpoint_interval=0)
        with pytest.raises(ValueError, match="max_restarts"):
            MultiprocessBSPEngine(shards, part, factory, max_restarts=-1)
        with pytest.raises(TypeError, match="fault_plan"):
            MultiprocessBSPEngine(shards, part, factory, fault_plan=[(1, 0)])

    def test_without_fault_tolerance_crash_still_raises_smoke(self):
        # Back-compat: the scripted kill surfaces as WorkerCrashedError.
        graph, part = _setup()
        shards = build_shards(graph, part)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
        )
        with MultiprocessBSPEngine(
            shards,
            part,
            factory,
            plane="array",
            fault_plan=FaultPlan(kill=(1, 2)),
        ) as engine:
            with pytest.raises(WorkerCrashedError) as excinfo:
                engine.run()
            assert excinfo.value.worker_id == 1

    def test_respawn_budget_exhausted_raises(self):
        # Two scripted kills on different workers against max_restarts=1:
        # the second crash exceeds the budget and must surface.
        graph, part = _setup()
        shards = build_shards(graph, part)
        factory = partial(
            FastSLPAPropagationProgram, seed=SEED, iterations=ITERATIONS
        )
        with MultiprocessBSPEngine(
            shards,
            part,
            factory,
            plane="array",
            fault_tolerance=True,
            checkpoint_interval=2,
            max_restarts=1,
            fault_plan=FaultPlan(kills=[(0, 1), (1, 4)]),
        ) as engine:
            with pytest.raises(WorkerCrashedError, match="budget"):
                engine.run()

    def test_shutdown_reports_leaked_pids(self, caplog):
        graph, part = _setup()
        shards = build_shards(graph, part)
        factory = partial(FastSLPAPropagationProgram, seed=SEED, iterations=2)
        engine = MultiprocessBSPEngine(shards, part, factory, plane="array")
        engine.run()

        class Unkillable:
            """A process handle SIGKILL never fells (uninterruptible sleep)."""

            pid = 424242

            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

            def terminate(self):
                pass

            def kill(self):
                pass

        real = engine._processes[0]
        engine._processes[0] = Unkillable()
        try:
            with caplog.at_level("ERROR", logger="repro.distributed.multiprocess"):
                engine.shutdown()
        finally:
            real.join(timeout=10)  # reap the real worker ourselves
        assert engine.leaked_pids == [424242]
        assert any("424242" in record.message for record in caplog.records)


# ----------------------------------------------------------------------
# Chaos: random fault plans must never break bit-identity
# ----------------------------------------------------------------------
sites = st.tuples(st.integers(0, 1), st.integers(0, ITERATIONS))
fault_plans = st.builds(
    FaultPlan,
    kills=st.lists(sites, max_size=2, unique=True),
    drop_sends=st.lists(sites, max_size=1, unique=True),
    stalls=st.lists(
        st.tuples(
            st.integers(0, 1),
            st.integers(0, ITERATIONS),
            st.floats(0.0, 0.05),
        ),
        max_size=1,
    ),
    torn_snapshots=st.lists(sites, max_size=1, unique=True),
)


class TestChaos:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=fault_plans, interval=st.integers(1, 3))
    def test_random_fault_plans_stay_bit_identical(self, plan, interval):
        graph, part = _setup()
        ref_memories, ref_steps = _reference(graph, part)
        memories, steps, recovery = _faulty_run(
            "pipe", plan, checkpoint_interval=interval, max_restarts=16
        )
        _assert_identical(memories, ref_memories)
        assert steps == ref_steps
        crashes = len(plan.kills) + len(plan.drop_sends)
        assert recovery.recoveries <= crashes
        assert recovery.workers_respawned <= crashes
