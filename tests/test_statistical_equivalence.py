"""Statistical equivalence: incremental updating vs from-scratch runs.

The paper's headline claim: rSLPA "can incrementally capture the same
communities as those obtained by applying the detection algorithm from the
scratch on the updated graph" — i.e. the maintained label state is a sample
from the *same distribution* as a fresh Algorithm-1 run on the new graph.

These tests measure that distribution directly on small graphs across many
seeds: for chosen slots we compare the empirical distribution of label
values (and of sources) between (a) scratch runs on the post-batch graph
and (b) incremental runs through Correction Propagation.  Total-variation
distance between the two empirical distributions must be within sampling
noise.
"""

from collections import Counter

import pytest

from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch, apply_batch

TRIALS = 400


def total_variation(counts_a: Counter, counts_b: Counter) -> float:
    total_a = sum(counts_a.values())
    total_b = sum(counts_b.values())
    keys = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a[k] / total_a - counts_b[k] / total_b) for k in keys
    )


def build_graph():
    """A 6-vertex graph with both dense and sparse regions."""
    return Graph.from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5)]
    )


def scratch_distribution(batch: EditBatch, slot, iterations=8):
    v, t = slot
    counts = Counter()
    for seed in range(TRIALS):
        graph = build_graph()
        apply_batch(graph, batch)
        propagator = ReferencePropagator(graph, seed=seed)
        propagator.propagate(iterations)
        counts[propagator.state.labels[v][t]] += 1
    return counts


def incremental_distribution(batch: EditBatch, slot, iterations=8):
    v, t = slot
    counts = Counter()
    for seed in range(TRIALS):
        graph = build_graph()
        propagator = ReferencePropagator(graph, seed=seed)
        propagator.propagate(iterations)
        corrector = CorrectionPropagator(propagator)
        corrector.apply_batch(batch)
        counts[propagator.state.labels[v][t]] += 1
    return counts


# With TRIALS=400 per side, the TV distance between two samples of the same
# distribution over <= 6 outcomes concentrates below ~0.1; 0.12 gives margin.
TOLERANCE = 0.12


class TestLabelValueDistributions:
    @pytest.mark.parametrize("slot", [(2, 1), (2, 4), (0, 8), (4, 6)])
    def test_deletion_batch(self, slot):
        batch = EditBatch.build(deletions=[(2, 3)])
        tv = total_variation(
            scratch_distribution(batch, slot),
            incremental_distribution(batch, slot),
        )
        assert tv < TOLERANCE, f"slot {slot}: TV distance {tv:.3f}"

    @pytest.mark.parametrize("slot", [(0, 3), (5, 8)])
    def test_insertion_batch(self, slot):
        batch = EditBatch.build(insertions=[(0, 5)])
        tv = total_variation(
            scratch_distribution(batch, slot),
            incremental_distribution(batch, slot),
        )
        assert tv < TOLERANCE, f"slot {slot}: TV distance {tv:.3f}"

    @pytest.mark.parametrize("slot", [(3, 5), (1, 7)])
    def test_mixed_batch(self, slot):
        batch = EditBatch.build(insertions=[(1, 4)], deletions=[(3, 4)])
        tv = total_variation(
            scratch_distribution(batch, slot),
            incremental_distribution(batch, slot),
        )
        assert tv < TOLERANCE, f"slot {slot}: TV distance {tv:.3f}"


class TestSourceDistributions:
    def test_source_marginal_after_mixed_batch(self):
        """src of a touched slot: uniform over the new neighbourhood in both
        procedures (Theorems 4-5 + scratch uniformity)."""
        batch = EditBatch.build(insertions=[(2, 5)], deletions=[(2, 1)])
        v, t = 2, 6
        scratch = Counter()
        incremental = Counter()
        for seed in range(TRIALS):
            graph = build_graph()
            apply_batch(graph, batch)
            propagator = ReferencePropagator(graph, seed=seed)
            propagator.propagate(8)
            scratch[propagator.state.srcs[v][t]] += 1

            graph2 = build_graph()
            propagator2 = ReferencePropagator(graph2, seed=seed)
            propagator2.propagate(8)
            CorrectionPropagator(propagator2).apply_batch(batch)
            incremental[propagator2.state.srcs[v][t]] += 1
        tv = total_variation(scratch, incremental)
        assert tv < TOLERANCE, f"TV distance {tv:.3f}"
        # And both must be uniform over the new neighbours {0, 3, 5}.
        for counts in (scratch, incremental):
            assert set(counts) == {0, 3, 5}
            for neighbour in (0, 3, 5):
                assert abs(counts[neighbour] / TRIALS - 1 / 3) < 0.08


class TestCoverDistribution:
    def test_community_count_distribution_matches(self):
        """Beyond single slots: the distribution of the *extracted community
        count* matches between procedures on a two-clique graph."""
        from repro.core.postprocess import extract_communities

        def clique_pair():
            edges = []
            for base in (0, 4):
                for i in range(4):
                    for j in range(i + 1, 4):
                        edges.append((base + i, base + j))
            edges.append((0, 4))
            return Graph.from_edges(edges)

        batch = EditBatch.build(insertions=[(1, 5)], deletions=[(0, 4)])
        scratch_counts = Counter()
        incremental_counts = Counter()
        for seed in range(150):
            graph = clique_pair()
            apply_batch(graph, batch)
            propagator = ReferencePropagator(graph, seed=seed)
            propagator.propagate(30)
            cover = extract_communities(
                graph, propagator.state.labels, step=0.02
            ).cover
            scratch_counts[len(cover)] += 1

            graph2 = clique_pair()
            propagator2 = ReferencePropagator(graph2, seed=seed)
            propagator2.propagate(30)
            CorrectionPropagator(propagator2).apply_batch(batch)
            cover2 = extract_communities(
                graph2, propagator2.state.labels, step=0.02
            ).cover
            incremental_counts[len(cover2)] += 1
        tv = total_variation(scratch_counts, incremental_counts)
        assert tv < 0.2, (
            f"community-count TV {tv:.3f}: "
            f"scratch {dict(scratch_counts)} vs incremental {dict(incremental_counts)}"
        )
