"""Tests for repro.graph.csr — the shared CSR compute substrate."""

import numpy as np
import pytest

from repro.core.fast import graph_to_csr
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRDelta, CSRGraph, build_csr_arrays
from repro.graph.edits import EditBatch, apply_batch
from repro.graph.generators import erdos_renyi, planted_partition, ring_of_cliques
from repro.graph.partition import ContiguousPartitioner, HashPartitioner, slice_csr
from repro.workloads.dynamic import random_edit_batch


def graphs_under_test():
    """A spread of shapes: empty, edgeless, isolated vertices, dense-ish."""
    return [
        Graph(),
        Graph.from_edges((), vertices=range(7)),
        Graph.from_edges([(0, 1)], vertices=[2, 3]),
        ring_of_cliques(4, 5),
        erdos_renyi(60, 0.06, seed=17),     # contains isolated vertices
        planted_partition(4, 10, 0.7, 0.05, seed=3),
    ]


class TestConstruction:
    @pytest.mark.parametrize("graph", graphs_under_test())
    def test_rows_are_sorted_neighbour_lists(self, graph):
        csr = CSRGraph.from_graph(graph)
        for v in graph.vertices():
            assert csr.neighbors(v).tolist() == sorted(graph.neighbors_view(v))

    @pytest.mark.parametrize("graph", graphs_under_test())
    def test_matches_legacy_builder_contract(self, graph):
        """The compat wrapper in core.fast returns the same arrays."""
        indptr, indices = build_csr_arrays(graph)
        legacy_indptr, legacy_indices = graph_to_csr(graph)
        assert np.array_equal(indptr, legacy_indptr)
        assert np.array_equal(indices, legacy_indices)

    @pytest.mark.parametrize("graph", graphs_under_test())
    def test_invariants_hold(self, graph):
        CSRGraph.from_graph(graph).check_invariants()

    def test_requires_contiguous_ids(self):
        with pytest.raises(ValueError, match="contiguous"):
            CSRGraph.from_graph(Graph.from_edges([(0, 5)]))

    def test_from_edges_normalises_and_deduplicates(self):
        csr = CSRGraph.from_edges([(1, 0), (0, 1), (2, 1)])
        assert csr.num_edges == 2
        assert csr.neighbors(1).tolist() == [0, 2]

    def test_from_edges_keeps_trailing_isolated_vertices(self):
        csr = CSRGraph.from_edges([(0, 1)], num_vertices=4)
        assert csr.num_vertices == 4
        assert csr.isolated_vertices() == [2, 3]

    def test_counts(self, cliques_ring):
        csr = CSRGraph.from_graph(cliques_ring)
        assert csr.num_vertices == cliques_ring.num_vertices
        assert csr.num_edges == cliques_ring.num_edges
        assert csr.degrees.tolist() == [
            cliques_ring.degree(v) for v in range(cliques_ring.num_vertices)
        ]


class TestRoundTrip:
    @pytest.mark.parametrize("graph", graphs_under_test())
    def test_graph_csr_graph_is_identity(self, graph):
        assert CSRGraph.from_graph(graph).to_graph() == graph

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_post_edit_snapshot_round_trips(self, seed):
        graph = erdos_renyi(40, 0.1, seed=seed)
        csr = CSRGraph.from_graph(graph)
        batch = random_edit_batch(graph, size=12, seed=seed)
        edited = apply_batch(graph.copy(), batch)
        snapshot = csr.with_edits(batch)
        snapshot.check_invariants()
        assert snapshot.to_graph() == edited

    def test_edges_enumerated_once_in_canonical_form(self, cliques_ring):
        csr = CSRGraph.from_graph(cliques_ring)
        edges = list(csr.edges())
        assert len(edges) == cliques_ring.num_edges
        assert len(set(edges)) == len(edges)
        assert all(u < v for u, v in edges)
        assert set(edges) == set(cliques_ring.edges())


class TestWithEdits:
    def test_insertion_grows_vertex_set(self):
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1)]))
        grown = csr.with_edits(EditBatch.build(insertions=[(2, 4)]))
        assert grown.num_vertices == 5
        assert grown.has_edge(2, 4)
        assert grown.degree(3) == 0

    def test_rejects_missing_deletion(self):
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1)]))
        with pytest.raises(ValueError, match="deletions not present"):
            csr.with_edits(EditBatch.build(deletions=[(0, 2)]))

    def test_rejects_duplicate_insertion(self):
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1)]))
        with pytest.raises(ValueError, match="insertions already present"):
            csr.with_edits(EditBatch.build(insertions=[(1, 0)]))

    def test_empty_batch_is_identity(self, cliques_ring):
        csr = CSRGraph.from_graph(cliques_ring)
        assert csr.with_edits(EditBatch.empty()) == csr


class TestCSRDelta:
    def test_overlay_reads(self):
        base = CSRGraph.from_graph(ring_of_cliques(3, 4))
        delta = CSRDelta(base)
        assert not delta
        delta.remove_edge(0, 1)
        delta.add_edge(0, 11)
        assert not delta.has_edge(0, 1)
        assert delta.has_edge(0, 11)
        assert delta.degree(0) == base.degree(0)  # one lost, one gained
        assert delta.num_edges == base.num_edges
        assert 11 in delta.neighbors(0).tolist()
        assert 1 not in delta.neighbors(0).tolist()

    def test_snapshot_equals_with_edits(self):
        graph = erdos_renyi(30, 0.15, seed=4)
        base = CSRGraph.from_graph(graph)
        batch = random_edit_batch(graph, size=8, seed=9)
        delta = CSRDelta(base)
        delta.apply(batch)
        assert delta.pending == batch
        assert delta.snapshot() == base.with_edits(batch)

    def test_cancelling_pairs_drop_out(self):
        base = CSRGraph.from_graph(Graph.from_edges([(0, 1), (1, 2)]))
        delta = CSRDelta(base)
        delta.remove_edge(0, 1)
        delta.add_edge(0, 1)
        assert not delta
        assert delta.snapshot() is base

    def test_noop_snapshot_returns_base(self):
        base = CSRGraph.from_graph(Graph.from_edges([(0, 1)]))
        assert CSRDelta(base).snapshot() is base


class TestSliceCSR:
    @pytest.mark.parametrize("partitioner_factory", [
        lambda n: HashPartitioner(3),
        lambda n: ContiguousPartitioner(3, n),
        lambda n: HashPartitioner(1),
    ])
    @pytest.mark.parametrize("graph", [
        Graph.from_edges((), vertices=range(6)),
        ring_of_cliques(4, 5),
        erdos_renyi(60, 0.06, seed=17),
    ])
    def test_shards_cover_all_edge_endpoints_exactly_once(
        self, graph, partitioner_factory
    ):
        csr = CSRGraph.from_graph(graph)
        part = partitioner_factory(max(graph.num_vertices, 1))
        shards = slice_csr(csr, part)
        seen_vertices = []
        seen_endpoints = []
        for local_ids, indptr, indices in shards:
            seen_vertices.extend(local_ids.tolist())
            for r, v in enumerate(local_ids.tolist()):
                row = indices[indptr[r] : indptr[r + 1]].tolist()
                assert row == sorted(graph.neighbors_view(v))
                seen_endpoints.extend((v, u) for u in row)
        # Every vertex (isolated ones included) is owned exactly once...
        assert sorted(seen_vertices) == sorted(graph.vertices())
        # ...and every directed edge endpoint appears exactly once overall.
        assert len(seen_endpoints) == 2 * graph.num_edges
        assert len(set(seen_endpoints)) == len(seen_endpoints)

    def test_post_edit_snapshot_shards_cover_new_edges(self):
        graph = erdos_renyi(40, 0.1, seed=1)
        csr = CSRGraph.from_graph(graph)
        batch = random_edit_batch(graph, size=10, seed=2)
        snapshot = csr.with_edits(batch)
        edited = apply_batch(graph.copy(), batch)
        shards = slice_csr(snapshot, HashPartitioner(4))
        covered = set()
        for local_ids, indptr, indices in shards:
            for r, v in enumerate(local_ids.tolist()):
                for u in indices[indptr[r] : indptr[r + 1]].tolist():
                    if v < u:
                        covered.add((v, u))
        assert covered == set(edited.edges())


class TestEngineIntegration:
    def test_fast_propagator_accepts_csr_snapshot(self, cliques_ring):
        from repro.core.fast import FastPropagator

        via_graph = FastPropagator(cliques_ring, seed=4)
        via_graph.propagate(20)
        via_csr = FastPropagator(CSRGraph.from_graph(cliques_ring), seed=4)
        via_csr.propagate(20)
        assert np.array_equal(via_graph.labels, via_csr.labels)

    def test_fast_slpa_accepts_csr_snapshot(self, cliques_ring):
        from repro.baselines.slpa_fast import FastSLPA

        via_graph = FastSLPA(cliques_ring, seed=4, iterations=12)
        via_graph.propagate()
        via_csr = FastSLPA(CSRGraph.from_graph(cliques_ring), seed=4, iterations=12)
        via_csr.propagate()
        assert np.array_equal(via_graph.memory, via_csr.memory)
