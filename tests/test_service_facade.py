"""Tests for the CommunityService facade: lifecycle, ingest, staleness."""

import numpy as np
import pytest

from repro.core.detector import RSLPADetector
from repro.core.labels_array import ArrayLabelState
from repro.graph.edits import EditBatch
from repro.service import BackpressureError, CommunityService, ServiceConfig
from repro.workloads.dynamic import EditStream

ITERATIONS = 40


def make_service(graph, **overrides):
    overrides.setdefault("seed", 3)
    overrides.setdefault("iterations", ITERATIONS)
    overrides.setdefault("batch_size", 4)
    return CommunityService(graph, **overrides)


def state_matrices(detector) -> ArrayLabelState:
    state = detector.array_state
    if state is None:
        state = ArrayLabelState.from_label_state(detector.label_state)
    return state


class TestLifecycle:
    def test_start_fits_and_extracts(self, cliques_ring):
        service = make_service(cliques_ring).start()
        assert service.stats()["num_communities"] == 5
        assert service.extractions == 1

    def test_queries_before_start_rejected(self, cliques_ring):
        service = make_service(cliques_ring)
        with pytest.raises(RuntimeError, match="not started"):
            service.communities_of(0)
        with pytest.raises(RuntimeError, match="not started"):
            service.submit_insert(0, 10)

    def test_double_start_rejected(self, cliques_ring):
        service = make_service(cliques_ring).start()
        with pytest.raises(RuntimeError, match="already started"):
            service.start()

    def test_caller_graph_not_mutated(self, cliques_ring):
        edges_before = set(cliques_ring.edges())
        service = make_service(cliques_ring, batch_size=1).start()
        service.submit_insert(0, 10)
        assert set(cliques_ring.edges()) == edges_before

    def test_distributed_start_matches_local(self, cliques_ring):
        local = make_service(cliques_ring).start()
        dist = make_service(cliques_ring).start(num_workers=3)
        assert dist.detector.comm_stats is not None
        assert local.cover() == dist.cover()
        assert np.array_equal(
            state_matrices(local.detector).labels,
            state_matrices(dist.detector).labels,
        )

    def test_config_object_and_overrides_compose(self, cliques_ring):
        config = ServiceConfig(seed=3, iterations=ITERATIONS, batch_size=9)
        service = CommunityService(cliques_ring, config, staleness_batches=1)
        assert service.config.batch_size == 9
        assert service.config.staleness_batches == 1


class TestIngest:
    def test_submit_flushes_full_windows(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=2).start()
        assert service.submit_insert(0, 10) is None
        report = service.submit_insert(1, 11)
        assert report is not None
        assert report.batch_size == 2
        assert service.batches_applied == 1
        assert service.graph.has_edge(0, 10)

    def test_cancelling_edits_never_reach_detector(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=4).start()
        service.submit_insert(0, 10)
        service.submit_delete(0, 10)
        assert service.flush() is None
        assert service.batches_applied == 0

    def test_flush_on_demand(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=100).start()
        service.submit_insert(0, 10)
        report = service.flush()
        assert report is not None and report.batch_size == 1

    def test_apply_direct_batch(self, cliques_ring):
        service = make_service(cliques_ring).start()
        report = service.apply(EditBatch.build(insertions=[(0, 10)]))
        assert report.num_inserted == 1
        assert service.edits_applied == 1

    def test_apply_flushes_pending_first(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=100).start()
        service.submit_insert(0, 10)
        service.apply(EditBatch.build(deletions=[(0, 10)]))
        assert service.batches_applied == 2
        assert not service.graph.has_edge(0, 10)

    def test_strict_edits_propagate_validation_error(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=1).start()
        with pytest.raises(ValueError, match="already present"):
            service.submit_insert(0, 1)  # clique edge already exists

    def test_lenient_mode_drops_noops(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=4, strict_edits=False
        ).start()
        service.submit_insert(0, 1)    # already present: dropped at flush
        service.submit_delete(0, 10)   # absent: dropped at flush
        assert service.flush() is None
        report = service.apply(
            EditBatch.build(insertions=[(0, 1), (0, 10)])
        )
        assert report.num_inserted == 1  # only the genuinely new edge

    def test_backpressure_surfaces(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=2, max_pending=2, staleness_batches=0
        ).start()
        # Fill the window with edits that cannot flush (strict validation
        # happens at flush; the queue itself enforces depth).
        queue = service.queue
        queue.offer_insert(0, 10)
        queue.offer_insert(0, 11)
        with pytest.raises(BackpressureError):
            queue.offer_insert(0, 12)

    def test_ingest_equivalent_to_plain_detector(self, cliques_ring):
        """Feeding whole stream batches through the service == detector.update."""
        service = make_service(cliques_ring, batch_size=4).start()
        detector = RSLPADetector(
            cliques_ring, seed=3, iterations=ITERATIONS
        ).fit()
        stream = EditStream(cliques_ring, batch_size=4, seed=11)
        for batch in stream.take(5):
            service.apply(batch)
            detector.update(batch)
        assert np.array_equal(
            state_matrices(service.detector).labels,
            state_matrices(detector).labels,
        )
        assert service.cover() == detector.communities()


class TestStalenessPolicy:
    def test_queries_do_not_extract_until_k_batches(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=3
        ).start()
        service.submit_insert(0, 10)
        service.submit_insert(0, 11)
        for _ in range(5):
            service.communities_of(0)
        assert service.extractions == 1  # still the start() extraction
        service.submit_insert(0, 12)     # third batch reaches K
        service.communities_of(0)
        assert service.extractions == 2
        service.communities_of(0)        # fresh again: no further extraction
        assert service.extractions == 2

    def test_staleness_zero_means_always_fresh(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=0
        ).start()
        service.submit_insert(0, 10)
        service.communities_of(0)
        assert service.extractions == 2
        service.communities_of(0)  # nothing new applied: stays cached
        assert service.extractions == 2

    def test_refresh_on_demand(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=100
        ).start()
        service.submit_insert(0, 10)
        service.refresh()
        assert service.extractions == 2
        assert service.batches_since_extract == 0

    def test_stable_ids_survive_refreshes(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=1
        ).start()
        before = service.communities_of(0)
        service.submit_insert(0, 10)   # one batch: next query re-extracts
        after = service.communities_of(0)
        assert before == after

    def test_members_and_overlap_queries(self, cliques_ring):
        service = make_service(cliques_ring).start()
        cids = service.communities_of(0)
        assert len(cids) >= 1
        members = service.members(cids[0])
        assert 0 in members
        assert service.overlap(0, 1) == cids
        assert service.queries_served == 3


class TestStats:
    def test_stats_shape(self, cliques_ring):
        service = make_service(cliques_ring, batch_size=2).start()
        service.submit_insert(0, 10)
        stats = service.stats()
        assert stats["started"] is True
        assert stats["pending_edits"] == 1
        assert stats["batches_applied"] == 0
        assert stats["num_communities"] == 5
        assert "checkpoints" not in stats  # no durability configured

    def test_stats_json_serialisable(self, cliques_ring):
        import json

        service = make_service(cliques_ring).start()
        json.dumps(service.stats())


class TestDegradation:
    """Graceful degradation: stale serving, bounded ingest waits."""

    def break_extraction(self, service, monkeypatch):
        def boom():
            raise RuntimeError("fit engine mid-recovery")

        monkeypatch.setattr(service.detector, "communities", boom)

    def test_lazy_refresh_failure_serves_stale_index(
        self, cliques_ring, monkeypatch, caplog
    ):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=1
        ).start()
        fresh = service.communities_of(0)
        service.submit_insert(0, 10)  # one batch: next query wants a refresh
        self.break_extraction(service, monkeypatch)
        with caplog.at_level("WARNING", logger="repro.service.facade"):
            stale = service.communities_of(0)
        assert stale == fresh  # last published index still answers
        assert service.stale_serves == 1
        assert service.refresh_failures == 1
        assert any(
            "lazy re-extraction failed" in record.message
            for record in caplog.records
        )
        stats = service.stats()
        assert stats["stale_serves"] == 1
        assert stats["refresh_failures"] == 1

    def test_explicit_refresh_still_raises(self, cliques_ring, monkeypatch):
        service = make_service(cliques_ring).start()
        self.break_extraction(service, monkeypatch)
        with pytest.raises(RuntimeError, match="mid-recovery"):
            service.refresh()

    def test_recovered_extraction_resumes_freshness(
        self, cliques_ring, monkeypatch
    ):
        service = make_service(
            cliques_ring, batch_size=1, staleness_batches=1
        ).start()
        service.submit_insert(0, 10)
        self.break_extraction(service, monkeypatch)
        service.communities_of(0)            # degraded serve
        monkeypatch.undo()                   # the engine "recovers"
        service.communities_of(0)
        assert service.stale_serves == 1     # no further degradation
        assert service.batches_since_extract == 0

    def test_submit_timeout_passes_through_to_queue(self, cliques_ring):
        service = make_service(
            cliques_ring, batch_size=2, max_pending=2
        ).start()
        # Fill the queue below the flush threshold via the raw queue so
        # submit's own flush-on-ready cannot relieve the pressure.
        service.queue.offer_insert(0, 10)
        service.queue.offer_insert(0, 11)
        import time

        start = time.monotonic()
        with pytest.raises(BackpressureError) as excinfo:
            service.submit_insert(0, 12, timeout=0.05)
        assert time.monotonic() - start >= 0.04
        assert excinfo.value.retry_after is not None
        assert service.stats()["queue_backpressure_hits"] == 1

    def test_stats_have_no_recovery_section_in_process(self, cliques_ring):
        service = make_service(cliques_ring).start()
        assert "recovery" not in service.stats()
