"""Tests for the overlapping NMI (LFK variant) — the paper's quality metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.nmi import cover_entropy_bits, nmi_overlapping


def covers(n=12, max_communities=4):
    community = st.sets(st.integers(0, n - 1), min_size=1, max_size=n)
    return st.lists(community, min_size=1, max_size=max_communities)


class TestExactValues:
    def test_identical_covers_score_one(self):
        cover = [{0, 1, 2}, {3, 4}, {2, 5}]
        assert nmi_overlapping(cover, cover, 6) == 1.0

    def test_identical_overlapping_covers_score_one(self):
        cover = [{0, 1, 2, 3}, {3, 4, 5, 6}]
        assert nmi_overlapping(cover, cover, 7) == 1.0

    def test_disjoint_unrelated_covers_score_low(self):
        a = [{0, 1}, {2, 3}, {4, 5}, {6, 7}]
        b = [{0, 2, 4, 6}, {1, 3, 5, 7}]
        assert nmi_overlapping(a, b, 8) < 0.35

    def test_partial_agreement_intermediate(self):
        truth = [{0, 1, 2, 3}, {4, 5, 6, 7}]
        close = [{0, 1, 2}, {4, 5, 6, 7}]
        far = [{0, 4}, {1, 5}]
        score_close = nmi_overlapping(close, truth, 8)
        score_far = nmi_overlapping(far, truth, 8)
        assert score_far < score_close < 1.0

    def test_both_empty_is_one(self):
        assert nmi_overlapping([], [], 5) == 1.0

    def test_one_empty_is_zero(self):
        assert nmi_overlapping([{0, 1}], [], 5) == 0.0

    def test_empty_communities_ignored(self):
        assert nmi_overlapping([{0, 1}, set()], [{0, 1}], 4) == 1.0


class TestValidation:
    def test_rejects_non_positive_universe(self):
        with pytest.raises(ValueError):
            nmi_overlapping([{0}], [{0}], 0)

    def test_rejects_oversized_community(self):
        with pytest.raises(ValueError, match="larger than the universe"):
            nmi_overlapping([{0, 1, 2}], [{0}], 2)


class TestCoverEntropy:
    def test_single_half_community(self):
        # p = 0.5 -> H = 1 bit
        assert cover_entropy_bits([{0, 1}], 4) == pytest.approx(1.0)

    def test_full_community_zero_entropy(self):
        assert cover_entropy_bits([{0, 1, 2, 3}], 4) == pytest.approx(0.0)

    def test_additive_over_communities(self):
        single = cover_entropy_bits([{0, 1}], 4)
        double = cover_entropy_bits([{0, 1}, {2, 3}], 4)
        assert double == pytest.approx(2 * single)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(covers(), covers())
    def test_symmetric(self, a, b):
        assert nmi_overlapping(a, b, 12) == pytest.approx(
            nmi_overlapping(b, a, 12)
        )

    @settings(max_examples=60, deadline=None)
    @given(covers(), covers())
    def test_bounded(self, a, b):
        assert 0.0 <= nmi_overlapping(a, b, 12) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(covers(), covers())
    def test_self_similarity_is_maximal(self, a, b):
        assert nmi_overlapping(a, a, 12) >= nmi_overlapping(a, b, 12) - 1e-9


@settings(max_examples=40, deadline=None)
@given(covers())
def test_property_identity(cover):
    assert nmi_overlapping(cover, cover, 12) == pytest.approx(1.0)
