"""Tests for the high-level distributed wrappers (cluster.py)."""


from repro.core.detector import RSLPADetector
from repro.core.postprocess import extract_communities
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_postprocess,
    run_distributed_rslpa,
)
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import ContiguousPartitioner


class TestDistributedPostprocess:
    def test_matches_sequential_extraction(self, cliques_ring):
        """Distributed CC + thresholds == sequential extract_communities."""
        state, _ = run_distributed_rslpa(
            cliques_ring, seed=11, iterations=60, num_workers=3
        )
        dist_cover, stats = run_distributed_postprocess(
            cliques_ring, state, num_workers=3, step=0.005
        )
        seq_result = extract_communities(
            cliques_ring, state.labels, step=0.005
        )
        assert dist_cover == seq_result.cover
        assert stats.supersteps >= 1

    def test_recovers_ring_of_cliques(self, cliques_ring):
        state, _ = run_distributed_rslpa(
            cliques_ring, seed=11, iterations=60, num_workers=4
        )
        cover, _ = run_distributed_postprocess(
            cliques_ring, state, num_workers=4, step=0.005
        )
        found = sorted(sorted(c) for c in cover)
        assert found == [sorted(range(c * 6, (c + 1) * 6)) for c in range(5)]

    def test_worker_count_invariant(self, cliques_ring):
        state, _ = run_distributed_rslpa(
            cliques_ring, seed=2, iterations=40, num_workers=2
        )
        one, _ = run_distributed_postprocess(cliques_ring, state, num_workers=1)
        five, _ = run_distributed_postprocess(cliques_ring, state, num_workers=5)
        assert one == five

    def test_isolated_vertices_excluded(self):
        g = ring_of_cliques(2, 4)
        g.add_vertex(99)
        state, _ = run_distributed_rslpa(g, seed=1, iterations=30, num_workers=2)
        cover, _ = run_distributed_postprocess(g, state, num_workers=2)
        assert all(99 not in c for c in cover)


class TestCustomPartitioner:
    def test_contiguous_partitioner_accepted(self, cliques_ring):
        part = ContiguousPartitioner(5, num_vertices=30)
        state, stats = run_distributed_rslpa(
            cliques_ring, seed=3, iterations=20,
            num_workers=5, partitioner=part,
        )
        ref = ReferencePropagator(cliques_ring.copy(), seed=3)
        ref.propagate(20)
        assert state.labels == ref.state.labels
        # Clique-aligned blocks keep many fetches worker-local.
        assert stats.total_remote_messages < stats.total_messages


class TestEndToEndAgainstDetector:
    def test_cluster_pipeline_matches_detector(self, cliques_ring):
        """Cluster run == RSLPADetector (reference engine) end to end."""
        detector = RSLPADetector(
            cliques_ring, seed=9, iterations=50, backend="reference",
            tau_step=0.005,
        ).fit()
        state, _ = run_distributed_rslpa(
            cliques_ring, seed=9, iterations=50, num_workers=3
        )
        cover, _ = run_distributed_postprocess(
            cliques_ring, state, num_workers=3, step=0.005
        )
        assert cover == detector.communities()
