"""Tests for modularity metrics."""

import networkx as nx
import pytest

from repro.graph.generators import planted_partition, ring_of_cliques
from repro.graph.io import to_networkx
from repro.metrics.modularity import modularity, overlapping_modularity


class TestModularity:
    def test_matches_networkx(self, cliques_ring):
        partition = [set(range(c * 6, (c + 1) * 6)) for c in range(5)]
        ours = modularity(cliques_ring, partition)
        theirs = nx.algorithms.community.modularity(
            to_networkx(cliques_ring), partition
        )
        assert ours == pytest.approx(theirs)

    def test_good_partition_beats_bad(self):
        g = planted_partition(3, 10, p_in=0.7, p_out=0.05, seed=1)
        good = [set(range(i * 10, (i + 1) * 10)) for i in range(3)]
        bad = [set(range(i, 30, 3)) for i in range(3)]
        assert modularity(g, good) > modularity(g, bad)

    def test_single_community_is_zero(self, cliques_ring):
        assert modularity(cliques_ring, [set(cliques_ring.vertices())]) == (
            pytest.approx(0.0)
        )

    def test_missing_vertices_allowed(self, cliques_ring):
        partial = [set(range(6))]
        value = modularity(cliques_ring, partial)
        assert -1.0 <= value <= 1.0

    def test_rejects_overlap(self, cliques_ring):
        with pytest.raises(ValueError, match="several communities"):
            modularity(cliques_ring, [{0, 1}, {1, 2}])

    def test_empty_graph(self):
        from repro.graph.adjacency import Graph

        assert modularity(Graph(), []) == 0.0


class TestOverlappingModularity:
    def test_agrees_with_disjoint_on_partitions(self, cliques_ring):
        partition = [set(range(c * 6, (c + 1) * 6)) for c in range(5)]
        assert overlapping_modularity(cliques_ring, partition) == pytest.approx(
            modularity(cliques_ring, partition)
        )

    def test_handles_overlap(self, two_cliques_bridge):
        cover = [{0, 1, 2, 3, 4}, {4, 5, 6, 7, 0}]
        value = overlapping_modularity(two_cliques_bridge, cover)
        assert -1.0 <= value <= 1.0

    def test_good_cover_beats_random(self):
        g = ring_of_cliques(4, 5)
        good = [set(range(c * 5, (c + 1) * 5)) for c in range(4)]
        scattered = [set(range(i, 20, 4)) for i in range(4)]
        assert overlapping_modularity(g, good) > overlapping_modularity(
            g, scattered
        )

    def test_membership_normalisation_dampens(self):
        """Duplicating a community halves each vertex's weight: Q drops."""
        g = ring_of_cliques(3, 4)
        single = [set(range(c * 4, (c + 1) * 4)) for c in range(3)]
        doubled = single + [set(single[0])]
        assert overlapping_modularity(g, doubled) < overlapping_modularity(
            g, single
        )

    def test_empty_graph(self):
        from repro.graph.adjacency import Graph

        assert overlapping_modularity(Graph(), [{0}]) == 0.0
