"""Tests for the distributed vertex programs vs their sequential twins."""

import pytest

from repro.baselines.slpa import SLPA
from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import (
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.partition import ContiguousPartitioner, HashPartitioner
from repro.workloads.dynamic import random_edit_batch


class TestDistributedRSLPA:
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_bit_identical_to_sequential(self, workers, cliques_ring):
        state, _ = run_distributed_rslpa(
            cliques_ring.copy(), seed=3, iterations=25, num_workers=workers
        )
        ref = ReferencePropagator(cliques_ring.copy(), seed=3)
        ref.propagate(25)
        assert state.labels == ref.state.labels
        assert state.srcs == ref.state.srcs
        assert state.receivers == ref.state.receivers

    def test_partitioning_does_not_change_result(self, cliques_ring):
        hash_state, _ = run_distributed_rslpa(
            cliques_ring.copy(), seed=4, iterations=20,
            partitioner=HashPartitioner(3), num_workers=3,
        )
        range_state, _ = run_distributed_rslpa(
            cliques_ring.copy(), seed=4, iterations=20,
            partitioner=ContiguousPartitioner(3, 30), num_workers=3,
        )
        assert hash_state.labels == range_state.labels

    def test_message_volume_is_two_per_vertex_per_iteration(self, cliques_ring):
        _, stats = run_distributed_rslpa(
            cliques_ring.copy(), seed=1, iterations=10, num_workers=3
        )
        # All 30 vertices have degree > 0: one request + one reply each.
        assert stats.total_messages == 2 * 30 * 10
        assert stats.supersteps == 2 * 10

    def test_state_valid_and_usable(self, cliques_ring):
        state, _ = run_distributed_rslpa(
            cliques_ring.copy(), seed=2, iterations=15, num_workers=2
        )
        state.validate(cliques_ring)

    def test_degree_zero_vertices_padded(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        state, _ = run_distributed_rslpa(g, seed=0, iterations=8, num_workers=2)
        assert state.labels[2] == [2] * 9
        state.validate(g)


class TestDistributedSLPA:
    def test_memories_match_baseline(self, cliques_ring):
        memories, _ = run_distributed_slpa(
            cliques_ring.copy(), seed=5, iterations=20, num_workers=3
        )
        ref = SLPA(cliques_ring.copy(), seed=5, iterations=20)
        ref.propagate()
        assert memories == ref.memories

    def test_message_volume_is_two_per_edge_per_iteration(self, cliques_ring):
        _, stats = run_distributed_slpa(
            cliques_ring.copy(), seed=1, iterations=10, num_workers=3
        )
        assert stats.total_messages == 2 * cliques_ring.num_edges * 10
        assert stats.supersteps == 10

    def test_rslpa_sends_fewer_labels_than_slpa(self, cliques_ring):
        """The Section III-A communication claim, measured."""
        _, rslpa_stats = run_distributed_rslpa(
            cliques_ring.copy(), seed=1, iterations=10, num_workers=3
        )
        _, slpa_stats = run_distributed_slpa(
            cliques_ring.copy(), seed=1, iterations=10, num_workers=3
        )
        # |E| = 80 > |V| = 30, so 2|E| > 2|V| per iteration.
        assert rslpa_stats.total_messages < slpa_stats.total_messages


class TestDistributedCorrection:
    def _sequential_twin(self, graph, seed, iterations, batch):
        g = graph.copy()
        ref = ReferencePropagator(g, seed=seed)
        ref.propagate(iterations)
        corrector = CorrectionPropagator(ref)
        corrector.apply_batch(batch)
        return corrector.state, g

    @pytest.mark.parametrize("workers", [1, 3])
    def test_fixpoint_matches_sequential(self, workers, cliques_ring):
        batch = random_edit_batch(cliques_ring, 8, seed=2)
        seq_state, seq_graph = self._sequential_twin(cliques_ring, 7, 25, batch)

        g = cliques_ring.copy()
        ref = ReferencePropagator(g, seed=7)
        ref.propagate(25)
        _, dist_state, stats = run_distributed_update(
            g, ref.state, batch, seed=7, batch_epoch=1, num_workers=workers
        )
        assert dist_state.labels == seq_state.labels
        assert dist_state.srcs == seq_state.srcs
        assert dist_state.poss == seq_state.poss
        dist_state.validate(g)
        assert stats.total_messages > 0 or workers == 1

    def test_repeated_batches_match_sequential(self, sparse_random):
        seq_graph = sparse_random.copy()
        ref_seq = ReferencePropagator(seq_graph, seed=3)
        ref_seq.propagate(20)
        seq_corrector = CorrectionPropagator(ref_seq)

        dist_graph = sparse_random.copy()
        ref_dist = ReferencePropagator(dist_graph, seed=3)
        ref_dist.propagate(20)
        dist_state = ref_dist.state

        for epoch in range(1, 4):
            batch = random_edit_batch(seq_graph, 6, seed=epoch)
            seq_corrector.apply_batch(batch)
            _, dist_state, _ = run_distributed_update(
                dist_graph, dist_state, batch, seed=3,
                batch_epoch=epoch, num_workers=3,
            )
            assert dist_state.labels == seq_corrector.state.labels

    def test_new_vertex_through_distributed_update(self, cliques_ring):
        batch = EditBatch.build(insertions=[(100, 0), (100, 7)])
        seq_state, _ = self._sequential_twin(cliques_ring, 5, 20, batch)

        g = cliques_ring.copy()
        ref = ReferencePropagator(g, seed=5)
        ref.propagate(20)
        _, dist_state, _ = run_distributed_update(
            g, ref.state, batch, seed=5, batch_epoch=1, num_workers=3
        )
        assert dist_state.labels[100] == seq_state.labels[100]

    def test_message_volume_scales_with_batch_size(self, cliques_ring):
        def volume(batch_size):
            g = cliques_ring.copy()
            ref = ReferencePropagator(g, seed=11)
            ref.propagate(25)
            batch = random_edit_batch(g, batch_size, seed=1)
            _, _, stats = run_distributed_update(
                g, ref.state, batch, seed=11, batch_epoch=1, num_workers=3
            )
            return stats.total_messages

        assert volume(16) > volume(2)
