"""Tests for the query-plane membership index and stable-id assignment."""

import pytest

from repro.core.communities import Cover
from repro.core.tracking import assign_stable_ids
from repro.service.index import MembershipIndex


class TestAssignStableIds:
    def test_first_assignment_is_positional(self):
        new = Cover([{0, 1, 2}, {3, 4}])
        ids, next_id, _ = assign_stable_ids(Cover([]), (), new, 0)
        assert ids == (0, 1)
        assert next_id == 2

    def test_survivors_keep_ids(self):
        old = Cover([{0, 1, 2, 3}, {6, 7, 8}])
        new = Cover([{0, 1, 2, 3, 4}, {6, 7, 8}])
        ids, next_id, _ = assign_stable_ids(old, (5, 9), new, 10)
        # Cover orders by size: new[0]={0..4} matches old[0] (id 5).
        assert set(ids) == {5, 9}
        assert next_id == 10

    def test_birth_draws_fresh_id(self):
        old = Cover([{0, 1, 2}])
        new = Cover([{0, 1, 2}, {7, 8, 9}])
        ids, next_id, _ = assign_stable_ids(old, (0,), new, 1)
        assert 0 in ids and 1 in ids
        assert next_id == 2

    def test_death_retires_id(self):
        old = Cover([{0, 1, 2}, {7, 8, 9}])
        new = Cover([{0, 1, 2}])
        ids, next_id, _ = assign_stable_ids(old, (0, 1), new, 2)
        assert ids == (0,)
        assert next_id == 2  # id 1 retired, never reassigned

    def test_split_keeps_id_on_closest_child(self):
        old = Cover([{0, 1, 2, 3, 4, 5}])
        new = Cover([{0, 1, 2, 3}, {4, 5}])
        ids, next_id, report = assign_stable_ids(old, (7,), new, 8)
        assert report.of_kind("split")
        assert ids[0] == 7      # the larger child continues the identity
        assert ids[1] == 8
        assert next_id == 9

    def test_merge_inherits_from_closest_constituent(self):
        old = Cover([{0, 1, 2, 3}, {5, 6}])
        new = Cover([{0, 1, 2, 3, 5, 6}])
        ids, next_id, report = assign_stable_ids(old, (3, 4), new, 9)
        assert report.of_kind("merged")
        assert ids == (3,)      # closest constituent is the bigger one
        assert next_id == 9

    def test_mismatched_ids_length_rejected(self):
        with pytest.raises(ValueError, match="old_ids"):
            assign_stable_ids(Cover([{0, 1}]), (), Cover([{0, 1}]), 0)


class TestMembershipIndex:
    def test_first_update_returns_none(self):
        index = MembershipIndex()
        assert index.update(Cover([{0, 1, 2}])) is None
        assert index.generation == 1

    def test_queries(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2}, {2, 3}]))
        assert index.communities_of(2) == (0, 1)
        assert index.communities_of(99) == ()
        assert index.members(0) == frozenset({0, 1, 2})
        assert index.overlap(0, 2) == (0,)
        assert index.overlap(0, 3) == ()
        assert index.community_ids() == (0, 1)
        assert len(index) == 2

    def test_unknown_cid_raises(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2}]))
        with pytest.raises(KeyError, match="stable id"):
            index.members(42)

    def test_ids_stable_under_drift(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2, 3}, {7, 8, 9}]))
        before = index.communities_of(7)
        report = index.update(Cover([{0, 1, 2, 3, 4}, {7, 8}]))
        assert report is not None
        assert index.communities_of(7) == before
        assert index.members(before[0]) == frozenset({7, 8})

    def test_dead_id_is_not_reused(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2}, {5, 6, 7}]))
        dead = index.communities_of(5)[0]
        index.update(Cover([{0, 1, 2}]))
        with pytest.raises(KeyError):
            index.members(dead)
        index.update(Cover([{0, 1, 2}, {10, 11, 12}]))
        born = index.communities_of(10)[0]
        assert born != dead

    def test_snapshot_is_a_copy(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2}]))
        snap = index.snapshot()
        snap[99] = frozenset()
        assert 99 not in index.snapshot()

    def test_last_transition_tracks_events(self):
        index = MembershipIndex()
        index.update(Cover([{0, 1, 2, 3}]))
        assert index.last_transition is None
        index.update(Cover([{0, 1, 2, 3, 4, 5}]))
        assert index.last_transition.of_kind("grown")
