"""Tests for the reference rSLPA propagator (Algorithm 1)."""

from collections import Counter

import pytest

from repro.core.labels import NO_SOURCE
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.generators import ring_of_cliques


class TestBasicShape:
    def test_sequence_lengths(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=0)
        propagator.propagate(25)
        for v in cliques_ring.vertices():
            assert len(propagator.state.labels[v]) == 26

    def test_initial_label_is_vertex_id(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=0)
        propagator.propagate(5)
        for v in cliques_ring.vertices():
            assert propagator.state.labels[v][0] == v

    def test_incremental_horizon_extension(self, cliques_ring):
        """propagate(10) twice equals propagate(20) once."""
        a = ReferencePropagator(cliques_ring.copy(), seed=4)
        a.propagate(10)
        a.propagate(10)
        b = ReferencePropagator(cliques_ring.copy(), seed=4)
        b.propagate(20)
        assert a.state.labels == b.state.labels

    def test_zero_iterations_is_noop(self, cliques_ring):
        propagator = ReferencePropagator(cliques_ring, seed=0)
        propagator.propagate(0)
        assert propagator.num_iterations == 0

    def test_rejects_negative_iterations(self, cliques_ring):
        with pytest.raises(ValueError):
            ReferencePropagator(cliques_ring, seed=0).propagate(-1)


class TestInvariants:
    def test_full_validation_with_graph(self, propagated, cliques_ring):
        propagated.state.validate(cliques_ring)

    def test_sources_are_neighbors(self, propagated, cliques_ring):
        state = propagated.state
        for v in cliques_ring.vertices():
            for t in range(1, state.num_iterations + 1):
                src, pos = state.provenance(v, t)
                assert src in cliques_ring.neighbors_view(v)
                assert 0 <= pos < t

    def test_labels_flow_from_sources(self, propagated):
        state = propagated.state
        for v in state.vertices():
            for t in range(1, state.num_iterations + 1):
                src, pos = state.provenance(v, t)
                assert state.labels[v][t] == state.labels[src][pos]


class TestDegreeZero:
    def test_isolated_vertex_keeps_own_label(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        propagator = ReferencePropagator(g, seed=1)
        propagator.propagate(10)
        assert propagator.state.labels[2] == [2] * 11
        assert all(s == NO_SOURCE for s in propagator.state.srcs[2][1:])

    def test_isolated_vertex_never_contaminates(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        propagator = ReferencePropagator(g, seed=1)
        propagator.propagate(10)
        assert 2 not in propagator.state.labels[0]
        assert 2 not in propagator.state.labels[1]


class TestDeterminism:
    def test_same_seed_same_result(self, cliques_ring):
        a = ReferencePropagator(cliques_ring.copy(), seed=7)
        a.propagate(15)
        b = ReferencePropagator(cliques_ring.copy(), seed=7)
        b.propagate(15)
        assert a.state.labels == b.state.labels
        assert a.state.srcs == b.state.srcs

    def test_different_seed_different_result(self, cliques_ring):
        a = ReferencePropagator(cliques_ring.copy(), seed=7)
        a.propagate(15)
        b = ReferencePropagator(cliques_ring.copy(), seed=8)
        b.propagate(15)
        assert a.state.labels != b.state.labels


class TestStatisticalBehaviour:
    def test_source_choice_uniform_over_neighbors(self):
        """Across many seeds, each neighbour is picked src with equal rate.

        Star graph centre has 6 neighbours; iteration-1 picks over 400 seeds
        should hit each leaf ~1/6 of the time.
        """
        g = Graph.from_edges([(0, leaf) for leaf in range(1, 7)])
        counts = Counter()
        for seed in range(400):
            propagator = ReferencePropagator(g.copy(), seed=seed)
            propagator.propagate(1)
            counts[propagator.state.srcs[0][1]] += 1
        for leaf in range(1, 7):
            assert abs(counts[leaf] - 400 / 6) < 35

    def test_concentration_within_clique(self):
        """After enough iterations a clique's sequences concentrate on few
        labels (the 'concentration' property of Section III-A)."""
        g = ring_of_cliques(1, 8)
        propagator = ReferencePropagator(g, seed=3)
        propagator.propagate(60)
        # The union of late labels across the clique should be dominated by
        # a handful of values.
        tail = Counter()
        for v in g.vertices():
            tail.update(propagator.state.labels[v][-20:])
        top2 = sum(c for _, c in tail.most_common(2))
        assert top2 > 0.5 * sum(tail.values())

    def test_trapping_between_sparse_cliques(self, two_cliques_bridge):
        """Labels rarely cross the single bridge ('trapping' property)."""
        propagator = ReferencePropagator(two_cliques_bridge, seed=5)
        propagator.propagate(40)
        left_labels = set()
        for v in range(4):
            left_labels.update(propagator.state.labels[v])
        # Most labels on the left side originate on the left side.
        right_origin = sum(1 for l in left_labels if l >= 4)
        assert right_origin <= len(left_labels) // 2


class TestVertexLifecycle:
    def test_add_vertex_state_padded(self, propagated):
        propagated.graph.add_vertex(999)
        propagated.add_vertex_state(999)
        assert propagated.state.labels[999] == [999] * 41

    def test_add_existing_vertex_state_rejected(self, propagated):
        with pytest.raises(ValueError):
            propagated.add_vertex_state(0)

    def test_sorted_neighbors_cache_invalidation(self, propagated, cliques_ring):
        before = propagated.sorted_neighbors(0)
        cliques_ring.add_edge(0, 25)
        assert propagated.sorted_neighbors(0) == before  # stale cache
        propagated.invalidate_neighbors(0)
        assert 25 in propagated.sorted_neighbors(0)
