"""Tests for the counter-based slot randomness (scalar vs vectorised)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.randomness import (
    draw_keep_uniform,
    draw_position,
    draw_position_array,
    draw_src_index,
    draw_src_index_array,
    draw_src_pos,
    mix64,
    slot_hash,
    slot_hash_array,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = bin(mix64(0) ^ mix64(1)).count("1")
        assert 16 <= flips <= 48

    def test_output_is_64_bit(self):
        for x in [0, 1, 2**63, 2**64 - 1]:
            assert 0 <= mix64(x) < 2**64


class TestSlotHash:
    def test_distinct_fields_distinct_hashes(self):
        base = slot_hash(1, 2, 3, 0)
        assert base != slot_hash(2, 2, 3, 0)
        assert base != slot_hash(1, 3, 3, 0)
        assert base != slot_hash(1, 2, 4, 0)
        assert base != slot_hash(1, 2, 3, 1)

    def test_epoch_gives_fresh_draws(self):
        h0 = slot_hash(7, 5, 10, 0)
        h1 = slot_hash(7, 5, 10, 1)
        assert draw_src_index(h0, 100) != draw_src_index(h1, 100) or draw_position(
            h0, 10
        ) != draw_position(h1, 10)


class TestScalarDraws:
    def test_src_index_in_range(self):
        for deg in (1, 2, 7, 100):
            for v in range(20):
                h = slot_hash(0, v, 1, 0)
                assert 0 <= draw_src_index(h, deg) < deg

    def test_position_in_range(self):
        for t in (1, 2, 9, 50):
            for v in range(20):
                h = slot_hash(0, v, t, 0)
                assert 0 <= draw_position(h, t) < t

    def test_keep_uniform_in_unit_interval(self):
        values = [draw_keep_uniform(slot_hash(0, v, 1, 0)) for v in range(300)]
        assert all(0.0 <= u < 1.0 for u in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.06

    def test_rejects_degenerate_ranges(self):
        with pytest.raises(ValueError):
            draw_src_index(1, 0)
        with pytest.raises(ValueError):
            draw_position(1, 0)

    def test_draw_src_pos_convenience(self):
        idx, pos = draw_src_pos(3, 4, 5, 0, 7)
        h = slot_hash(3, 4, 5, 0)
        assert idx == draw_src_index(h, 7)
        assert pos == draw_position(h, 5)


class TestVectorisedEquality:
    """The heart of the backend-equivalence guarantee."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 2**63 - 1),
        st.integers(1, 500),
        st.integers(1, 300),
        st.integers(0, 5),
    )
    def test_slot_hash_matches(self, seed, n, t, epoch):
        vertices = np.arange(n, dtype=np.int64)
        vectorised = slot_hash_array(seed, vertices, t, epoch)
        scalar = [slot_hash(seed, v, t, epoch) for v in range(n)]
        assert vectorised.tolist() == scalar

    def test_src_index_matches(self):
        vertices = np.arange(200, dtype=np.int64)
        degrees = (vertices % 9) + 1
        h = slot_hash_array(42, vertices, 3, 0)
        vectorised = draw_src_index_array(h, degrees)
        for v in range(200):
            assert vectorised[v] == draw_src_index(
                slot_hash(42, v, 3, 0), int(degrees[v])
            )

    def test_position_matches(self):
        vertices = np.arange(200, dtype=np.int64)
        h = slot_hash_array(42, vertices, 17, 0)
        vectorised = draw_position_array(h, 17)
        for v in range(200):
            assert vectorised[v] == draw_position(slot_hash(42, v, 17, 0), 17)

    def test_position_array_rejects_zero_iteration(self):
        with pytest.raises(ValueError):
            draw_position_array(np.zeros(3, dtype=np.uint64), 0)


class TestUniformity:
    def test_src_index_uniform_over_small_range(self):
        """Chi-square-style bound on a 5-way draw across 5000 slots."""
        counts = [0] * 5
        for v in range(5000):
            counts[draw_src_index(slot_hash(9, v, 2, 0), 5)] += 1
        expected = 1000
        for count in counts:
            assert abs(count - expected) < 120

    def test_position_uniform(self):
        counts = [0] * 10
        for v in range(5000):
            counts[draw_position(slot_hash(9, v, 10, 0), 10)] += 1
        for count in counts:
            assert abs(count - 500) < 90
