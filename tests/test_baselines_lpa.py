"""Tests for the plain LPA baseline."""

from repro.baselines.lpa import lpa_detect
from repro.graph.adjacency import Graph
from repro.graph.generators import planted_partition


class TestLPA:
    def test_communities_are_disjoint(self, cliques_ring):
        cover = lpa_detect(cliques_ring, seed=0)
        assert not cover.overlapping_vertices()

    def test_recovers_planted_partition(self):
        g = planted_partition(3, 20, p_in=0.6, p_out=0.01, seed=2)
        cover = lpa_detect(g, seed=1)
        # Each planted group should map onto one detected community.
        for group in range(3):
            members = set(range(group * 20, (group + 1) * 20))
            best = max((len(members & set(c)) for c in cover), default=0)
            assert best >= 15

    def test_deterministic(self, cliques_ring):
        assert lpa_detect(cliques_ring, seed=3) == lpa_detect(cliques_ring, seed=3)

    def test_isolated_vertices_excluded(self):
        g = Graph.from_edges([(0, 1), (1, 2)], vertices=[9])
        cover = lpa_detect(g, seed=0)
        assert all(9 not in c for c in cover)

    def test_single_edge_graph(self):
        g = Graph.from_edges([(0, 1)])
        cover = lpa_detect(g, seed=0)
        assert len(cover) == 1 and cover[0] == frozenset({0, 1})

    def test_converges_within_cap(self, sparse_random):
        # Must not raise and must produce a partition of non-isolated nodes.
        cover = lpa_detect(sparse_random, seed=5, max_iterations=50)
        covered = cover.covered_vertices()
        for v in sparse_random.vertices():
            if sparse_random.degree(v) > 0:
                # every non-isolated vertex has a label; singleton groups are
                # dropped so it may be uncovered, but never double-covered
                assert len(cover.memberships_of(v)) <= 1
