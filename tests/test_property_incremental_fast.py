"""Property tests: reference vs vectorised corrector under arbitrary edits.

Two drivers push the same edit streams through
:class:`CorrectionPropagator` and :class:`FastCorrectionPropagator` from
the same seed:

* a deterministic 30+-batch torture stream mixing random edits, vertex
  births, and isolation events (the ISSUE's headline property test);
* Hypothesis-generated batch plans, like ``test_property_incremental.py``
  but asserting cross-engine label/src/pos/epoch equality and the full
  ``validate()`` invariant set after every batch.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.incremental import CorrectionPropagator
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels_array import ArrayLabelState
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.workloads.dynamic import random_edit_batch

N = 14
ITERATIONS = 12


def fresh_pair(edges, seed, n=N, iterations=ITERATIONS):
    g_ref = Graph.from_edges(edges, vertices=range(n))
    g_fast = g_ref.copy()
    ref = ReferencePropagator(g_ref, seed=seed)
    ref.propagate(iterations)
    fast_base = ReferencePropagator(g_fast, seed=seed)
    fast_base.propagate(iterations)
    reference = CorrectionPropagator(ref)
    fast = FastCorrectionPropagator(
        g_fast, ArrayLabelState.from_label_state(fast_base.state), seed
    )
    return reference, fast


def assert_engines_agree(reference, fast):
    back = fast.state.to_label_state()
    state = reference.state
    assert back.labels == state.labels
    assert back.srcs == state.srcs
    assert back.poss == state.poss
    assert back.epochs == state.epochs
    assert reference.graph == fast.graph


class TestThirtyBatchTortureStream:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_mixed_stream_stays_bit_identical(self, seed):
        """30+ batches: random edits, vertex births, isolations, rebirths."""
        rng = random.Random(seed)
        start = [(u, v) for u in range(N) for v in range(u + 1, N) if rng.random() < 0.3]
        reference, fast = fresh_pair(start, seed)
        graph = reference.graph
        next_vertex = N
        applied = 0
        while applied < 32:
            kind = rng.randrange(4)
            if kind == 0 and graph.num_edges > 4:
                batch = random_edit_batch(graph, rng.randrange(1, 7), seed=applied)
            elif kind == 1:
                # Vertex birth: attach a brand-new id to 1-3 existing vertices.
                anchors = rng.sample(sorted(graph.vertices()), rng.randrange(1, 4))
                batch = EditBatch.build(
                    insertions=[(next_vertex, a) for a in anchors]
                )
                next_vertex += 1
            elif kind == 2:
                # Isolation: delete every incident edge of one vertex.
                candidates = [v for v in graph.vertices() if graph.degree(v) > 0]
                if not candidates:
                    continue
                victim = rng.choice(candidates)
                batch = EditBatch.build(
                    deletions=[(victim, u) for u in graph.neighbors_view(victim)]
                )
            else:
                # Random insertions among existing ids.
                pool = sorted(graph.vertices())
                raw = {
                    tuple(sorted(rng.sample(pool, 2))) for _ in range(rng.randrange(1, 5))
                }
                ins = [e for e in raw if not graph.has_edge(*e)]
                if not ins:
                    continue
                batch = EditBatch.build(insertions=ins)
            if not batch:
                continue
            r_ref = reference.apply_batch(batch)
            r_fast = fast.apply_batch(batch)
            assert r_ref.touched_slots == r_fast.touched_slots
            assert r_ref.repicked == r_fast.repicked
            assert r_ref.value_changes == r_fast.value_changes
            assert_engines_agree(reference, fast)
            fast.state.validate(fast.graph)
            applied += 1
        assert applied >= 30


edge_strategy = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
    lambda e: e[0] < e[1]
)
edges_strategy = st.sets(edge_strategy, min_size=5, max_size=30)


@st.composite
def batch_plans(draw):
    initial = draw(edges_strategy)
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(edge_strategy, max_size=5),
                st.sets(edge_strategy, max_size=5),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return initial, steps


def realise_batch(graph, inserts, deletes):
    ins = {e for e in inserts if not graph.has_edge(*e)}
    dels = {e for e in deletes if graph.has_edge(*e) and e not in ins}
    return EditBatch(insertions=frozenset(ins), deletions=frozenset(dels))


class TestHypothesisStreams:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batch_plans(), st.integers(0, 3))
    def test_engines_agree_after_every_batch(self, plan, seed):
        initial, steps = plan
        reference, fast = fresh_pair(initial, seed)
        for inserts, deletes in steps:
            batch = realise_batch(reference.graph, inserts, deletes)
            if not batch:
                continue
            reference.apply_batch(batch)
            fast.apply_batch(batch)
            assert_engines_agree(reference, fast)
            fast.state.validate(fast.graph)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges_strategy, st.integers(0, 3))
    def test_batch_then_inverse_agree(self, initial, seed):
        reference, fast = fresh_pair(initial, seed)
        snapshot = reference.graph.copy()
        batch = random_edit_batch(reference.graph, min(6, reference.graph.num_edges), seed=seed)
        reference.apply_batch(batch)
        fast.apply_batch(batch)
        assert_engines_agree(reference, fast)
        reference.apply_batch(batch.inverse())
        fast.apply_batch(batch.inverse())
        assert_engines_agree(reference, fast)
        assert reference.graph == snapshot
        fast.state.validate(fast.graph)
