"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi, ring_of_cliques
from repro.workloads.lfr import LFRParams, generate_lfr


@pytest.fixture
def triangle() -> Graph:
    """The smallest interesting graph: a 3-cycle."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_cliques_bridge() -> Graph:
    """Two 4-cliques joined by one bridge edge — canonical 2-community graph."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    edges.append((0, 4))
    return Graph.from_edges(edges)


@pytest.fixture
def cliques_ring() -> Graph:
    """Five 6-cliques in a ring (30 vertices, clear communities)."""
    return ring_of_cliques(5, 6)


@pytest.fixture
def sparse_random() -> Graph:
    """A 60-vertex sparse random graph (may contain isolated vertices)."""
    return erdos_renyi(60, 0.06, seed=17)


@pytest.fixture
def propagated(cliques_ring):
    """A reference propagator run for 40 iterations on the clique ring."""
    propagator = ReferencePropagator(cliques_ring, seed=11)
    propagator.propagate(40)
    return propagator


@pytest.fixture(scope="session")
def small_lfr():
    """A session-cached small LFR instance with overlap (n=250)."""
    return generate_lfr(
        LFRParams(n=250, avg_degree=10, max_degree=24, mu=0.1,
                  overlap_fraction=0.1, overlap_membership=2),
        seed=5,
    )
