"""Tests for community evolution tracking."""

import pytest

from repro.core.communities import Cover
from repro.core.detector import RSLPADetector
from repro.core.tracking import CommunityTracker, match_covers
from repro.graph.edits import EditBatch
from repro.graph.generators import ring_of_cliques


class TestMatchCovers:
    def test_identical_covers_all_continued(self):
        cover = Cover([{0, 1, 2}, {3, 4, 5}])
        report = match_covers(cover, cover)
        assert len(report.of_kind("continued")) == 2
        assert report.continuity() == pytest.approx(1.0)

    def test_birth(self):
        old = Cover([{0, 1, 2}])
        new = Cover([{0, 1, 2}, {7, 8, 9}])
        report = match_covers(old, new)
        assert report.num_born == 1
        assert report.num_died == 0

    def test_death(self):
        old = Cover([{0, 1, 2}, {7, 8, 9}])
        new = Cover([{0, 1, 2}])
        report = match_covers(old, new)
        assert report.num_died == 1

    def test_growth_and_shrinkage(self):
        old = Cover([{0, 1, 2, 3}, {10, 11, 12, 13}])
        new = Cover([{0, 1, 2, 3, 4, 5}, {10, 11}])
        report = match_covers(old, new, drift_tolerance=0.1)
        assert len(report.of_kind("grown")) == 1
        assert len(report.of_kind("shrunk")) == 1

    def test_split(self):
        old = Cover([set(range(10))])
        new = Cover([{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}])
        report = match_covers(old, new)
        splits = report.of_kind("split")
        assert len(splits) == 1
        assert len(splits[0].after) == 2

    def test_merge(self):
        old = Cover([{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}])
        new = Cover([set(range(10))])
        report = match_covers(old, new)
        merges = report.of_kind("merged")
        assert len(merges) == 1
        assert len(merges[0].before) == 2

    def test_unrelated_covers_all_born_and_died(self):
        old = Cover([{0, 1, 2}])
        new = Cover([{10, 11, 12}])
        report = match_covers(old, new)
        assert report.num_born == 1
        assert report.num_died == 1
        assert report.continuity() == 0.0

    def test_threshold_gates_matching(self):
        old = Cover([{0, 1, 2, 3, 4, 5, 6, 7}])
        new = Cover([{0, 10, 11, 12, 13, 14, 15, 16}])  # jaccard = 1/15
        strict = match_covers(old, new, match_threshold=0.3)
        assert strict.num_born == 1 and strict.num_died == 1
        loose = match_covers(old, new, match_threshold=0.05)
        assert loose.num_born == 0

    def test_summary_format(self):
        report = match_covers(Cover([{0, 1}]), Cover([{0, 1}]))
        assert report.summary() == "continued=1"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            match_covers(Cover([]), Cover([]), match_threshold=0.0)

    def test_rejects_bad_drift(self):
        with pytest.raises(ValueError):
            match_covers(Cover([]), Cover([]), drift_tolerance=1.0)


class TestCommunityTracker:
    def test_first_observation_returns_none(self):
        tracker = CommunityTracker()
        assert tracker.observe(Cover([{0, 1}])) is None
        assert tracker.current == Cover([{0, 1}])

    def test_reports_accumulate(self):
        tracker = CommunityTracker()
        tracker.observe(Cover([{0, 1}]))
        tracker.observe(Cover([{0, 1}]))
        tracker.observe(Cover([{0, 1, 2}]))
        assert len(tracker.reports) == 2
        assert tracker.reports[0].summary() == "continued=1"

    def test_lifetime_of_vertex(self):
        tracker = CommunityTracker()
        tracker.observe(Cover([{0, 1}]))
        tracker.observe(Cover([{0, 1}, {0, 2}]))
        tracker.observe(Cover([{1, 2}]))
        assert tracker.lifetime_of(0) == [(0, 1), (1, 2), (2, 0)]

    def test_end_to_end_with_detector(self):
        """Merging two cliques shows up as a merge event."""
        graph = ring_of_cliques(3, 5)
        detector = RSLPADetector(graph, seed=4, iterations=80, tau_step=0.005)
        detector.fit()
        tracker = CommunityTracker(match_threshold=0.2)
        tracker.observe(detector.communities())
        cross = [
            (u, v)
            for u in range(5)
            for v in range(5, 10)
            if not detector.graph.has_edge(u, v)
        ]
        detector.update(EditBatch.build(insertions=cross))
        report = tracker.observe(detector.communities())
        kinds = {e.kind for e in report.events}
        assert "merged" in kinds or "grown" in kinds or "died" in kinds
