"""Tests for the Section IV-D complexity model (Eqs 3-12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complexity import (
    best_case_updates,
    change_probability,
    change_probability_paper_verbatim,
    expected_updates,
    survival_probabilities,
    worst_case_updates,
)


class TestChangeProbability:
    def test_no_edits_is_zero(self):
        assert change_probability(1000, 0, 0) == 0.0

    def test_delete_everything_is_one(self):
        assert change_probability(100, 100, 0) == 1.0

    def test_small_batch_small_pc(self):
        """The corrected Eq. 3: one edit pair on a large graph is tiny."""
        pc = change_probability(1_000_000, 1, 1)
        assert pc < 1e-5

    def test_paper_verbatim_is_degenerate(self):
        """The printed formula gives pc ~= 1 even for tiny batches,
        which is the documented typo."""
        verbatim = change_probability_paper_verbatim(1_000_000, 1, 1)
        assert verbatim > 0.99

    def test_monotone_in_deletions(self):
        values = [change_probability(1000, md, 10) for md in (0, 10, 100, 500)]
        assert values == sorted(values)

    def test_monotone_in_insertions(self):
        values = [change_probability(1000, 10, ma) for ma in (0, 10, 100, 1000)]
        assert values == sorted(values)

    def test_rejects_more_deletions_than_edges(self):
        with pytest.raises(ValueError):
            change_probability(10, 11, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            change_probability(10, -1, 0)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(1, 10_000), st.integers(0, 100), st.integers(0, 100))
    def test_property_is_probability(self, e, md, ma):
        md = min(md, e)
        assert 0.0 <= change_probability(e, md, ma) <= 1.0


class TestSurvival:
    def test_q0_is_one(self):
        assert survival_probabilities(0.3, 5)[0] == 1.0

    def test_q1_is_one_minus_pc(self):
        assert survival_probabilities(0.3, 5)[1] == pytest.approx(0.7)

    def test_recursion_formula(self):
        q = survival_probabilities(0.2, 10)
        for t in range(1, 11):
            assert q[t] == pytest.approx(q[t - 1] * (1 - 0.2 / t))

    def test_monotone_decreasing(self):
        q = survival_probabilities(0.4, 50)
        assert all(q[t] <= q[t - 1] + 1e-15 for t in range(1, 51))

    def test_eq9_upper_bound(self):
        """Q(t) <= Q(1) = 1 - pc for t >= 1 (Eq. 9)."""
        q = survival_probabilities(0.25, 40)
        assert all(qt <= 1 - 0.25 + 1e-12 for qt in q[1:])

    def test_eq11_lower_bound(self):
        """Q(t) >= (1 - pc)^t (Eq. 11)."""
        pc = 0.25
        q = survival_probabilities(pc, 40)
        for t in range(1, 41):
            assert q[t] >= (1 - pc) ** t - 1e-12

    def test_pc_zero_all_survive(self):
        assert survival_probabilities(0.0, 10) == [1.0] * 11

    def test_rejects_bad_pc(self):
        with pytest.raises(ValueError):
            survival_probabilities(1.5, 3)


class TestBounds:
    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(0.0, 1.0),
        st.integers(1, 200),
        st.integers(1, 5000),
    )
    def test_property_ordering(self, pc, t, n):
        """best <= expected <= worst for all parameters (Eqs 8, 10, 12)."""
        best = best_case_updates(n, t, pc)
        expected = expected_updates(n, t, pc)
        worst = worst_case_updates(n, t, pc)
        assert best <= expected + 1e-6
        assert expected <= worst + 1e-6

    def test_pc_zero_everything_zero(self):
        assert best_case_updates(100, 10, 0.0) == 0.0
        assert expected_updates(100, 10, 0.0) == pytest.approx(0.0)
        assert worst_case_updates(100, 10, 0.0) == 0.0

    def test_pc_one_everything_maximal(self):
        n, t = 100, 10
        assert best_case_updates(n, t, 1.0) == t * n
        assert expected_updates(n, t, 1.0) == pytest.approx(t * n)
        assert worst_case_updates(n, t, 1.0) == pytest.approx(t * n)

    def test_expected_matches_closed_form(self):
        """η̂ = T|V| - |V| Σ Q(t) computed two ways."""
        n, t, pc = 50, 20, 0.1
        q = survival_probabilities(pc, t)
        assert expected_updates(n, t, pc) == pytest.approx(
            t * n - n * sum(q[1:])
        )

    def test_worst_case_geometric_sum(self):
        n, t, pc = 10, 5, 0.5
        geo = sum((1 - pc) ** k for k in range(1, t + 1))
        assert worst_case_updates(n, t, pc) == pytest.approx(t * n - n * geo)

    def test_sublinearity_shape(self):
        """η̂ grows sublinearly in batch size — Figure 9's key observation."""
        e = 100_000
        etas = []
        for batch in (100, 1000, 10_000):
            pc = change_probability(e, batch // 2, batch // 2)
            etas.append(expected_updates(10_000, 100, pc))
        # 10x batch -> much less than 10x updates at the upper end.
        assert etas[2] < 10 * etas[1]
        assert etas[1] < 10 * etas[0]
