"""Tests for the vectorised Correction Propagation engine.

The headline contract, mirroring PR 1's static-engine guarantee:
:class:`FastCorrectionPropagator` is **bit-identical** to the reference
:class:`CorrectionPropagator` — labels, provenance, positions, epochs, and
every :class:`UpdateReport` number — for any seed, batch, and batch epoch.
Scenario coverage here; arbitrary edit streams in
``test_property_incremental_fast.py``.
"""

import numpy as np
import pytest

from repro.core.fast import FastPropagator
from repro.core.incremental import CorrectionPropagator, UpdateReport
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels_array import ArrayLabelState
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch
from repro.graph.generators import ring_of_cliques
from repro.workloads.dynamic import random_edit_batch

REPORT_FIELDS = (
    "batch_size",
    "num_inserted",
    "num_deleted",
    "repicked",
    "keep_lotteries",
    "lottery_switches",
    "cascade_corrections",
    "value_changes",
)


def make_pair(graph: Graph, seed: int = 0, iterations: int = 25):
    """The same propagated start under both correctors (separate graphs)."""
    g_ref, g_fast = graph.copy(), graph.copy()
    ref = ReferencePropagator(g_ref, seed=seed)
    ref.propagate(iterations)
    fast_static = FastPropagator(CSRGraph.from_graph(g_fast), seed=seed)
    fast_static.propagate(iterations)
    reference = CorrectionPropagator(ref)
    fast = FastCorrectionPropagator.from_fast_propagator(fast_static, g_fast)
    return reference, fast


def assert_bit_identical(reference: CorrectionPropagator, fast: FastCorrectionPropagator):
    back = fast.state.to_label_state()
    state = reference.state
    assert back.labels == state.labels
    assert back.srcs == state.srcs
    assert back.poss == state.poss
    assert back.epochs == state.epochs
    assert back.receivers == state.receivers
    assert reference.graph == fast.graph


def assert_reports_equal(a: UpdateReport, b: UpdateReport):
    for name in REPORT_FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.touched_slots == b.touched_slots
    assert a.touched_labels == b.touched_labels


def apply_both(reference, fast, batch):
    r_ref = reference.apply_batch(batch)
    r_fast = fast.apply_batch(batch)
    assert_reports_equal(r_ref, r_fast)
    assert_bit_identical(reference, fast)
    return r_ref, r_fast


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_insertions(self, cliques_ring, seed):
        reference, fast = make_pair(cliques_ring, seed=seed)
        apply_both(reference, fast, EditBatch.build(insertions=[(0, 12), (3, 20)]))
        fast.state.validate(fast.graph)

    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_deletions(self, cliques_ring, seed):
        reference, fast = make_pair(cliques_ring, seed=seed)
        apply_both(reference, fast, EditBatch.build(deletions=[(0, 1), (6, 7)]))
        fast.state.validate(fast.graph)

    def test_mixed_batches_in_sequence(self, sparse_random):
        reference, fast = make_pair(sparse_random, seed=2, iterations=20)
        for step in range(8):
            batch = random_edit_batch(reference.graph, 8, seed=step)
            apply_both(reference, fast, batch)
        fast.state.validate(fast.graph)

    def test_batch_epochs_redraw_lotteries(self, cliques_ring):
        # Apply a batch and its inverse repeatedly: the batch epoch must
        # advance identically, so every redraw agrees.
        reference, fast = make_pair(cliques_ring, seed=5)
        batch = EditBatch.build(insertions=[(0, 12)])
        for _ in range(3):
            apply_both(reference, fast, batch)
            apply_both(reference, fast, batch.inverse())
        assert fast.batch_epoch == reference.batch_epoch == 6

    def test_vertex_birth(self, cliques_ring):
        reference, fast = make_pair(cliques_ring, seed=3)
        batch = EditBatch.build(insertions=[(30, 0), (30, 31), (5, 31)])
        apply_both(reference, fast, batch)
        fast.state.validate(fast.graph)
        assert fast.state.has_vertex(31)

    def test_isolation_falls_back_to_own_label(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        reference, fast = make_pair(g, seed=7, iterations=15)
        apply_both(reference, fast, EditBatch.build(deletions=[(2, 3)]))
        assert (fast.state.labels[:, 3] == 3).all()
        fast.state.validate(fast.graph)

    def test_remove_vertex(self, cliques_ring):
        reference, fast = make_pair(cliques_ring, seed=4)
        r_ref = reference.remove_vertex(7)
        r_fast = fast.remove_vertex(7)
        assert_reports_equal(r_ref, r_fast)
        assert_bit_identical(reference, fast)
        assert not fast.state.has_vertex(7)
        fast.state.validate(fast.graph)

    def test_removed_vertex_can_be_reborn(self, cliques_ring):
        reference, fast = make_pair(cliques_ring, seed=4)
        reference.remove_vertex(7)
        fast.remove_vertex(7)
        batch = EditBatch.build(insertions=[(7, 0), (7, 12)])
        apply_both(reference, fast, batch)
        fast.state.validate(fast.graph)

    def test_forced_reindex_mid_stream(self, sparse_random, monkeypatch):
        # Shrink the overlay budget so the stream crosses several rebuilds.
        monkeypatch.setattr(
            ArrayLabelState,
            "needs_reindex",
            lambda self: (self._extra_count + self._dead_static) > 8,
        )
        reference, fast = make_pair(sparse_random, seed=6, iterations=15)
        for step in range(12):
            batch = random_edit_batch(reference.graph, 6, seed=100 + step)
            apply_both(reference, fast, batch)
        fast.state.validate(fast.graph)


class TestContract:
    def test_rejects_id_gap_before_mutating(self, cliques_ring):
        _, fast = make_pair(cliques_ring, seed=1)
        snapshot = fast.graph.copy()
        with pytest.raises(ValueError, match="contiguous"):
            fast.apply_batch(EditBatch.build(insertions=[(0, 99)]))
        assert fast.graph == snapshot  # clean failure, nothing mutated

    def test_rejects_invalid_batch_before_mutating(self, cliques_ring):
        _, fast = make_pair(cliques_ring, seed=1)
        snapshot = fast.graph.copy()
        with pytest.raises(ValueError):
            fast.apply_batch(EditBatch.build(deletions=[(0, 29)]))
        assert fast.graph == snapshot

    def test_state_graph_mismatch_rejected(self, cliques_ring):
        fast_static = FastPropagator(CSRGraph.from_graph(cliques_ring), seed=0)
        fast_static.propagate(5)
        other = ring_of_cliques(4, 5)
        with pytest.raises(ValueError, match="match"):
            FastCorrectionPropagator(other, fast_static.to_array_state(), 0)

    def test_empty_batch_is_a_noop(self, cliques_ring):
        reference, fast = make_pair(cliques_ring, seed=1)
        before = fast.state.labels.copy()
        apply_both(reference, fast, EditBatch.empty())
        assert np.array_equal(fast.state.labels, before)


class TestTrackSlots:
    def test_counting_mode_matches_set_mode(self, sparse_random):
        g_set, g_count = sparse_random.copy(), sparse_random.copy()
        set_pair = make_pair(g_set, seed=2, iterations=15)[1]
        count_static = FastPropagator(CSRGraph.from_graph(g_count), seed=2)
        count_static.propagate(15)
        counting = FastCorrectionPropagator.from_fast_propagator(
            count_static, g_count, track_slots=False
        )
        for step in range(5):
            batch = random_edit_batch(set_pair.graph, 7, seed=step)
            r_set = set_pair.apply_batch(batch)
            r_count = counting.apply_batch(batch)
            assert r_count.touched_slots == set()
            assert r_count.touched_labels == r_set.touched_labels

    def test_reference_counting_mode_matches_too(self, sparse_random):
        tracked = CorrectionPropagator(
            ReferencePropagator(sparse_random.copy(), seed=3)
        )
        tracked.propagator.propagate(15)
        counting = CorrectionPropagator(
            ReferencePropagator(sparse_random.copy(), seed=3), track_slots=False
        )
        counting.propagator.propagate(15)
        for step in range(5):
            batch = random_edit_batch(tracked.graph, 7, seed=40 + step)
            r_tracked = tracked.apply_batch(batch)
            r_counting = counting.apply_batch(batch)
            assert r_counting.touched_slots == set()
            assert r_counting.touched_labels == r_tracked.touched_labels


class TestDetectorIntegration:
    def test_fast_backend_updates_bit_identical_to_reference(self, cliques_ring):
        from repro.core.detector import RSLPADetector

        fast = RSLPADetector(cliques_ring, seed=3, iterations=25, backend="fast").fit()
        ref = RSLPADetector(
            cliques_ring, seed=3, iterations=25, backend="reference"
        ).fit()
        assert isinstance(fast._corrector, FastCorrectionPropagator)
        assert isinstance(ref._corrector, CorrectionPropagator)
        for step in range(4):
            batch = random_edit_batch(fast.graph, 6, seed=step)
            r_fast = fast.update(batch)
            r_ref = ref.update(batch)
            assert_reports_equal(r_ref, r_fast)
            assert fast.label_state.labels == ref.label_state.labels
            assert fast.label_state.epochs == ref.label_state.epochs
        assert fast.communities() == ref.communities()

    def test_array_state_exposed_on_fast_path_only(self, cliques_ring):
        from repro.core.detector import RSLPADetector

        fast = RSLPADetector(cliques_ring, seed=1, iterations=10, backend="fast").fit()
        ref = RSLPADetector(
            cliques_ring, seed=1, iterations=10, backend="reference"
        ).fit()
        assert isinstance(fast.array_state, ArrayLabelState)
        assert ref.array_state is None

    def test_auto_backend_downgrades_on_gap_ids(self, cliques_ring):
        """auto must keep the pre-PR contract: a batch creating a vertex
        with a non-contiguous id succeeds (reference fallback), and stays
        bit-identical to a pure-reference detector across the switch."""
        from repro.core.detector import RSLPADetector

        auto = RSLPADetector(cliques_ring, seed=3, iterations=20, backend="auto").fit()
        ref = RSLPADetector(
            cliques_ring, seed=3, iterations=20, backend="reference"
        ).fit()
        assert isinstance(auto._corrector, FastCorrectionPropagator)
        batches = [
            EditBatch.build(insertions=[(0, 12)]),          # fast path
            EditBatch.build(insertions=[(5, 100)]),         # gap id: downgrade
            EditBatch.build(deletions=[(0, 1)], insertions=[(100, 7)]),
        ]
        for batch in batches:
            r_auto = auto.update(batch)
            r_ref = ref.update(batch)
            assert_reports_equal(r_ref, r_auto)
            assert auto.label_state.labels == ref.label_state.labels
            assert auto.label_state.epochs == ref.label_state.epochs
        assert isinstance(auto._corrector, CorrectionPropagator)
        assert auto.array_state is None
        auto.label_state.validate(auto.graph)

    def test_fast_backend_keeps_hard_error_on_gap_ids(self, cliques_ring):
        from repro.core.detector import RSLPADetector

        fast = RSLPADetector(cliques_ring, seed=3, iterations=10, backend="fast").fit()
        with pytest.raises(ValueError, match="contiguous"):
            fast.update(EditBatch.build(insertions=[(5, 100)]))
