"""Tests for omega index, overlapping F1, conductance, coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.graph.generators import ring_of_cliques
from repro.metrics.quality import (
    average_conductance,
    conductance,
    coverage,
    omega_index,
    overlapping_f1,
    pairwise_cooccurrence_counts,
)


class TestPairwiseCounts:
    def test_counts_multiplicity(self):
        cover = [{0, 1, 2}, {0, 1}]
        counts = pairwise_cooccurrence_counts(cover)
        assert counts[frozenset({0, 1})] == 2
        assert counts[frozenset({0, 2})] == 1

    def test_empty_cover(self):
        assert pairwise_cooccurrence_counts([]) == {}


class TestOmegaIndex:
    def test_identical_covers(self):
        cover = [{0, 1, 2}, {3, 4}]
        assert omega_index(cover, cover, 6) == pytest.approx(1.0)

    def test_identical_overlapping_covers(self):
        cover = [{0, 1, 2}, {2, 3, 4}]
        assert omega_index(cover, cover, 5) == pytest.approx(1.0)

    def test_disagreement_scores_below_one(self):
        a = [{0, 1, 2, 3}]
        b = [{0, 1}, {2, 3}]
        assert omega_index(a, b, 4) < 1.0

    def test_multiplicity_matters(self):
        """Pairs co-occurring twice in one cover, once in the other, disagree."""
        a = [{0, 1}, {0, 1}]
        b = [{0, 1}]
        assert omega_index(a, b, 4) < 1.0

    def test_rejects_tiny_universe(self):
        with pytest.raises(ValueError):
            omega_index([{0}], [{0}], 1)


class TestOverlappingF1:
    def test_identical(self):
        cover = [{0, 1, 2}, {3, 4}]
        assert overlapping_f1(cover, cover) == pytest.approx(1.0)

    def test_disjoint(self):
        assert overlapping_f1([{0, 1}], [{2, 3}]) == 0.0

    def test_partial(self):
        detected = [{0, 1, 2, 9}]
        truth = [{0, 1, 2, 3}]
        # F1 = 2 * (3/4) * (3/4) / (3/2) = 0.75 both directions.
        assert overlapping_f1(detected, truth) == pytest.approx(0.75)

    def test_both_empty(self):
        assert overlapping_f1([], []) == 1.0

    def test_one_empty(self):
        assert overlapping_f1([{0}], []) == 0.0

    def test_extra_noise_community_penalised(self):
        truth = [{0, 1, 2, 3}]
        clean = [{0, 1, 2, 3}]
        noisy = [{0, 1, 2, 3}, {7, 8}]
        assert overlapping_f1(noisy, truth) < overlapping_f1(clean, truth)


class TestConductance:
    def test_isolated_clique_is_zero(self):
        g = ring_of_cliques(1, 5)
        g.add_edge(100, 101)  # disconnected remainder, so the set is proper
        assert conductance(g, set(range(5))) == 0.0

    def test_community_in_ring_is_low(self):
        g = ring_of_cliques(4, 5)
        # one clique: 2 bridge edges leave it, internal volume 5*4+2
        assert conductance(g, set(range(5))) < 0.15

    def test_random_half_is_high(self):
        g = ring_of_cliques(4, 5)
        scattered = {0, 5, 10, 15, 2, 7}
        assert conductance(g, scattered) > 0.5

    def test_degenerate_sets(self):
        g = ring_of_cliques(2, 3)
        assert conductance(g, set()) == 1.0
        assert conductance(g, set(g.vertices())) == 1.0

    def test_average_conductance(self):
        g = ring_of_cliques(3, 4)
        cover = [set(range(4)), set(range(4, 8)), set(range(8, 12))]
        assert average_conductance(g, cover) == pytest.approx(
            sum(conductance(g, c) for c in cover) / 3
        )

    def test_average_conductance_empty_cover(self):
        assert average_conductance(Graph.from_edges([(0, 1)]), []) == 1.0


class TestCoverage:
    def test_full(self):
        assert coverage([{0, 1}, {2}], 3) == 1.0

    def test_partial(self):
        assert coverage([{0, 1}], 4) == 0.5

    def test_overlap_not_double_counted(self):
        assert coverage([{0, 1}, {1, 2}], 4) == 0.75

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            coverage([{0}], 0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sets(st.integers(0, 9), min_size=1, max_size=10), min_size=1, max_size=3)
)
def test_property_omega_identity(cover):
    assert omega_index(cover, cover, 10) == pytest.approx(1.0)
