"""Tests for the Cover datatype."""

import pytest

from repro.core.communities import Cover


class TestConstruction:
    def test_drops_empty_communities(self):
        cover = Cover([{0, 1}, set(), {2}])
        assert len(cover) == 2

    def test_canonical_order_by_size(self):
        cover = Cover([{5}, {0, 1, 2}, {3, 4}])
        assert [len(c) for c in cover] == [3, 2, 1]

    def test_bool(self):
        assert not Cover([])
        assert Cover([{1, 2}])


class TestMembership:
    def test_memberships_of(self):
        cover = Cover([{0, 1, 2}, {2, 3}])
        assert len(cover.memberships_of(2)) == 2
        assert cover.memberships_of(99) == ()

    def test_overlapping_vertices(self):
        cover = Cover([{0, 1, 2}, {2, 3}, {3, 4}])
        assert cover.overlapping_vertices() == frozenset({2, 3})

    def test_covered_vertices(self):
        cover = Cover([{0, 1}, {5}])
        assert cover.covered_vertices() == frozenset({0, 1, 5})

    def test_membership_counts(self):
        cover = Cover([{0, 1}, {1, 2}])
        assert cover.membership_counts() == {0: 1, 1: 2, 2: 1}


class TestDerived:
    def test_sizes(self):
        assert Cover([{0, 1, 2}, {3, 4}]).sizes() == [3, 2]

    def test_size_entropy_delegates(self):
        import math

        cover = Cover([{0, 1}, {2, 3}])
        assert cover.size_entropy(4) == pytest.approx(math.log(2))

    def test_equality_as_multiset(self):
        a = Cover([{0, 1}, {2, 3}])
        b = Cover([{3, 2}, {1, 0}])
        assert a == b
        c = Cover([{0, 1}, {2, 3}, {2, 3}])
        assert a != c

    def test_getitem_and_iter(self):
        cover = Cover([{0, 1}])
        assert cover[0] == frozenset({0, 1})
        assert list(cover) == [frozenset({0, 1})]


class TestTransforms:
    def test_from_membership(self):
        cover = Cover.from_membership({0: [10], 1: [10, 20], 2: [20]})
        assert cover == Cover([{0, 1}, {1, 2}])

    def test_restricted_to(self):
        cover = Cover([{0, 1, 2}, {3, 4}])
        restricted = cover.restricted_to({0, 1, 3})
        assert restricted == Cover([{0, 1}, {3}])

    def test_restriction_drops_emptied(self):
        cover = Cover([{0, 1}, {5, 6}])
        assert len(cover.restricted_to({0, 1})) == 1

    def test_without_smaller_than(self):
        cover = Cover([{0, 1, 2}, {3}, {4, 5}])
        assert len(cover.without_smaller_than(2)) == 2

    def test_as_sets_returns_mutable_copies(self):
        cover = Cover([{0, 1}])
        sets = cover.as_sets()
        sets[0].add(9)
        assert cover[0] == frozenset({0, 1})
