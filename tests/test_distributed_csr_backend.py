"""Dict-backed vs CSR-backed worker shards: identical results, both engines.

The acceptance oracle for the shared CSR substrate at the distributed
layer: BSP runs over :class:`CSRShard` arrays must be bit-identical to runs
over the dict-of-list shards, on the in-process engine and on the true
multiprocess backend, for a realistic LFR workload.
"""

from functools import partial

import pytest

from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import run_distributed_rslpa, run_distributed_slpa
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import RSLPAPropagationProgram, SLPAPropagationProgram
from repro.distributed.worker import CSRShard, build_csr_shards, build_shards
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_of_cliques
from repro.graph.partition import ContiguousPartitioner, HashPartitioner


class TestShardParity:
    def test_csr_shards_expose_same_neighbour_sequences(self, small_lfr):
        graph = small_lfr.graph
        part = HashPartitioner(4)
        dict_shards = build_shards(graph, part)
        csr_shards = build_csr_shards(graph, part)
        for dshard, cshard in zip(dict_shards, csr_shards):
            assert isinstance(cshard, CSRShard)
            assert dshard.vertices == cshard.vertices
            assert dshard.local_edges() == cshard.local_edges()
            for v in dshard.vertices:
                assert cshard.neighbors(v).tolist() == list(dshard.neighbors(v))
                assert cshard.degree(v) == dshard.degree(v)

    def test_csr_shards_accept_prebuilt_snapshot(self, cliques_ring):
        part = ContiguousPartitioner(3, cliques_ring.num_vertices)
        from_graph = build_csr_shards(cliques_ring, part)
        from_snapshot = build_csr_shards(CSRGraph.from_graph(cliques_ring), part)
        for a, b in zip(from_graph, from_snapshot):
            assert a.vertices == b.vertices
            assert a.indices.tolist() == b.indices.tolist()


class TestInProcessEquality:
    """In-process BSP: dict and CSR shards agree on an LFR workload."""

    def test_rslpa_identical_on_lfr(self, small_lfr):
        graph = small_lfr.graph
        dict_state, dict_stats = run_distributed_rslpa(
            graph.copy(), seed=7, iterations=20, num_workers=4
        )
        csr_state, csr_stats = run_distributed_rslpa(
            graph.copy(), seed=7, iterations=20, num_workers=4,
            shard_backend="csr",
        )
        assert csr_state.labels == dict_state.labels
        assert csr_state.srcs == dict_state.srcs
        assert csr_state.poss == dict_state.poss
        assert csr_state.receivers == dict_state.receivers
        assert csr_stats.total_messages == dict_stats.total_messages

    def test_rslpa_csr_matches_sequential_reference(self, small_lfr):
        graph = small_lfr.graph
        state, _ = run_distributed_rslpa(
            graph.copy(), seed=7, iterations=20, num_workers=4,
            shard_backend="csr",
        )
        ref = ReferencePropagator(graph.copy(), seed=7)
        ref.propagate(20)
        assert state.labels == ref.state.labels

    def test_slpa_identical_on_lfr(self, small_lfr):
        graph = small_lfr.graph
        dict_mem, _ = run_distributed_slpa(
            graph.copy(), seed=11, iterations=12, num_workers=4
        )
        csr_mem, _ = run_distributed_slpa(
            graph.copy(), seed=11, iterations=12, num_workers=4,
            shard_backend="csr",
        )
        assert csr_mem == dict_mem

    def test_results_are_plain_python_ints(self, small_lfr):
        """CSR arrays must not leak numpy scalars into collected state."""
        state, _ = run_distributed_rslpa(
            small_lfr.graph.copy(), seed=7, iterations=5, num_workers=3,
            shard_backend="csr",
        )
        sample = next(iter(state.labels))
        assert all(type(x) is int for x in state.labels[sample])
        assert all(type(x) is int for x in state.srcs[sample])

    def test_invalid_backend_rejected(self, cliques_ring):
        with pytest.raises(ValueError, match="shard_backend"):
            run_distributed_rslpa(cliques_ring, shard_backend="arrow")

    def test_invalid_backend_rejected_on_csr_input(self, cliques_ring):
        with pytest.raises(ValueError, match="shard_backend"):
            run_distributed_rslpa(
                CSRGraph.from_graph(cliques_ring), shard_backend="arrow"
            )


class TestUpdateAtomicity:
    """A rejected CSR update must leave the caller's graph/state untouched."""

    def test_non_contiguous_batch_fails_before_mutation(self):
        from repro.distributed.cluster import run_distributed_update
        from repro.graph.adjacency import Graph
        from repro.graph.edits import EditBatch

        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        state, _ = run_distributed_rslpa(graph.copy(), seed=1, iterations=6)
        batch = EditBatch.build(insertions=[(0, 100)])
        edges_before = set(graph.edges())
        vertices_before = sorted(graph.vertices())
        with pytest.raises(ValueError, match="contiguous"):
            run_distributed_update(
                graph, state, batch, seed=1, shard_backend="csr"
            )
        assert set(graph.edges()) == edges_before
        assert sorted(graph.vertices()) == vertices_before
        assert not state.has_vertex(100)


class TestMultiprocessEquality:
    """The true-parallelism backend agrees across shard storages."""

    def _run(self, shards, part, factory):
        with MultiprocessBSPEngine(shards, part, factory) as engine:
            engine.run()
            results = engine.collect()
        merged = {}
        for result in results:
            merged.update(result)
        return merged

    def test_rslpa_multiprocess_dict_vs_csr(self):
        graph = ring_of_cliques(4, 5)
        part = HashPartitioner(3)
        factory = partial(RSLPAPropagationProgram, seed=5, iterations=12)
        dict_merged = self._run(build_shards(graph, part), part, factory)
        csr_merged = self._run(build_csr_shards(graph, part), part, factory)
        assert csr_merged == dict_merged

    def test_slpa_multiprocess_dict_vs_csr(self):
        graph = ring_of_cliques(3, 5)
        part = HashPartitioner(3)
        factory = partial(SLPAPropagationProgram, seed=2, iterations=10)
        dict_merged = self._run(build_shards(graph, part), part, factory)
        csr_merged = self._run(build_csr_shards(graph, part), part, factory)
        assert csr_merged == dict_merged
