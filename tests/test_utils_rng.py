"""Tests for repro.utils.rng — deterministic stream derivation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngFactory, derive_rng, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_differs_across_keys(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1) != derive_seed(2)

    def test_no_positional_collision(self):
        # (1, 23) must not collide with (12, 3) even though the digits match.
        assert derive_seed(1, 23) != derive_seed(12, 3)

    def test_string_int_disambiguation(self):
        assert derive_seed("1") != derive_seed(1)

    def test_bool_int_disambiguation(self):
        assert derive_seed(True) != derive_seed(1)

    def test_bytes_supported(self):
        assert isinstance(derive_seed(b"xyz"), int)

    def test_float_supported(self):
        assert derive_seed(0.5) != derive_seed(0.25)

    def test_none_supported(self):
        assert isinstance(derive_seed(None), int)

    def test_rejects_unsupported_type(self):
        with pytest.raises(TypeError, match="unsupported RNG key"):
            derive_seed([1, 2])

    def test_result_is_64_bit(self):
        for key in range(50):
            assert 0 <= derive_seed(key) < 2**64

    @given(st.integers(), st.integers())
    def test_negative_ints_are_stable(self, a, b):
        assert derive_seed(a, b) == derive_seed(a, b)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        r1 = derive_rng(9, "x")
        r2 = derive_rng(9, "x")
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_different_keys_diverge(self):
        r1 = derive_rng(9, "x")
        r2 = derive_rng(9, "y")
        assert [r1.random() for _ in range(5)] != [r2.random() for _ in range(5)]

    def test_returns_random_instance(self):
        assert isinstance(derive_rng(0), random.Random)


class TestSpawnRng:
    def test_child_is_deterministic_from_parent_state(self):
        parent1 = derive_rng(3)
        parent2 = derive_rng(3)
        assert spawn_rng(parent1).random() == spawn_rng(parent2).random()

    def test_child_differs_from_parent_continuation(self):
        parent = derive_rng(3)
        child = spawn_rng(parent)
        assert child.random() != parent.random()


class TestRngFactory:
    def test_equality_and_hash(self):
        assert RngFactory(5) == RngFactory(5)
        assert RngFactory(5) != RngFactory(6)
        assert hash(RngFactory(5)) == hash(RngFactory(5))

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("seed")

    def test_named_streams_reproducible(self):
        fac = RngFactory(42)
        a = fac.rng("pick", 3).randrange(1000)
        b = RngFactory(42).rng("pick", 3).randrange(1000)
        assert a == b

    def test_seed_for_matches_derive_seed(self):
        fac = RngFactory(7)
        assert fac.seed_for("k", 1) == derive_seed(7, "k", 1)

    def test_streams_are_independent(self):
        fac = RngFactory(1)
        values = [rng.random() for rng in fac.streams("s", 10)]
        assert len(set(values)) == 10

    def test_streams_count(self):
        assert len(list(RngFactory(0).streams("x", 4))) == 4


class TestUniformity:
    def test_derived_streams_cover_range(self):
        """Means of many derived streams concentrate near 0.5."""
        values = [derive_rng(0, i).random() for i in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.03
