"""Stress and regression tests for the distributed correction program.

The distributed cascade is unsynchronised: two corrections for one slot can
arrive in the same superstep, and the engine sorts inboxes by message value,
not causal order.  A version-gating mechanism (see
``CorrectionPropagationProgram``) prevents an older value from overwriting a
newer one; these tests hammer that machinery with long random batch
sequences across worker counts, asserting exact equality with the
sequential fixpoint after *every* batch — the scenario that originally
exposed the ordering bug (a stale correction beating a repick value at the
third batch of a specific seed).
"""

import pytest

from repro.core.incremental import CorrectionPropagator
from repro.core.rslpa import ReferencePropagator
from repro.distributed.cluster import run_distributed_update
from repro.graph.generators import erdos_renyi, ring_of_cliques
from repro.workloads.dynamic import random_edit_batch


def paired_setup(graph, seed, iterations):
    seq_graph = graph.copy()
    ref_seq = ReferencePropagator(seq_graph, seed=seed)
    ref_seq.propagate(iterations)
    corrector = CorrectionPropagator(ref_seq)

    dist_graph = graph.copy()
    ref_dist = ReferencePropagator(dist_graph, seed=seed)
    ref_dist.propagate(iterations)
    return corrector, seq_graph, dist_graph, ref_dist.state


class TestLongBatchSequences:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_eight_batches_stay_exactly_equal(self, workers):
        """The original bug reproduced at epoch 3, seed 3, 3 workers on the
        sparse fixture; run well past that point for several worker counts."""
        graph = erdos_renyi(60, 0.06, seed=17)
        corrector, seq_graph, dist_graph, dist_state = paired_setup(
            graph, seed=3, iterations=20
        )
        for epoch in range(1, 9):
            batch = random_edit_batch(seq_graph, 6, seed=epoch)
            corrector.apply_batch(batch)
            _, dist_state, _ = run_distributed_update(
                dist_graph, dist_state, batch, seed=3,
                batch_epoch=epoch, num_workers=workers,
            )
            assert dist_state.labels == corrector.state.labels, (
                f"diverged at epoch {epoch} with {workers} workers"
            )
            assert dist_state.epochs == corrector.state.epochs
        dist_state.validate(dist_graph)

    def test_large_batches_on_dense_structure(self):
        """Big batches maximise same-superstep correction collisions."""
        graph = ring_of_cliques(6, 6)
        corrector, seq_graph, dist_graph, dist_state = paired_setup(
            graph, seed=13, iterations=25
        )
        for epoch in range(1, 4):
            batch = random_edit_batch(seq_graph, 24, seed=50 + epoch)
            corrector.apply_batch(batch)
            _, dist_state, _ = run_distributed_update(
                dist_graph, dist_state, batch, seed=13,
                batch_epoch=epoch, num_workers=3,
            )
            assert dist_state.labels == corrector.state.labels
        assert dist_state.receivers == corrector.state.receivers

    def test_alternating_grow_shrink(self):
        """Insert-heavy then delete-heavy batches exercise both category-3
        lottery paths and the repick-to-isolation fallback."""
        from repro.workloads.dynamic import random_deletions, random_insertions

        graph = erdos_renyi(40, 0.08, seed=2)
        corrector, seq_graph, dist_graph, dist_state = paired_setup(
            graph, seed=7, iterations=15
        )
        for epoch in range(1, 7):
            if epoch % 2:
                batch = random_insertions(seq_graph, 10, seed=epoch)
            else:
                batch = random_deletions(seq_graph, 10, seed=epoch)
            corrector.apply_batch(batch)
            _, dist_state, _ = run_distributed_update(
                dist_graph, dist_state, batch, seed=7,
                batch_epoch=epoch, num_workers=4,
            )
            assert dist_state.labels == corrector.state.labels
            dist_state.validate(dist_graph)
