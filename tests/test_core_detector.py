"""Tests for the high-level RSLPADetector API."""

import pytest

from repro.core.detector import RSLPADetector, detect_communities
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.generators import ring_of_cliques
from repro.workloads.dynamic import random_edit_batch


class TestLifecycle:
    def test_unfitted_raises(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=0, iterations=10)
        with pytest.raises(RuntimeError, match="not fitted"):
            detector.communities()
        with pytest.raises(RuntimeError):
            detector.update(EditBatch.empty())

    def test_fit_returns_self(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=0, iterations=10)
        assert detector.fit() is detector
        assert detector.is_fitted

    def test_owns_private_graph_copy(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=0, iterations=10).fit()
        detector.update(EditBatch.build(deletions=[(0, 1)]))
        assert cliques_ring.has_edge(0, 1)  # caller graph untouched
        assert not detector.graph.has_edge(0, 1)

    def test_invalid_engine_rejected(self, cliques_ring):
        with pytest.warns(DeprecationWarning, match="deprecated alias"):
            with pytest.raises(ValueError, match="engine"):
                RSLPADetector(cliques_ring, engine="spark")

    def test_invalid_backend_rejected(self, cliques_ring):
        with pytest.raises(ValueError, match="backend"):
            RSLPADetector(cliques_ring, backend="spark")

    def test_fast_backend_requires_contiguous_ids(self):
        g = Graph.from_edges([(10, 20)])
        with pytest.raises(ValueError, match="contiguous"):
            RSLPADetector(g, backend="fast", iterations=5).fit()

    def test_reference_backend_handles_arbitrary_ids(self):
        g = Graph.from_edges([(10, 20), (20, 30), (10, 30)])
        detector = RSLPADetector(g, backend="reference", iterations=20).fit()
        assert detector.label_state.num_iterations == 20

    def test_legacy_engine_alias_warns_and_maps_to_backend(self, cliques_ring):
        with pytest.warns(DeprecationWarning, match="deprecated alias"):
            detector = RSLPADetector(cliques_ring, engine="reference")
        assert detector.backend == "reference"
        with pytest.warns(DeprecationWarning, match="deprecated alias"):
            with pytest.raises(ValueError, match="conflicting"):
                RSLPADetector(cliques_ring, engine="fast", backend="reference")


class TestEngineEquivalence:
    def test_fast_and_reference_agree(self, cliques_ring):
        fast = RSLPADetector(
            cliques_ring, seed=3, iterations=25, backend="fast"
        ).fit()
        ref = RSLPADetector(
            cliques_ring, seed=3, iterations=25, backend="reference"
        ).fit()
        assert fast.label_state.labels == ref.label_state.labels
        assert fast.communities() == ref.communities()

    def test_auto_picks_fast_for_contiguous(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=3, iterations=25).fit()
        explicit = RSLPADetector(
            cliques_ring, seed=3, iterations=25, backend="fast"
        ).fit()
        assert detector.label_state.labels == explicit.label_state.labels


class TestDetection:
    def test_clique_ring_communities(self, cliques_ring):
        cover = detect_communities(cliques_ring, seed=1, iterations=60, tau_step=0.005)
        found = sorted(sorted(c) for c in cover)
        assert found == [sorted(range(c * 6, (c + 1) * 6)) for c in range(5)]

    def test_postprocess_cached_until_update(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=1, iterations=30).fit()
        first = detector.postprocess()
        assert detector.postprocess() is first
        detector.update(EditBatch.build(deletions=[(0, 1)]))
        assert detector.postprocess() is not first


class TestDynamicMaintenance:
    def test_update_keeps_state_valid(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=2, iterations=30).fit()
        for step in range(4):
            batch = random_edit_batch(detector.graph, 6, seed=step)
            report = detector.update(batch)
            assert report.batch_size == 6
            detector.label_state.validate(detector.graph)

    def test_update_many(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=2, iterations=20).fit()
        batches = [
            EditBatch.build(deletions=[(0, 1)]),
            EditBatch.build(insertions=[(0, 1)]),
        ]
        reports = detector.update_many(batches)
        assert len(reports) == 2

    def test_remove_vertex_through_detector(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, seed=2, iterations=20).fit()
        detector.remove_vertex(0)
        assert not detector.graph.has_vertex(0)
        detector.label_state.validate(detector.graph)

    def test_communities_track_structure_change(self):
        """Merging two cliques by adding many cross edges merges communities."""
        g = ring_of_cliques(3, 5)
        detector = RSLPADetector(g, seed=4, iterations=80, tau_step=0.005).fit()
        assert len(detector.communities()) == 3
        cross = [
            (u, v)
            for u in range(5)
            for v in range(5, 10)
            if not detector.graph.has_edge(u, v)
        ]
        detector.update(EditBatch.build(insertions=cross))
        cover = detector.communities()
        merged = [c for c in cover if len(c) >= 10]
        assert merged, f"expected a merged community, got sizes {cover.sizes()}"


class TestValidation:
    def test_rejects_bad_iterations(self, cliques_ring):
        with pytest.raises(ValueError):
            RSLPADetector(cliques_ring, iterations=0)

    def test_rejects_bad_seed_type(self, cliques_ring):
        with pytest.raises(TypeError):
            RSLPADetector(cliques_ring, seed="x")

    def test_rejects_bad_batch_type(self, cliques_ring):
        detector = RSLPADetector(cliques_ring, iterations=10).fit()
        with pytest.raises(TypeError):
            detector.update("not a batch")


class TestFromState:
    """Restart path: adopting a saved state continues the lifecycle exactly."""

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_continuation_is_bit_identical(self, cliques_ring, backend):
        original = RSLPADetector(
            cliques_ring, seed=4, iterations=40, backend=backend
        ).fit()
        first = random_edit_batch(original.graph, 6, seed=1)
        original.update(first)

        import io

        from repro.core.serialize import load_state, save_state

        # Deep-copy through the npz round trip so the two detectors diverge
        # only if the adopted lifecycle diverges.
        buffer = io.BytesIO()
        save_state(
            original.array_state
            if backend == "fast"
            else original._corrector.state,
            buffer,
        )
        buffer.seek(0)
        adopted = RSLPADetector.from_state(
            original.graph.copy(),
            load_state(buffer),
            seed=4,
            backend=backend,
            batch_epoch=1,
        )
        second = random_edit_batch(original.graph, 6, seed=2)
        report_a = original.update(second)
        report_b = adopted.update(second)
        assert report_a.touched_labels == report_b.touched_labels
        assert original.communities() == adopted.communities()

    def test_from_state_converts_across_representations(self, cliques_ring):

        fitted = RSLPADetector(
            cliques_ring, seed=4, iterations=30, backend="fast"
        ).fit()
        array_snapshot = fitted.array_state
        adopted = RSLPADetector.from_state(
            cliques_ring, array_snapshot.to_label_state(), seed=4, backend="fast"
        )
        assert adopted.iterations == 30
        assert adopted.communities() == fitted.communities()

    def test_from_state_restores_iterations(self, propagated, cliques_ring):
        from repro.core.incremental import CorrectionPropagator

        detector = RSLPADetector.from_state(
            cliques_ring, propagated.state, seed=11, backend="reference"
        )
        assert detector.is_fitted
        assert detector.iterations == 40
        assert isinstance(detector._corrector, CorrectionPropagator)
