"""Tests for the ingest-plane micro-batcher."""

import pytest

from repro.service.ingest import BackpressureError, EditQueue, INSERT


class TestOfferCoalescing:
    def test_offer_enqueues(self):
        queue = EditQueue(batch_size=4)
        assert queue.offer_insert(1, 2) is True
        assert queue.pending == 1

    def test_edges_are_normalised(self):
        queue = EditQueue(batch_size=4)
        queue.offer_insert(2, 1)
        assert queue.offer_insert(1, 2) is False  # same edge, duplicate
        assert queue.pending == 1
        assert queue.duplicates == 1

    def test_opposite_ops_cancel(self):
        queue = EditQueue(batch_size=4)
        queue.offer_insert(1, 2)
        assert queue.offer_delete(1, 2) is False
        assert queue.pending == 0
        assert queue.cancelled_pairs == 1

    def test_delete_then_insert_cancels_too(self):
        queue = EditQueue(batch_size=4)
        queue.offer_delete(3, 4)
        queue.offer_insert(4, 3)
        assert queue.pending == 0
        assert queue.cancelled_pairs == 1

    def test_cancel_then_reoffer_is_pending_again(self):
        queue = EditQueue(batch_size=4)
        queue.offer_insert(1, 2)
        queue.offer_delete(1, 2)
        assert queue.offer_delete(1, 2) is True
        assert queue.pending == 1
        batch = queue.drain()
        assert batch.deletions == frozenset({(1, 2)})

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op"):
            EditQueue(batch_size=2).offer("x", 1, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            EditQueue(batch_size=2).offer_insert(3, 3)


class TestFlushPolicy:
    def test_ready_at_batch_size(self):
        queue = EditQueue(batch_size=2)
        queue.offer_insert(1, 2)
        assert not queue.ready
        queue.offer_insert(2, 3)
        assert queue.ready

    def test_cancellation_can_unready(self):
        queue = EditQueue(batch_size=2)
        queue.offer_insert(1, 2)
        queue.offer_insert(2, 3)
        assert queue.ready
        queue.offer_delete(1, 2)
        assert not queue.ready

    def test_drain_returns_net_batch(self):
        queue = EditQueue(batch_size=8)
        queue.offer_insert(1, 2)
        queue.offer_delete(3, 4)
        queue.offer_insert(5, 6)
        queue.offer_delete(5, 6)  # cancels
        batch = queue.drain()
        assert batch.insertions == frozenset({(1, 2)})
        assert batch.deletions == frozenset({(3, 4)})
        assert queue.pending == 0

    def test_drain_limit_preserves_arrival_order(self):
        queue = EditQueue(batch_size=8)
        queue.offer_insert(1, 2)
        queue.offer_delete(3, 4)
        queue.offer_insert(5, 6)
        first = queue.drain(limit=2)
        assert first.insertions == frozenset({(1, 2)})
        assert first.deletions == frozenset({(3, 4)})
        rest = queue.drain()
        assert rest.insertions == frozenset({(5, 6)})

    def test_drain_empty_is_empty_batch(self):
        queue = EditQueue(batch_size=2)
        batch = queue.drain()
        assert not batch
        assert queue.drained_batches == 0

    def test_counters(self):
        queue = EditQueue(batch_size=8)
        queue.offer_insert(1, 2)
        queue.offer_insert(1, 2)
        queue.offer_delete(1, 2)
        queue.offer_insert(3, 4)
        queue.drain()
        stats = queue.stats()
        assert stats["offered"] == 4
        assert stats["duplicates"] == 1
        assert stats["cancelled_pairs"] == 1
        assert stats["drained_batches"] == 1
        assert stats["drained_edits"] == 1


class TestBackpressure:
    def test_overflow_raises(self):
        queue = EditQueue(batch_size=2, max_pending=2)
        queue.offer_insert(1, 2)
        queue.offer_insert(2, 3)
        with pytest.raises(BackpressureError, match="max_pending"):
            queue.offer_insert(3, 4)

    def test_cancelling_offer_never_trips(self):
        queue = EditQueue(batch_size=2, max_pending=2)
        queue.offer_insert(1, 2)
        queue.offer_insert(2, 3)
        # These do not grow the queue, so they must be accepted.
        queue.offer_insert(1, 2)     # duplicate
        queue.offer_delete(1, 2)     # cancellation
        assert queue.pending == 1

    def test_drain_relieves_pressure(self):
        queue = EditQueue(batch_size=2, max_pending=2)
        queue.offer_insert(1, 2)
        queue.offer_insert(2, 3)
        queue.drain()
        assert queue.offer_insert(3, 4) is True

    def test_max_pending_below_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            EditQueue(batch_size=8, max_pending=4)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            EditQueue(batch_size=0)


class TestRetryAfterAndTimeout:
    def full_queue(self):
        queue = EditQueue(batch_size=2, max_pending=2)
        queue.offer_insert(1, 2)
        queue.offer_insert(2, 3)
        return queue

    def test_error_carries_retry_after_hint(self):
        queue = self.full_queue()
        with pytest.raises(BackpressureError) as excinfo:
            queue.offer_insert(3, 4)
        assert excinfo.value.retry_after == queue.retry_after
        assert "retry_after~" in str(excinfo.value)
        assert queue.backpressure_hits == 1

    def test_retry_after_defaults_before_any_cadence(self):
        assert EditQueue(batch_size=2).retry_after == 0.1

    def test_retry_after_tracks_drain_cadence(self):
        import time

        queue = EditQueue(batch_size=1)
        queue.offer_insert(1, 2)
        queue.drain()                    # first drain: no cadence yet
        assert queue.retry_after == 0.1
        time.sleep(0.01)
        queue.offer_insert(2, 3)
        queue.drain()                    # second drain establishes the EWMA
        assert 0.0 < queue.retry_after < 0.1

    def test_timeout_bounds_the_wait_then_raises(self):
        import time

        queue = self.full_queue()
        start = time.monotonic()
        with pytest.raises(BackpressureError):
            queue.offer(INSERT, 3, 4, timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_timeout_succeeds_when_capacity_appears(self):
        import threading

        queue = self.full_queue()
        timer = threading.Timer(0.02, queue.drain)
        timer.start()
        try:
            assert queue.offer(INSERT, 3, 4, timeout=2.0) is True
        finally:
            timer.cancel()
        assert queue.backpressure_hits == 0

    def test_negative_timeout_rejected(self):
        queue = EditQueue(batch_size=2)
        with pytest.raises(ValueError, match="timeout"):
            queue.offer(INSERT, 1, 2, timeout=-1)

    def test_stats_expose_backpressure_counters(self):
        queue = self.full_queue()
        with pytest.raises(BackpressureError):
            queue.offer_insert(3, 4)
        stats = queue.stats()
        assert stats["backpressure_hits"] == 1
        assert stats["retry_after"] == queue.retry_after
