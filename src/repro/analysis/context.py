"""Visitor core: parsed-module context, rule base class, rule registry.

One :class:`ModuleContext` is built per analysed file and shared by every
rule, so the tree is parsed once and the common static facts — parent
links, import-alias resolution, enclosing-scope qualnames — are computed
once.  Rules are tiny: subclass :class:`Rule`, declare an id/severity/
scope, implement :meth:`Rule.check` as a generator of findings, and
register the class in :data:`RULES` (the same named-registry mechanism
components use, :class:`repro.api.registry.Registry`, so plugins can add
project-specific invariants without touching this package)::

    from repro.analysis.context import Rule, RULES

    class NoPrint(Rule):
        rule_id = "RPL901"
        title = "no print in library code"
        def check(self, ctx):
            for node in ctx.walk(ast.Call):
                if ctx.resolve(node.func) == "print":
                    yield self.finding(ctx, node, "print() in library code")

    RULES.register("RPL901", NoPrint)

Scope strings are path prefixes *inside* the ``repro`` package
(``"core/"``, ``"service/durability.py"``); a rule with an empty scope
runs on every repro-package file.  Files outside any ``repro`` package
(fixtures, scripts) only see rules that opt in via ``scope_any_file``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.api.registry import Registry

__all__ = ["ModuleContext", "Rule", "RULES", "all_rules", "package_relative"]

#: Rule registry, keyed by rule id.  Mirrors the component registries in
#: :mod:`repro.api.registry` (and reuses their implementation): built-in
#: rules register at import, plugins extend with ``RULES.register``.
RULES = Registry("lint rule")


def package_relative(path: str) -> Optional[str]:
    """Path inside the ``repro`` package, or ``None`` for foreign files.

    ``src/repro/core/detector.py`` → ``core/detector.py``;
    ``tests/test_x.py`` → ``None`` (scoped rules skip it).
    """
    parts = PurePosixPath(PurePosixPath(path).as_posix()).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return None


class ModuleContext:
    """Everything the rules need to know about one parsed module."""

    def __init__(self, path: str, source: str):
        self.path = PurePosixPath(path).as_posix()
        self.source = source
        self.package_rel = package_relative(self.path)
        self.tree = ast.parse(source, filename=self.path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports = self._collect_imports()

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------
    def walk(self, *types: type) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def at_module_scope(self, node: ast.AST) -> bool:
        """True when no function body encloses ``node`` (class bodies and
        ``if`` guards still count as module scope — they run at import)."""
        return self.enclosing_function(node) is None

    def in_type_checking_block(self, node: ast.AST) -> bool:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.If):
                test = ancestor.test
                name = (
                    test.id if isinstance(test, ast.Name)
                    else test.attr if isinstance(test, ast.Attribute)
                    else None
                )
                if name == "TYPE_CHECKING":
                    return True
        return False

    def qualname(self, node: ast.AST) -> str:
        """``Class.method`` qualname of the scope enclosing ``node``."""
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(ancestor.name)
        return ".".join(reversed(names))

    # ------------------------------------------------------------------
    # Name resolution through the module's imports
    # ------------------------------------------------------------------
    def _collect_imports(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # `import a.b` binds `a`; `import a.b as c` binds the
                    # full dotted target to `c`.
                    target = alias.name if alias.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted target of a Name/Attribute chain, through import aliases.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``; a bare un-imported
        name resolves to itself (covers builtins like ``open``/``sorted``).
        Anything rooted in a non-name expression (``self.x``, calls,
        subscripts) resolves to ``None`` — rules only match certainties.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def call_name(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)


class Rule:
    """Base class for one static invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`finding` builds a correctly-located :class:`Finding`.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = ERROR
    #: Path prefixes inside the repro package this rule runs on
    #: (empty tuple = every repro-package file).
    scope: Tuple[str, ...] = ()
    #: Run even on files outside a ``repro`` package (lint fixtures,
    #: scripts).  Scoped invariants keep this False.
    scope_any_file: bool = False

    def applies_to(self, ctx: ModuleContext) -> bool:
        rel = ctx.package_rel
        if rel is None:
            return self.scope_any_file
        if not self.scope:
            return True
        return any(rel.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
            symbol=ctx.qualname(node),
        )


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by rule id."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in pack)

    return [rule_class() for rule_class in RULES.resolve_all().values()]
