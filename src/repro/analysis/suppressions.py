"""Inline suppressions: ``# repro-lint: disable=RULE[,RULE] -- reason``.

A suppression silences named rules on one statement.  Two placements:

* **trailing** — after code on the same line; covers that line::

      os.fsync(handle.fileno())  # repro-lint: disable=RPL005 -- WAL append
      # must serialise against rotation; the lock IS the contract here

* **standalone** — a comment-only line; covers the next code line::

      # repro-lint: disable=RPL003 -- ownership moves to the ring below
      segment = shared_memory.SharedMemory(create=True, size=size)

The policy mirrors the repo's dynamic-test philosophy: silencing a
static invariant is allowed, but only *audibly* — every ``disable`` must
carry a ``--``-separated reason, and a ``disable`` that stops matching
anything (the violation was fixed, or the rule id is a typo) is itself a
finding.  Both diagnostics are emitted under the framework id
``RPL000`` so a stale suppression can never rot silently in the tree.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Tuple

from repro.analysis.findings import ERROR, Finding

__all__ = ["Suppression", "SuppressionSheet", "FRAMEWORK_RULE"]

#: Rule id for the analyzer's own diagnostics (syntax errors, unused or
#: reason-less suppressions).  Not suppressible — a disable naming RPL000
#: is reported as unknown.
FRAMEWORK_RULE = "RPL000"

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)
_RULE_ID_RE = re.compile(r"^RPL\d{3}$")


class Suppression:
    """One parsed ``disable`` comment and its bookkeeping."""

    def __init__(self, rules: Tuple[str, ...], reason: str,
                 comment_line: int, target_line: int):
        self.rules = rules
        self.reason = reason
        self.comment_line = comment_line  # where the comment itself sits
        self.target_line = target_line    # the code line it covers
        self.used = False

    def __repr__(self) -> str:
        return (
            f"Suppression(rules={self.rules}, line={self.comment_line}, "
            f"covers={self.target_line}, used={self.used})"
        )


def _comment_tokens(source: str) -> Iterator[tokenize.TokenInfo]:
    """COMMENT tokens of ``source`` (so ``repro-lint`` text inside
    docstrings and string literals is never mistaken for a directive)."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # check_source() ast-parses before building the sheet, so this
        # only triggers on pathological inputs; no comments, no disables.
        return


def _next_code_line(lines: List[str], start: int) -> int:
    """1-based line number of the first code line at or after ``start``."""
    for offset in range(start - 1, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return start  # trailing comment at EOF: covers nothing real


class SuppressionSheet:
    """All suppressions of one module, indexed by the line they cover."""

    def __init__(self, source: str, path: str):
        self.path = path
        self._by_line: Dict[int, List[Suppression]] = {}
        self._all: List[Suppression] = []
        self._malformed: List[Tuple[int, str]] = []
        lines = source.splitlines()
        for token in _comment_tokens(source):
            if "repro-lint" not in token.string:
                continue
            lineno = token.start[0]
            standalone = not lines[lineno - 1][: token.start[1]].strip()
            match = _DISABLE_RE.search(token.string)
            if match is None:
                # A marker that does not parse is a typo'd contract:
                # surface it rather than silently ignoring it.
                self._malformed.append(
                    (lineno, "unparseable repro-lint comment (expected "
                             "'# repro-lint: disable=RPLnnn -- reason')")
                )
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            bad = [r for r in rules
                   if not _RULE_ID_RE.match(r) or r == FRAMEWORK_RULE]
            if bad or not rules:
                self._malformed.append(
                    (lineno, f"disable names unknown rule id(s) {bad or rules}")
                )
                continue
            target = (
                _next_code_line(lines, lineno + 1) if standalone else lineno
            )
            suppression = Suppression(
                rules=rules,
                reason=(match.group("reason") or "").strip(),
                comment_line=lineno,
                target_line=target,
            )
            self._by_line.setdefault(target, []).append(suppression)
            self._all.append(suppression)

    def __len__(self) -> int:
        return len(self._all)

    def suppresses(self, finding: Finding) -> bool:
        """True (and mark used) if a disable covers this finding."""
        for suppression in self._by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used = True
                return True
        return False

    def audit(self) -> Iterator[Finding]:
        """Framework findings: malformed, reason-less, unused disables."""
        for lineno, message in self._malformed:
            yield Finding(
                rule=FRAMEWORK_RULE, path=self.path, line=lineno, col=0,
                message=message, severity=ERROR,
            )
        for suppression in self._all:
            if not suppression.reason:
                yield Finding(
                    rule=FRAMEWORK_RULE, path=self.path,
                    line=suppression.comment_line, col=0,
                    message=(
                        "suppression without a justification; write "
                        "'# repro-lint: disable="
                        + ",".join(suppression.rules)
                        + " -- <why this site is exempt>'"
                    ),
                    severity=ERROR,
                )
            if not suppression.used:
                yield Finding(
                    rule=FRAMEWORK_RULE, path=self.path,
                    line=suppression.comment_line, col=0,
                    message=(
                        "unused suppression for "
                        + ",".join(suppression.rules)
                        + ": nothing on the covered line violates it "
                        "(fixed violation, or wrong rule id) — delete it"
                    ),
                    severity=ERROR,
                )
