"""The built-in rule pack: the codebase's invariants, statically enforced.

Each rule is the static twin of a dynamic contract this repo already
tests (see DESIGN.md "Static invariants" for the full mapping):

* **RPL001 determinism** — the paper's Correction-Propagation guarantee
  (incremental == recomputation, bit-identical per seed) dies the moment
  wall-clock time, process-salted hashes, or unseeded module-level RNG
  feeds an algorithm decision.  Scoped to the algorithm planes.
* **RPL002 obs-overhead** — untraced runs must never import
  :mod:`repro.obs`; the ``sys.modules`` booby-trap test catches an
  executed violation, this rule catches it at diff time.
* **RPL003 resource discipline** — shared-memory segments, sockets, and
  write handles in the transport/durability/replication planes must
  reach a release on *all* paths (``with``, ``try/finally``, or escape
  to a long-lived owner with a shutdown path); the SIGKILL tests assert
  ``/dev/shm`` stays clean, this rule asserts the code shape that makes
  them pass.
* **RPL004 API hygiene** — internal code never calls its own deprecated
  shims, configs stay frozen dataclasses, concrete components are
  resolved through :mod:`repro.api.registry`, never imported directly.
* **RPL005 concurrency** — no blocking I/O (fsync, socket sends) while
  holding the durability lock, no bare ``except``, no mutable default
  arguments on code that crosses pickle boundaries into workers.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import ModuleContext, Rule, RULES
from repro.analysis.findings import WARNING, Finding

__all__ = [
    "DeterminismRule",
    "ObsOverheadRule",
    "ResourceDisciplineRule",
    "ApiHygieneRule",
    "ConcurrencyRule",
]


# ----------------------------------------------------------------------
# RPL001 — determinism
# ----------------------------------------------------------------------
#: Wall-clock reads that must never feed algorithm decisions.  Deadlines
#: use time.monotonic; metrics use time.perf_counter/time.time_ns; the
#: algorithm planes use neither (every draw is (seed, slot, epoch)-keyed).
_WALL_CLOCK_CALLS = {
    "time.time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-level random functions that draw from the shared, unseeded
#: global stream.  Constructing a seeded instance (random.Random(seed),
#: numpy.random.default_rng(seed)) is the sanctioned pattern
#: (repro.utils.rng wraps it).
_GLOBAL_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randint", "random", "randrange", "sample", "seed", "shuffle",
    "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

#: numpy.random attributes that are types/utilities, not global-stream
#: draws; everything else under numpy.random.* is banned in scope.
_NP_RANDOM_ALLOWED = {
    "Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64",
}


class DeterminismRule(Rule):
    """RPL001: no wall clock, global RNG, salted hashes, or raw-set
    iteration order in the algorithm planes."""

    rule_id = "RPL001"
    title = "determinism: seeded, order-stable algorithm code"
    scope = ("core/", "distributed/", "service/", "baselines/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.walk(ast.Call):
            name = ctx.call_name(call)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"wall-clock read {name}() in algorithm code: results "
                    "must be a pure function of (graph, seed, batch "
                    "sequence); use time.monotonic for deadlines and "
                    "time.perf_counter/time.time_ns only for metrics",
                )
            elif (
                name.startswith("random.")
                and name.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS
            ):
                yield self.finding(
                    ctx, call,
                    f"{name}() draws from the unseeded process-global "
                    "stream; derive a seeded generator via "
                    "repro.utils.rng.derive_rng instead",
                )
            elif name.startswith("numpy.random."):
                tail = name.rsplit(".", 1)[1]
                if tail in _NP_RANDOM_ALLOWED:
                    continue
                if tail == "default_rng" and (call.args or call.keywords):
                    continue  # explicitly seeded generator: sanctioned
                yield self.finding(
                    ctx, call,
                    f"{name}() uses numpy's module-level (or unseeded) RNG; "
                    "pass an explicit seed (numpy.random.default_rng(seed) "
                    "via repro.utils.rng.derive_seed)",
                )
        yield from self._check_set_iteration(ctx)
        yield from self._check_ordering_keys(ctx)

    # -- raw set iteration feeding loops/comprehensions ----------------
    def _iteration_sites(self, ctx: ModuleContext) -> Iterator[ast.AST]:
        for node in ctx.walk(ast.For, ast.AsyncFor):
            yield node.iter
        for node in ctx.walk(ast.comprehension):
            yield node.iter

    def _check_set_iteration(self, ctx: ModuleContext) -> Iterator[Finding]:
        for source in self._iteration_sites(ctx):
            is_raw_set = isinstance(source, (ast.Set, ast.SetComp)) or (
                isinstance(source, ast.Call)
                and ctx.call_name(source) in ("set", "frozenset")
            )
            if is_raw_set:
                yield self.finding(
                    ctx, source,
                    "iterating a set in creation order: set order is "
                    "hash-salted and differs across processes, so any "
                    "message routing or label selection fed by this loop "
                    "diverges between workers; iterate sorted(...) instead",
                    severity=WARNING,
                )

    # -- id()/default hash() inside ordering keys ----------------------
    def _check_ordering_keys(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.walk(ast.Call):
            name = ctx.call_name(call)
            is_ordering = name in ("sorted", "min", "max") or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "sort"
            )
            if not is_ordering:
                continue
            for keyword in call.keywords:
                if keyword.arg != "key":
                    continue
                for sub in ast.walk(keyword.value):
                    if (
                        isinstance(sub, ast.Call)
                        and ctx.call_name(sub) in ("id", "hash")
                    ):
                        yield self.finding(
                            ctx, sub,
                            f"{ctx.call_name(sub)}() inside an ordering "
                            "key: id() is an address (differs per process) "
                            "and hash() is salted for str/bytes, so this "
                            "sort order is not reproducible; key on the "
                            "value itself or a derive_seed-style digest",
                        )


# ----------------------------------------------------------------------
# RPL002 — obs overhead
# ----------------------------------------------------------------------
class ObsOverheadRule(Rule):
    """RPL002: no module-level import of repro.obs outside repro/obs."""

    rule_id = "RPL002"
    title = "obs-overhead: repro.obs is imported lazily, on traced paths only"
    scope = ()  # every repro file except the obs package itself

    def applies_to(self, ctx: ModuleContext) -> bool:
        rel = ctx.package_rel
        return rel is not None and not rel.startswith("obs")

    def _flag(self, ctx: ModuleContext, node: ast.AST) -> Finding:
        return self.finding(
            ctx, node,
            "module-level import of repro.obs outside repro/obs: the "
            "zero-overhead contract says untraced runs never import the "
            "observability plane (the sys.modules booby-trap test enforces "
            "this at runtime); import inside the traced code path, behind "
            "the `if obs is not None` / trace-enabled guard",
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk(ast.Import, ast.ImportFrom):
            if not ctx.at_module_scope(node) or ctx.in_type_checking_block(node):
                continue
            if isinstance(node, ast.Import):
                if any(
                    alias.name == "repro.obs"
                    or alias.name.startswith("repro.obs.")
                    for alias in node.names
                ):
                    yield self._flag(ctx, node)
            else:
                module = node.module or ""
                if module == "repro.obs" or module.startswith("repro.obs."):
                    yield self._flag(ctx, node)
                elif module == "repro" and any(
                    alias.name == "obs" for alias in node.names
                ):
                    yield self._flag(ctx, node)


# ----------------------------------------------------------------------
# RPL003 — resource discipline
# ----------------------------------------------------------------------
#: Resource-creating calls (resolved through import aliases) and what
#: they allocate.
_RESOURCE_CALLS = {
    "multiprocessing.shared_memory.SharedMemory": "shared-memory segment",
    "socket.socket": "socket",
    "socket.create_server": "listening socket",
    "socket.create_connection": "connected socket",
}

#: Releasing method names accepted as close evidence inside ``finally``.
_RELEASE_METHODS = {"close", "unlink", "shutdown", "release", "terminate"}


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The write-ish mode string of an ``open`` call, else ``None``."""
    mode_node: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not isinstance(mode_node, ast.Constant) or not isinstance(
        mode_node.value, str
    ):
        return None  # absent (read) or dynamic (not statically decidable)
    mode = mode_node.value
    return mode if any(ch in mode for ch in "wax+") else None


class ResourceDisciplineRule(Rule):
    """RPL003: every resource creation reaches a release on all paths."""

    rule_id = "RPL003"
    title = "resource discipline: with / try-finally / owner escape"
    scope = (
        "distributed/transport.py",
        "service/durability.py",
        "service/replication.py",
    )

    def _classify(self, ctx: ModuleContext, call: ast.Call) -> Optional[str]:
        name = ctx.call_name(call)
        if name in _RESOURCE_CALLS:
            return _RESOURCE_CALLS[name]
        if name == "open":
            mode = _open_write_mode(call)
            if mode is not None:
                return f"write handle (mode {mode!r})"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.walk(ast.Call):
            what = self._classify(ctx, call)
            if what is None:
                continue
            parent = ctx.parent(call)
            if isinstance(parent, ast.withitem):
                continue  # context manager: released on every path
            if isinstance(parent, (ast.Return, ast.Yield, ast.Await)):
                continue  # ownership handed to the caller
            if isinstance(parent, (ast.Call, ast.keyword)):
                continue  # ownership handed to the callee
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    # Escapes to a long-lived owner (self.x / ring[slot]):
                    # the owner's close/shutdown path is the release.
                    continue
                if isinstance(target, ast.Name) and self._name_is_released(
                    ctx, call, target.id
                ):
                    continue
            yield self.finding(
                ctx, call,
                f"{what} created without a guaranteed release: an "
                "exception between creation and close leaks it past "
                "process death (the SIGKILL tests assert /dev/shm and the "
                "fd table stay clean); use `with`, release in "
                "`try/finally`, or store it on a shut-down owner",
            )

    def _name_is_released(
        self, ctx: ModuleContext, creation: ast.Call, name: str
    ) -> bool:
        """Release evidence for a local binding inside its function."""
        scope: ast.AST = ctx.enclosing_function(creation) or ctx.tree

        def references(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node)
            )

        finally_bodies: List[ast.AST] = []
        for node in ast.walk(scope):
            if isinstance(node, (ast.Try,)):
                finally_bodies.extend(node.finalbody)
            if isinstance(node, ast.withitem) and references(node.context_expr):
                return True
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                and references(node.value)
            ):
                return True  # escapes to a long-lived owner
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                if references(node.value):
                    return True
            if isinstance(node, ast.Call) and node is not creation:
                # Passed as an argument: ownership transferred (append to
                # a ring, handed to a closer helper, ...).
                if any(references(arg) for arg in node.args) or any(
                    references(kw.value) for kw in node.keywords
                ):
                    return True
        for body_node in finally_bodies:
            for sub in ast.walk(body_node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _RELEASE_METHODS
                    and references(sub.func.value)
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# RPL004 — API hygiene
# ----------------------------------------------------------------------
#: Deprecated keyword aliases internal code must not use (the
#: deprecation-strict CI job catches executions; this catches the text).
_DEPRECATED_KWARGS = {
    "RSLPADetector": ("engine",),
    "detect_communities": ("engine",),
}

#: Concrete component classes that must be resolved through
#: repro.api.registry, keyed by their home module.
_REGISTRY_ONLY = {
    "repro.distributed.transport": {
        "PipeTransport", "SharedMemoryTransport", "SocketTransport",
    },
    "repro.service.replication": {"PipeServiceWire", "TcpServiceWire"},
}

#: Files allowed to name concrete component classes directly: the home
#: modules themselves, the registry's lazy loaders, and package
#: __init__ re-exports (public API surface).
_REGISTRY_EXEMPT = ("distributed/transport.py", "service/replication.py",
                    "api/registry.py")


class ApiHygieneRule(Rule):
    """RPL004: no deprecated shims, frozen configs, registry resolution."""

    rule_id = "RPL004"
    title = "API hygiene: shims, frozen configs, registry-resolved components"
    scope = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_deprecated_kwargs(ctx)
        yield from self._check_frozen_configs(ctx)
        yield from self._check_registry_resolution(ctx)

    def _check_deprecated_kwargs(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.walk(ast.Call):
            name = ctx.call_name(call)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            for banned in _DEPRECATED_KWARGS.get(tail, ()):
                for keyword in call.keywords:
                    if keyword.arg == banned:
                        yield self.finding(
                            ctx, keyword.value,
                            f"{tail}({banned}=...) is the deprecated "
                            "pre-plan-API alias (DeprecationWarning at "
                            "runtime; the deprecation-strict CI job fails "
                            "on it); internal code uses backend=/"
                            "ExecutionConfig",
                        )

    def _check_frozen_configs(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk(ast.ClassDef):
            if not node.name.endswith("Config"):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) \
                    else decorator
                resolved = ctx.resolve(target) or ""
                if resolved.rsplit(".", 1)[-1] != "dataclass":
                    continue
                frozen = isinstance(decorator, ast.Call) and any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
                if not frozen:
                    yield self.finding(
                        ctx, node,
                        f"config dataclass {node.name} is not frozen: "
                        "configs are value objects shared across plan "
                        "resolution, pickled worker factories, and "
                        "replicas — mutation after resolve desynchronises "
                        "them; declare @dataclass(frozen=True)",
                    )

    def _check_registry_resolution(self, ctx: ModuleContext) -> Iterator[Finding]:
        rel = ctx.package_rel or ""
        if rel in _REGISTRY_EXEMPT or rel.endswith("__init__.py"):
            return
        for node in ctx.walk(ast.ImportFrom):
            concrete = _REGISTRY_ONLY.get(node.module or "")
            if not concrete:
                continue
            for alias in node.names:
                if alias.name in concrete:
                    yield self.finding(
                        ctx, node,
                        f"direct import of concrete component "
                        f"{alias.name}: execution components are resolved "
                        "by name through repro.api.registry (TRANSPORTS / "
                        "SERVICE_TRANSPORTS) so plans stay declarative and "
                        "plugins can substitute implementations",
                    )


# ----------------------------------------------------------------------
# RPL005 — concurrency
# ----------------------------------------------------------------------
_MUTABLE_DEFAULT_SCOPE = ("distributed/", "service/")
_LOCK_IO_SCOPE = ("service/",)
_BLOCKING_SEND_METHODS = {"sendall"}


def _is_mutable_default(ctx: ModuleContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and ctx.call_name(node) in ("list", "dict", "set", "bytearray")
    )


class ConcurrencyRule(Rule):
    """RPL005: no I/O under the durability lock, no bare except, no
    mutable defaults across pickle boundaries."""

    rule_id = "RPL005"
    title = "concurrency: lock discipline, typed excepts, pickle-safe defaults"
    scope = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_bare_except(ctx)
        rel = ctx.package_rel or ""
        if any(rel.startswith(p) for p in _MUTABLE_DEFAULT_SCOPE):
            yield from self._check_mutable_defaults(ctx)
        if any(rel.startswith(p) for p in _LOCK_IO_SCOPE):
            yield from self._check_io_under_lock(ctx)

    def _check_bare_except(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk(ast.ExceptHandler):
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` also swallows KeyboardInterrupt and "
                    "SystemExit, turning a worker kill into a silent hang "
                    "at the next barrier; catch the concrete exceptions "
                    "(or at most Exception)",
                )

    def _check_mutable_defaults(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(ctx, default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument on {node.name}(): in "
                        "the worker-pickled planes a shared default that "
                        "mutates pre-fork diverges between driver and "
                        "respawned workers; default to None and allocate "
                        "inside the body",
                    )

    def _check_io_under_lock(self, ctx: ModuleContext) -> Iterator[Finding]:
        for with_node in ctx.walk(ast.With):
            if not self._holds_lock(ctx, with_node):
                continue
            for body_stmt in with_node.body:
                for sub in ast.walk(body_stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = ctx.call_name(sub)
                    if name == "os.fsync":
                        yield self.finding(
                            ctx, sub,
                            "fsync while holding the store lock: every "
                            "append/rotate/recover path now queues behind "
                            "disk latency; move the fsync outside the "
                            "critical section or justify the serialisation",
                        )
                    elif (
                        isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _BLOCKING_SEND_METHODS
                    ):
                        yield self.finding(
                            ctx, sub,
                            "blocking socket send while holding the store "
                            "lock: a stalled peer freezes every other "
                            "lock path; buffer under the lock, send "
                            "outside it",
                        )

    def _holds_lock(self, ctx: ModuleContext, node: ast.With) -> bool:
        for item in node.items:
            resolved = ctx.resolve(item.context_expr)
            if resolved and "lock" in resolved.rsplit(".", 1)[-1].lower():
                return True
        return False


RULES.register("RPL001", DeterminismRule)
RULES.register("RPL002", ObsOverheadRule)
RULES.register("RPL003", ResourceDisciplineRule)
RULES.register("RPL004", ApiHygieneRule)
RULES.register("RPL005", ConcurrencyRule)
