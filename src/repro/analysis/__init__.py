"""Static invariant checking: the repo's contracts, enforced at diff time.

This package is the *static* half of the correctness story.  The dynamic
half — matrix tests proving covers and CommStats bit-identical across
engines/transports/crash-replay/failover, the ``sys.modules`` booby-trap
for the obs zero-overhead rule, the SIGKILL tests asserting ``/dev/shm``
stays clean — only catches a violation if a test happens to execute the
offending path.  The rules here (``RPL001``–``RPL005``, see
:mod:`repro.analysis.rules` and DESIGN.md "Static invariants") encode the
same contracts as AST checks that run on every file of every diff,
before any test does::

    from repro.analysis import run_checks

    findings = run_checks(["src/repro"])   # [] on a clean tree

or from the shell / CI::

    PYTHONPATH=src python -m repro.cli lint src/repro --format github

Layered like the rest of the repo:

* :mod:`~repro.analysis.findings` — the :class:`Finding` value object;
* :mod:`~repro.analysis.context` — parsed-module context (parent links,
  import-alias resolution, scope qualnames), the :class:`Rule` base
  class, and the :data:`RULES` registry (same mechanism as
  :mod:`repro.api.registry`, open to plugins);
* :mod:`~repro.analysis.rules` — the built-in rule pack;
* :mod:`~repro.analysis.suppressions` — ``# repro-lint: disable=RPLnnn
  -- reason`` inline exemptions, audited (reason required, unused
  disables reported);
* :mod:`~repro.analysis.baseline` — committed JSON debt ledger for
  grandfathered findings (every entry carries a justification);
* :mod:`~repro.analysis.runner` — discovery, execution, text/json/github
  formatting, per-rule stats.

Dependency-free by construction: stdlib ``ast`` only, no numpy, and —
per RPL002's own contract — no :mod:`repro.obs`.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import ModuleContext, Rule, RULES, all_rules
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.runner import (
    FORMATTERS,
    LintReport,
    check_source,
    format_github,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
    run_checks,
)
from repro.analysis.suppressions import FRAMEWORK_RULE, SuppressionSheet
import repro.analysis.rules  # noqa: F401  (registers the built-in pack)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "ModuleContext",
    "Rule",
    "RULES",
    "all_rules",
    "ERROR",
    "WARNING",
    "Finding",
    "FORMATTERS",
    "LintReport",
    "check_source",
    "format_github",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "run_checks",
    "FRAMEWORK_RULE",
    "SuppressionSheet",
]
