"""Findings: what a rule reports, how it sorts, and how it serialises.

A :class:`Finding` is one violation of one static invariant at one source
location.  Findings are value objects — frozen, hashable, order-defined —
so the runner can deduplicate them, the baseline can match them across
runs, and the formatters can emit them deterministically (sorted by
``(path, line, col, rule)``) regardless of rule-execution order.

The :meth:`Finding.baseline_key` deliberately excludes the line number:
baselined findings must survive unrelated edits above them in the file,
so the key is ``(rule, path, symbol)`` — the enclosing function or class
qualname pins the site instead of the drifting line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ERROR", "WARNING", "SEVERITIES", "Finding"]

#: Severity levels.  ``error`` findings fail the lint (exit code 1);
#: ``warning`` findings are reported but do not gate, unless the caller
#: promotes them (``repro lint --strict``).
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One static-invariant violation at one source location."""

    rule: str          #: rule id, e.g. ``"RPL001"``
    path: str          #: posix path as analysed (repo-relative in CI)
    line: int          #: 1-based line of the offending node
    col: int           #: 0-based column of the offending node
    message: str       #: human explanation, ends with the invariant
    severity: str = ERROR
    symbol: str = ""   #: enclosing ``Class.method`` qualname ('' = module)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "symbol": self.symbol,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=str(payload["message"]),
            severity=str(payload.get("severity", ERROR)),
            symbol=str(payload.get("symbol", "")),
        )

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def __str__(self) -> str:
        return f"{self.location()}: {self.rule} {self.severity}: {self.message}"
