"""Runner: file discovery, rule execution, report, output formats.

The flow, per file: parse once into a :class:`ModuleContext`, run every
applicable rule, drop findings covered by inline suppressions, then
append the suppression audit (unused / reason-less disables).  Across
files, the optional :class:`~repro.analysis.baseline.Baseline` splits
findings into *fresh* (gate the lint) and *grandfathered* (counted
only), and stale baseline entries are surfaced so the file shrinks.

Three output formats:

* ``text`` — ``path:line:col: RULE severity: message`` plus a summary
  line (and per-rule counts with ``--stats``);
* ``json`` — the full report as one machine-readable object;
* ``github`` — ``::error``/``::warning`` workflow commands, so a CI run
  annotates the offending lines of the diff directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import ModuleContext, Rule, all_rules
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.suppressions import FRAMEWORK_RULE, SuppressionSheet

__all__ = [
    "LintReport",
    "run_checks",
    "lint_paths",
    "check_source",
    "iter_python_files",
    "format_text",
    "format_json",
    "format_github",
]


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def check_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    audit_suppressions: bool = True,
) -> List[Finding]:
    """All findings for one module's source text (sorted, deduplicated)."""
    active = list(rules) if rules is not None else all_rules()
    posix = Path(path).as_posix()
    try:
        ctx = ModuleContext(posix, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=FRAMEWORK_RULE,
                path=posix,
                line=exc.lineno or 1,
                col=max((exc.offset or 1) - 1, 0),
                message=f"syntax error: {exc.msg}",
                severity=ERROR,
            )
        ]
    sheet = SuppressionSheet(source, ctx.path)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not sheet.suppresses(finding):
                findings.append(finding)
    if audit_suppressions:
        findings.extend(sheet.audit())
    return sorted(set(findings), key=Finding.sort_key)


class LintReport:
    """Outcome of one lint run over a set of files."""

    def __init__(
        self,
        findings: List[Finding],
        grandfathered: List[Finding],
        stale_baseline: List[BaselineEntry],
        files_checked: int,
    ):
        self.findings = sorted(findings, key=Finding.sort_key)
        self.grandfathered = sorted(grandfathered, key=Finding.sort_key)
        self.stale_baseline = stale_baseline
        self.files_checked = files_checked

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 gating findings (errors; +warnings when strict)."""
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0

    def summary(self) -> str:
        parts = [
            f"{len(self.errors())} error(s)",
            f"{len(self.warnings())} warning(s)",
            f"{self.files_checked} file(s) analyzed",
        ]
        if self.grandfathered:
            parts.append(f"{len(self.grandfathered)} grandfathered")
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(ies)")
        return ", ".join(parts)


def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files/directories; the library API behind ``repro lint``."""
    files = iter_python_files(paths)
    all_findings: List[Finding] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        all_findings.extend(check_source(source, str(path), rules))
    if baseline is None:
        return LintReport(all_findings, [], [], len(files))
    fresh, grandfathered, stale = baseline.split(all_findings)
    return LintReport(fresh, grandfathered, stale, len(files))


def run_checks(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Gating findings for ``paths`` — the one-call library entry point."""
    return lint_paths(paths, rules=rules, baseline=baseline).findings


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def format_text(report: LintReport, stats: bool = False) -> str:
    lines = [str(finding) for finding in report.findings]
    for entry in report.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry {entry.rule} "
            f"(symbol {entry.symbol or '<module>'!r}) no longer matches "
            "anything — remove it from the baseline"
        )
    lines.append(report.summary())
    if stats:
        lines.append("per-rule finding counts:")
        counts = report.counts_by_rule()
        if counts:
            lines.extend(f"  {rule}: {count}" for rule, count in counts.items())
        else:
            lines.append("  (none)")
    return "\n".join(lines) + "\n"


def format_json(report: LintReport, stats: bool = False) -> str:
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_dict() for f in report.findings],
        "grandfathered": [f.to_dict() for f in report.grandfathered],
        "stale_baseline": [e.to_dict() for e in report.stale_baseline],
        "counts_by_rule": report.counts_by_rule(),
    }
    return json.dumps(payload, indent=2) + "\n"


def _github_escape(text: str) -> str:
    """Escape per GitHub workflow-command rules (%0A newlines etc.)."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(report: LintReport, stats: bool = False) -> str:
    lines = []
    for finding in report.findings:
        kind = "error" if finding.severity == ERROR else "warning"
        lines.append(
            f"::{kind} file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::"
            + _github_escape(finding.message)
        )
    lines.append(f"::notice::repro-lint: {report.summary()}")
    if stats:
        for rule, count in report.counts_by_rule().items():
            lines.append(f"::notice::repro-lint {rule}: {count} finding(s)")
    return "\n".join(lines) + "\n"


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}
