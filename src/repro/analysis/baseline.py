"""Committed JSON baseline for grandfathered findings.

The baseline is the *temporary* escape hatch: when a new rule lands
against an old tree, pre-existing findings can be recorded here so the
rule gates new code immediately while the backlog is burned down.  Three
properties keep it honest:

* every entry MUST carry a non-empty ``justification`` string — loading a
  baseline with a silent entry is an error, exactly like a reason-less
  inline disable;
* entries match findings by :meth:`Finding.baseline_key` — ``(rule,
  path, symbol)`` — so they survive line drift but die with the file or
  function they excuse;
* entries that no longer match anything are reported by the runner as
  stale, so a fixed violation is followed by shrinking the file in the
  same PR.

The inline ``# repro-lint: disable=`` comment is for *intentional*,
permanent exemptions and lives next to the code it excuses; the baseline
is for *debt*.  (This tree ships an empty baseline: every real finding
was fixed or inline-justified.)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.analysis.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class BaselineEntry:
    """One grandfathered finding site."""

    def __init__(self, rule: str, path: str, symbol: str, justification: str):
        if not justification or not justification.strip():
            raise ValueError(
                f"baseline entry {rule} @ {path}:{symbol or '<module>'} "
                "has no justification; every grandfathered finding must "
                "say why it is allowed to stay"
            )
        self.rule = rule
        self.path = path
        self.symbol = symbol
        self.justification = justification.strip()

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "BaselineEntry":
        return cls(
            rule=str(payload.get("rule", "")),
            path=str(payload.get("path", "")),
            symbol=str(payload.get("symbol", "")),
            justification=str(payload.get("justification", "")),
        )


class Baseline:
    """The committed set of grandfathered findings."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a repro-lint baseline file")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(this tool writes version {BASELINE_VERSION})"
            )
        try:
            entries = [BaselineEntry.from_dict(e) for e in payload["entries"]]
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str
    ) -> "Baseline":
        """Grandfather ``findings`` (one entry per distinct site)."""
        seen = set()
        entries = []
        for finding in findings:
            key = finding.baseline_key()
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=justification,
                )
            )
        return cls(entries)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (fresh, grandfathered) + stale entries.

        Fresh findings gate the lint; grandfathered ones are reported as
        counts only; stale entries (matched nothing this run) are
        surfaced so the baseline shrinks as violations are fixed.
        """
        by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        matched = set()
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            entry = by_key.get(finding.baseline_key())
            if entry is None:
                fresh.append(finding)
            else:
                matched.add(entry.key())
                grandfathered.append(finding)
        stale = [e for e in self.entries if e.key() not in matched]
        return fresh, grandfathered, stale

    def __len__(self) -> int:
        return len(self.entries)
