"""Array-native distributed programs: Algorithms 1 and SLPA over columns.

The columnar counterparts of
:class:`~repro.distributed.programs.RSLPAPropagationProgram` and
:class:`~repro.distributed.programs.SLPAPropagationProgram`: per-vertex
state lives in ``(T+1, n_local)`` int64 matrices, the shard's adjacency is
consumed as a local CSR pair, and every superstep is a handful of
broadcast hash-kernel calls (:func:`slot_hash_array` et al.) over whole
inbox columns instead of a Python loop per message.

Both programs are **bit-identical** to their tuple-plane counterparts —
same messages (so the engine's CommStats agree counter for counter), same
collected results — because every random draw comes from the same
counter-based slot hash over the same ascending neighbour sequences; the
test suite asserts the equivalence across seeds, partitioners and shard
backends.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.slpa import _SEND, _TIE
from repro.core.labels import NO_SOURCE
from repro.core.randomness import (
    _C_SRC,
    draw_position_array,
    draw_src_index_array,
    mix64_array,
    slot_hash_array,
)
from repro.distributed.engine_array import ArrayWorkerProgram
from repro.distributed.message_array import ArrayInbox, ArrayMessageContext
from repro.distributed.worker import CSRShard, WorkerShard

__all__ = [
    "FastRSLPAPropagationProgram",
    "FastSLPAPropagationProgram",
    "shard_local_csr",
]


def shard_local_csr(
    shard: WorkerShard,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The shard's adjacency as ``(local_ids, indptr, indices)`` arrays.

    ``local_ids`` is ascending (so destination rows resolve with one
    ``searchsorted``); row ``r`` of the CSR pair is the ascending global-id
    neighbour list of ``local_ids[r]``.  A :class:`CSRShard` already *is*
    this — its arrays are returned as-is; the dict backend is converted
    once at program construction.
    """
    if isinstance(shard, CSRShard):
        return shard.local_ids, shard.indptr, shard.indices
    ids = sorted(shard.vertices)
    lengths = np.fromiter(
        (len(shard.adjacency[v]) for v in ids), dtype=np.int64, count=len(ids)
    )
    indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.fromiter(
        (u for v in ids for u in shard.adjacency[v]), dtype=np.int64, count=total
    )
    return np.asarray(ids, dtype=np.int64), indptr, indices


class _LocalStateProgram(ArrayWorkerProgram):
    """Shared shard-local CSR plumbing for the array programs."""

    def __init__(self, shard: WorkerShard, seed: int, iterations: int):
        super().__init__(shard)
        self.seed = seed
        self.iterations = iterations
        self.local_ids, self.indptr, self.indices = shard_local_csr(shard)
        self.degrees = np.diff(self.indptr)
        self.n_local = len(self.local_ids)

    def _rows_of(self, dst: np.ndarray) -> np.ndarray:
        """Local matrix columns of the (owned) global ids in ``dst``.

        Fails loudly on a destination this shard does not own (a partitioner
        whose assignment disagrees with how the shards were built), like the
        tuple programs' ``KeyError`` — a bare searchsorted would silently
        scatter into a neighbouring vertex's column instead.
        """
        rows = np.searchsorted(self.local_ids, dst)
        owned = rows < self.n_local
        owned[owned] = self.local_ids[rows[owned]] == dst[owned]
        if not owned.all():
            raise KeyError(
                f"inbox destinations not owned by worker "
                f"{self.shard.worker_id}: {dst[~owned][:5].tolist()}"
            )
        return rows


class FastRSLPAPropagationProgram(_LocalStateProgram):
    """Algorithm 1's fetch protocol, one column batch per superstep.

    Same two-superstep iteration and message kinds as the tuple program
    (``req``/``lab``); labels, sources and positions live in
    ``(T+1, n_local)`` matrices pre-filled with the degree-0 fallback
    (own label, ``NO_SOURCE`` provenance), so the per-iteration scatter of
    received labels is the only state write.
    """

    def __init__(self, shard: WorkerShard, seed: int, iterations: int):
        super().__init__(shard, seed, iterations)
        shape = (iterations + 1, self.n_local)
        self.labels = np.tile(self.local_ids, (iterations + 1, 1))
        self.srcs = np.full(shape, NO_SOURCE, dtype=np.int64)
        self.poss = np.full(shape, NO_SOURCE, dtype=np.int64)

    def _send_requests(self, ctx: ArrayMessageContext, t: int) -> None:
        mask = self.degrees > 0
        if not mask.any():
            return
        h = slot_hash_array(self.seed, self.local_ids, t, 0)
        src_idx = draw_src_index_array(h, self.degrees)
        pos = draw_position_array(h, t)
        # Degree-0 rows get a clamped placeholder gather; masked out below.
        gather = np.minimum(self.indptr[:-1] + src_idx, self.indices.size - 1)
        src = self.indices[gather]
        requesters = self.local_ids[mask]
        ctx.send_columns(
            "req",
            src[mask],
            pos[mask],
            requesters,
            np.full(len(requesters), t, dtype=np.int64),
        )

    def on_start(self, ctx: ArrayMessageContext) -> None:
        if self.iterations >= 1:
            self._send_requests(ctx, 1)

    def on_superstep(
        self, ctx: ArrayMessageContext, superstep: int, inbox: ArrayInbox
    ) -> None:
        advanced_t = None
        lab = inbox.columns("lab")
        if lab is not None:
            dst, label, src, pos, t_col = lab
            advanced_t = int(t_col[0])
            rows = self._rows_of(dst)
            self.labels[advanced_t, rows] = label
            self.srcs[advanced_t, rows] = src
            self.poss[advanced_t, rows] = pos
        req = inbox.columns("req")
        if req is not None:
            dst, pos, requester, t_col = req
            rows = self._rows_of(dst)
            ctx.send_columns(
                "lab", requester, self.labels[pos, rows], dst, pos, t_col
            )
        if advanced_t is not None and advanced_t < self.iterations:
            self._send_requests(ctx, advanced_t + 1)

    def collect(self) -> dict:
        """Per-vertex (labels, srcs, poss) — the tuple program's format."""
        label_seqs = self.labels.T.tolist()
        src_seqs = self.srcs.T.tolist()
        pos_seqs = self.poss.T.tolist()
        return {
            v: (label_seqs[r], src_seqs[r], pos_seqs[r])
            for r, v in enumerate(self.local_ids.tolist())
        }


class FastSLPAPropagationProgram(_LocalStateProgram):
    """The SLPA push protocol over columns: one ``spk`` row per directed edge.

    Speaker draws reuse the reference program's composite edge key; the
    per-listener plurality + tie-break is the
    :class:`~repro.baselines.slpa_fast.FastSLPA` lexsort construction run
    on the inbox columns of one worker.
    """

    def __init__(self, shard: WorkerShard, seed: int, iterations: int):
        super().__init__(shard, seed, iterations)
        self.memory = np.tile(self.local_ids, (iterations + 1, 1))
        # One row per directed local edge: speaker row r repeats degree[r]
        # times; the composite key matches the reference speaker draw.
        self._speaker_rows = np.repeat(
            np.arange(self.n_local, dtype=np.int64), self.degrees
        )
        self._edge_key = (
            self.local_ids[self._speaker_rows] * np.int64(0x1F1F1F1F)
            + self.indices
        )

    def _speak(self, ctx: ArrayMessageContext, t: int) -> None:
        if self.indices.size == 0:
            return
        h = slot_hash_array(self.seed ^ _SEND, self._edge_key, t, 0)
        pos = draw_position_array(h, t)
        spoken = self.memory[pos, self._speaker_rows]
        ctx.send_columns(
            "spk",
            self.indices,
            spoken,
            np.full(self.indices.size, t, dtype=np.int64),
        )

    def on_start(self, ctx: ArrayMessageContext) -> None:
        if self.iterations >= 1:
            self._speak(ctx, 1)

    def on_superstep(
        self, ctx: ArrayMessageContext, superstep: int, inbox: ArrayInbox
    ) -> None:
        spk = inbox.columns("spk")
        if spk is None:
            return
        dst, label, t_col = spk
        t = int(t_col[0])
        rows = self._rows_of(dst)
        picked_rows, picked_labels = self._plurality(rows, label, t)
        self.memory[t, picked_rows] = picked_labels
        if t < self.iterations:
            self._speak(ctx, t + 1)

    def _plurality(
        self, rows: np.ndarray, labels: np.ndarray, t: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Plurality winner per listener row, reference tie-break included."""
        # Inbox columns arrive (dst, fields...)-sorted, so (row, label) runs
        # are already grouped; keep the explicit lexsort for independence
        # from the delivery order (it is O(m log m) on sorted input anyway).
        order = np.lexsort((labels, rows))
        sorted_row = rows[order]
        sorted_label = labels[order]
        new_run = np.empty(len(order), dtype=bool)
        new_run[0] = True
        new_run[1:] = (sorted_row[1:] != sorted_row[:-1]) | (
            sorted_label[1:] != sorted_label[:-1]
        )
        run_starts = np.flatnonzero(new_run)
        run_row = sorted_row[run_starts]
        run_label = sorted_label[run_starts]
        run_counts = np.diff(np.append(run_starts, len(order)))

        # Max votes per listener group.
        first_run = np.empty(len(run_starts), dtype=bool)
        first_run[0] = True
        first_run[1:] = run_row[1:] != run_row[:-1]
        group_starts = np.flatnonzero(first_run)
        max_per_group = np.maximum.reduceat(run_counts, group_starts)
        group_index = np.cumsum(first_run) - 1
        is_winner = run_counts == max_per_group[group_index]

        # Winners per listener in ascending label order; rank within group.
        winner_idx = np.flatnonzero(is_winner)
        winner_row = run_row[winner_idx]
        winner_label = run_label[winner_idx]
        first_winner = np.empty(len(winner_idx), dtype=bool)
        first_winner[0] = True
        first_winner[1:] = winner_row[1:] != winner_row[:-1]
        winner_group_start = np.flatnonzero(first_winner)
        winners_per_listener = np.diff(
            np.append(winner_group_start, len(winner_idx))
        )
        rank_in_group = np.arange(len(winner_idx)) - np.repeat(
            winner_group_start, winners_per_listener
        )

        # Reference tie-break: mix64(slot_hash(seed^TIE, listener, t) ^ C_SRC)
        # % num_winners indexes the ascending winner list.
        unique_listeners = self.local_ids[winner_row[winner_group_start]]
        tie_h = slot_hash_array(self.seed ^ _TIE, unique_listeners, t, 0)
        chosen_rank = (
            mix64_array(tie_h ^ np.uint64(_C_SRC))
            % winners_per_listener.astype(np.uint64)
        ).astype(np.int64)
        picked = rank_in_group == np.repeat(chosen_rank, winners_per_listener)
        return winner_row[picked], winner_label[picked]

    def collect(self) -> Dict[int, list]:
        """Per-vertex memory sequences — the tuple program's format."""
        memory_seqs = self.memory.T.tolist()
        return {
            v: memory_seqs[r] for r, v in enumerate(self.local_ids.tolist())
        }
