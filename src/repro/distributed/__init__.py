"""Distributed substrate: BSP engines, vertex programs, comm accounting.

Two independent axes select how a distributed run executes, mirroring the
library's two-representation architecture (see :mod:`repro.graph`):

**Shard storage** (``shard_backend=`` on the cluster wrappers):

* dict-backed :class:`WorkerShard` (:func:`build_shards`) — sorted
  neighbour lists sliced from the mutable :class:`~repro.graph.Graph`;
  works for arbitrary vertex ids and is the default.
* CSR-backed :class:`CSRShard` (:func:`build_csr_shards`) — local
  ``indptr``/``indices`` arrays (read-only, so programs cannot corrupt
  the shared adjacency) sliced straight out of an immutable
  :class:`~repro.graph.CSRGraph` snapshot by
  :func:`repro.graph.partition.slice_csr`.

**Message plane** (``engine=`` on the cluster wrappers, ``plane=`` on the
multiprocess backend):

* the **tuple plane** — :class:`BSPEngine` routes Python
  ``(dst, payload)`` tuples one ``partitioner.owner()`` call at a time
  and delivers sorted tuple inboxes to
  :class:`~repro.distributed.engine.WorkerProgram` subclasses
  (:mod:`repro.distributed.programs`);
* the **columnar plane** — :class:`ArrayBSPEngine` accumulates sends as
  typed struct-of-arrays int64 columns
  (:mod:`repro.distributed.message_array`), routes a whole superstep with
  one vectorised ``owner_array`` gather + lexsort barrier, and delivers
  per-kind column inboxes to
  :class:`~repro.distributed.engine_array.ArrayWorkerProgram` subclasses
  (:mod:`repro.distributed.programs_array`); tuple programs run here
  unmodified through :class:`TupleProgramAdapter`.

**Data transport** (``transport=`` on the multiprocess backend and
:class:`~repro.api.config.ExecutionConfig`) — how superstep payloads move
between the driver and real OS worker processes; in-process engines pass
references and have no transport axis.  The plane × transport matrix:

====================  ===========  ==========================================
transport             planes       payload path
====================  ===========  ==========================================
``pipe`` (reference)  tuple+array  pickled over the control pipes
``shm`` (zero-copy)   array only   packed int64 columns written in place into
                                   double-buffered ``multiprocessing.
                                   shared_memory`` rings; the pipes carry only
                                   ``(segment, layout)`` index headers and the
                                   reader maps read-only views
``tcp`` (two hosts)   array only   the same framed columns over localhost
                                   sockets (length-prefixed layout +
                                   ``sendall``/``recv_into`` raw bytes)
====================  ===========  ==========================================

Every (shard backend × message plane × transport) combination is
bit-identical — same results, same per-superstep :class:`CommStats`
counters — because all programs derive their randomness from the same
counter-based slot hashes over the same ascending neighbour sequences,
and routing/accounting always run on the driver before any transport
touches the columns; ``engine="auto"`` prefers the columnar plane on CSR
shards and ``transport="auto"`` prefers shared memory whenever the array
plane runs multiprocess.  Both shard kinds and both program flavours are
picklable, so the in-process engines and the
:class:`MultiprocessBSPEngine` accept either.

Axis negotiation lives in one place: the cluster wrappers accept an
:class:`~repro.api.config.ExecutionConfig` (``config=``; the per-axis
keywords are shims onto it), every ``auto`` resolves through
:func:`repro.api.plan.resolve_plan`, and engines/programs/named
partitioners/transports are looked up in :mod:`repro.api.registry` —
``ExecutionConfig(multiprocess=True)`` routes the propagation wrappers
through the multiprocess engine with identical results and stats.  A
worker process that dies mid-run raises :class:`WorkerCrashedError`
naming the dead worker instead of hanging the driver.

**Fault tolerance** (``fault_tolerance=True`` on
:class:`MultiprocessBSPEngine` or :class:`~repro.api.config.
ExecutionConfig`) upgrades that crash detection to supervised recovery:
the driver checkpoints a consistent cut (CRC-validated program snapshots
plus materialised outboxes) every ``checkpoint_interval`` supersteps,
respawns dead workers, restores the cut on every worker, and replays —
covers and per-superstep :class:`CommStats` stay bit-identical to a
failure-free run because all randomness is counter-keyed inside the
snapshot.  :class:`RecoveryStats` counts the cost; failures are scripted
deterministically with a :class:`FaultPlan`
(:mod:`repro.distributed.faults`) for testing.
"""

from repro.distributed.cluster import (
    run_distributed_postprocess,
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.distributed.components import (
    HashToMinProgram,
    distributed_connected_components,
)
from repro.distributed.engine import BSPEngine, MessageContext, WorkerProgram
from repro.distributed.engine_array import (
    ArrayBSPEngine,
    ArrayWorkerProgram,
    TupleProgramAdapter,
)
from repro.distributed.message import Message, message_size_bytes, payload_size_bytes
from repro.distributed.message_array import (
    SCHEMAS,
    ArrayInbox,
    ArrayMessageContext,
    MessageSchema,
    register_schema,
    route_columns,
)
from repro.distributed.faults import FaultPlan
from repro.distributed.metrics import CommStats, RecoveryStats, SuperstepStats
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.transport import (
    PipeTransport,
    SharedMemoryTransport,
    SocketTransport,
    Transport,
    WorkerCrashedError,
)
from repro.distributed.programs import (
    CorrectionPropagationProgram,
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.programs_array import (
    FastRSLPAPropagationProgram,
    FastSLPAPropagationProgram,
    shard_local_csr,
)
from repro.distributed.worker import (
    CSRShard,
    WorkerShard,
    build_csr_shards,
    build_shards,
)

__all__ = [
    "BSPEngine",
    "ArrayBSPEngine",
    "MessageContext",
    "ArrayMessageContext",
    "ArrayInbox",
    "WorkerProgram",
    "ArrayWorkerProgram",
    "TupleProgramAdapter",
    "WorkerShard",
    "CSRShard",
    "build_shards",
    "build_csr_shards",
    "shard_local_csr",
    "Message",
    "message_size_bytes",
    "payload_size_bytes",
    "MessageSchema",
    "SCHEMAS",
    "register_schema",
    "route_columns",
    "CommStats",
    "SuperstepStats",
    "RecoveryStats",
    "FaultPlan",
    "RSLPAPropagationProgram",
    "SLPAPropagationProgram",
    "CorrectionPropagationProgram",
    "FastRSLPAPropagationProgram",
    "FastSLPAPropagationProgram",
    "HashToMinProgram",
    "distributed_connected_components",
    "MultiprocessBSPEngine",
    "Transport",
    "PipeTransport",
    "SharedMemoryTransport",
    "SocketTransport",
    "WorkerCrashedError",
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]
