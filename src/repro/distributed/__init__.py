"""Distributed substrate: BSP engine, vertex programs, comm accounting."""

from repro.distributed.cluster import (
    run_distributed_postprocess,
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.distributed.components import (
    HashToMinProgram,
    distributed_connected_components,
)
from repro.distributed.engine import BSPEngine, MessageContext, WorkerProgram
from repro.distributed.message import Message, message_size_bytes, payload_size_bytes
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import (
    CorrectionPropagationProgram,
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.worker import WorkerShard, build_shards

__all__ = [
    "BSPEngine",
    "MessageContext",
    "WorkerProgram",
    "WorkerShard",
    "build_shards",
    "Message",
    "message_size_bytes",
    "payload_size_bytes",
    "CommStats",
    "SuperstepStats",
    "RSLPAPropagationProgram",
    "SLPAPropagationProgram",
    "CorrectionPropagationProgram",
    "HashToMinProgram",
    "distributed_connected_components",
    "MultiprocessBSPEngine",
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]
