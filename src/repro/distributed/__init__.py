"""Distributed substrate: BSP engine, vertex programs, comm accounting.

Worker shards come in **two storage backends** behind one API, mirroring
the library's two-representation architecture (see :mod:`repro.graph`):

* dict-backed :class:`WorkerShard` (:func:`build_shards`) — sorted
  neighbour lists sliced from the mutable :class:`~repro.graph.Graph`;
  works for arbitrary vertex ids and is the default.
* CSR-backed :class:`CSRShard` (:func:`build_csr_shards`) — local
  ``indptr``/``indices`` arrays sliced straight out of an immutable
  :class:`~repro.graph.CSRGraph` snapshot by
  :func:`repro.graph.partition.slice_csr`, so the BSP programs scan arrays
  instead of dict sets.

Every program in :mod:`repro.distributed.programs` is backend-agnostic and
bit-identical across backends (the shard API guarantees ascending neighbour
sequences either way); the high-level wrappers in
:mod:`repro.distributed.cluster` select a backend via ``shard_backend=``.
Both shard kinds are picklable, so the in-process :class:`BSPEngine` and the
:class:`MultiprocessBSPEngine` accept either.
"""

from repro.distributed.cluster import (
    run_distributed_postprocess,
    run_distributed_rslpa,
    run_distributed_slpa,
    run_distributed_update,
)
from repro.distributed.components import (
    HashToMinProgram,
    distributed_connected_components,
)
from repro.distributed.engine import BSPEngine, MessageContext, WorkerProgram
from repro.distributed.message import Message, message_size_bytes, payload_size_bytes
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.multiprocess import MultiprocessBSPEngine
from repro.distributed.programs import (
    CorrectionPropagationProgram,
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.worker import (
    CSRShard,
    WorkerShard,
    build_csr_shards,
    build_shards,
)

__all__ = [
    "BSPEngine",
    "MessageContext",
    "WorkerProgram",
    "WorkerShard",
    "CSRShard",
    "build_shards",
    "build_csr_shards",
    "Message",
    "message_size_bytes",
    "payload_size_bytes",
    "CommStats",
    "SuperstepStats",
    "RSLPAPropagationProgram",
    "SLPAPropagationProgram",
    "CorrectionPropagationProgram",
    "HashToMinProgram",
    "distributed_connected_components",
    "MultiprocessBSPEngine",
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]
