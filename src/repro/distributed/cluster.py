"""High-level distributed runs: one-call wrappers over the BSP engine.

These functions mirror the sequential APIs but execute on the simulated
cluster, returning both the result and the :class:`CommStats` needed by the
communication-cost experiments:

* :func:`run_distributed_rslpa` — Algorithm 1, 2 supersteps/iteration,
  ``O(|V|)`` messages per iteration;
* :func:`run_distributed_slpa` — the baseline, 1 superstep/iteration,
  ``O(|E|)`` messages per iteration;
* :func:`run_distributed_update` — Algorithm 2 over workers, ``O(η)``
  messages total;
* :func:`run_distributed_postprocess` — weights + τ2 locally per worker,
  τ1 sweep on the driver, communities via distributed hash-to-min CC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.communities import Cover
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import edge_weights, sweep_tau1, weak_threshold
from repro.distributed.components import distributed_connected_components
from repro.distributed.engine import BSPEngine
from repro.distributed.engine_array import ArrayBSPEngine, TupleProgramAdapter
from repro.distributed.metrics import CommStats
from repro.distributed.programs import (
    CorrectionPropagationProgram,
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.programs_array import (
    FastRSLPAPropagationProgram,
    FastSLPAPropagationProgram,
)
from repro.distributed.worker import CSRShard, build_csr_shards, build_shards
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch, apply_batch
from repro.graph.partition import HashPartitioner, Partitioner

__all__ = [
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]


def _resolve_partitioner(
    partitioner: Optional[Partitioner], num_workers: int
) -> Partitioner:
    return partitioner or HashPartitioner(num_workers)


def _ids_contiguous(graph) -> bool:
    if isinstance(graph, CSRGraph):
        return True
    n = graph.num_vertices
    if n == 0:
        return True
    ids = list(graph.vertices())  # ids are unique, so min/max suffice
    return min(ids) == 0 and max(ids) == n - 1


def _build_backend_shards(graph, part: Partitioner, shard_backend: str):
    """Build worker shards on the requested local-adjacency backend.

    ``"dict"`` walks the mutable :class:`Graph`; ``"csr"`` slices a
    :class:`CSRGraph` snapshot (built on demand when ``graph`` is a dict
    graph) without round-tripping through per-vertex Python structures;
    ``"auto"`` picks CSR whenever the ids are contiguous ``0..n-1`` (the
    CSR slicer's contract).  A :class:`CSRGraph` input always takes the
    CSR path.
    """
    if shard_backend not in ("auto", "dict", "csr"):
        raise ValueError(
            f"shard_backend must be 'auto', 'dict' or 'csr', "
            f"got {shard_backend!r}"
        )
    if shard_backend == "auto":
        shard_backend = "csr" if _ids_contiguous(graph) else "dict"
    if isinstance(graph, CSRGraph) or shard_backend == "csr":
        return build_csr_shards(graph, part)
    return build_shards(graph, part)


def _merge_array_rslpa_state(programs, iterations: int) -> LabelState:
    """Fully-recorded :class:`LabelState` from array-program matrices.

    Produces exactly what the tuple-plane merge below builds from per-vertex
    lists, but from the ``(T+1, n_local)`` matrices: sequence dicts come
    from one ``tolist`` per matrix, and the reverse records from one
    ``nonzero`` + ``lexsort`` group-split over all recorded slots instead
    of a per-slot Python loop.
    """
    state = LabelState()
    ids_parts, srcs_parts, poss_parts = [], [], []
    for program in programs:
        if program.n_local == 0:
            continue
        ids_parts.append(program.local_ids)
        srcs_parts.append(program.srcs)
        poss_parts.append(program.poss)
        vids = program.local_ids.tolist()
        state.labels.update(zip(vids, program.labels.T.tolist()))
        state.srcs.update(zip(vids, program.srcs.T.tolist()))
        state.poss.update(zip(vids, program.poss.T.tolist()))
        state.epochs.update((v, [0] * (iterations + 1)) for v in vids)
        state.receivers.update((v, {}) for v in vids)
    if ids_parts:
        ids = np.concatenate(ids_parts)
        srcs_m = np.concatenate(srcs_parts, axis=1)[1:, :]
        poss_m = np.concatenate(poss_parts, axis=1)[1:, :]
        t_idx, v_idx = np.nonzero(srcs_m != NO_SOURCE)
        if len(t_idx):
            src = srcs_m[t_idx, v_idx]
            pos = poss_m[t_idx, v_idx]
            order = np.lexsort((t_idx, v_idx, pos, src))
            src_s, pos_s = src[order], pos[order]
            new_group = np.empty(len(order), dtype=bool)
            new_group[0] = True
            new_group[1:] = (src_s[1:] != src_s[:-1]) | (pos_s[1:] != pos_s[:-1])
            starts = np.flatnonzero(new_group).tolist()
            starts.append(len(order))
            src_l, pos_l = src_s.tolist(), pos_s.tolist()
            pairs = list(
                zip(ids[v_idx[order]].tolist(), (t_idx[order] + 1).tolist())
            )
            for a, b in zip(starts, starts[1:]):
                state.receivers[src_l[a]][pos_l[a]] = set(pairs[a:b])
    state.set_num_iterations(iterations)
    return state


def _assemble_array_rslpa_state(programs, iterations: int) -> ArrayLabelState:
    """:class:`ArrayLabelState` straight from array-program matrices.

    The array plane's native export: per-worker ``(T+1, n_local)`` matrices
    scatter into global matrices by vertex id and the reverse records come
    from the state's vectorised ``reindex`` — no per-vertex Python at all.
    Requires contiguous vertex ids ``0..n-1`` (the array-state contract).
    """
    n = sum(program.n_local for program in programs)
    parts = [program.local_ids for program in programs if program.n_local]
    ids = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if n and (int(ids.min()) < 0 or int(ids.max()) + 1 != n):
        raise ValueError(
            "state_format='array' requires contiguous vertex ids 0..n-1; "
            "use state_format='dict' or repro.graph.relabel_to_integers"
        )
    shape = (iterations + 1, n)
    labels = np.empty(shape, dtype=np.int64)
    srcs = np.empty(shape, dtype=np.int64)
    poss = np.empty(shape, dtype=np.int64)
    for program in programs:
        if program.n_local == 0:
            continue
        labels[:, program.local_ids] = program.labels
        srcs[:, program.local_ids] = program.srcs
        poss[:, program.local_ids] = program.poss
    return ArrayLabelState.from_matrices(labels, srcs, poss)


def _resolve_engine(engine: str, shards) -> str:
    """Pick the message plane: ``auto`` prefers columnar on CSR shards."""
    if engine not in ("auto", "reference", "array"):
        raise ValueError(
            f"engine must be 'auto', 'reference' or 'array', got {engine!r}"
        )
    if engine == "auto":
        return "array" if isinstance(shards[0], CSRShard) else "reference"
    return engine


def run_distributed_rslpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 200,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
    state_format: str = "dict",
) -> Tuple[Union[LabelState, ArrayLabelState], CommStats]:
    """Algorithm 1 on the simulated cluster; returns (state, comm stats).

    The returned state is fully recorded (provenance + reverse records) and
    bit-identical to a sequential :class:`ReferencePropagator` run —
    on either shard backend (``graph`` may also be a :class:`CSRGraph`)
    and on either message plane (``engine="reference"`` routes Python
    tuples, ``"array"`` routes struct-of-arrays columns; ``"auto"`` takes
    the array plane on CSR shards).  ``state_format="array"`` returns an
    :class:`~repro.core.labels_array.ArrayLabelState` (contiguous ids
    required) — the array engine's native export, assembled without any
    per-vertex Python, and what the fast incremental lifecycle consumes.
    """
    if state_format not in ("dict", "array"):
        raise ValueError(
            f"state_format must be 'dict' or 'array', got {state_format!r}"
        )
    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(graph, part, shard_backend)
    if _resolve_engine(engine, shards) == "array":
        bsp = ArrayBSPEngine(shards, part)
        programs = [
            FastRSLPAPropagationProgram(shard, seed=seed, iterations=iterations)
            for shard in shards
        ]
        bsp.run(programs)
        if state_format == "array":
            return _assemble_array_rslpa_state(programs, iterations), bsp.stats
        return _merge_array_rslpa_state(programs, iterations), bsp.stats
    bsp = BSPEngine(shards, part)
    programs = [
        RSLPAPropagationProgram(shard, seed=seed, iterations=iterations)
        for shard in shards
    ]
    bsp.run(programs)

    state = LabelState()
    collected: Dict[int, tuple] = {}
    for program in programs:
        collected.update(program.collect())
    for v, (labels, srcs, poss) in collected.items():
        state.labels[v] = list(labels)
        state.srcs[v] = list(srcs)
        state.poss[v] = list(poss)
        state.epochs[v] = [0] * len(labels)
        state.receivers[v] = {}
    for v, (labels, srcs, poss) in collected.items():
        for t in range(1, len(labels)):
            src = srcs[t]
            if src != NO_SOURCE:
                state.receivers[src].setdefault(poss[t], set()).add((v, t))
    state.set_num_iterations(iterations)
    if state_format == "array":
        return ArrayLabelState.from_label_state(state), bsp.stats
    return state, bsp.stats


def run_distributed_slpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 100,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
) -> Tuple[Dict[int, List[int]], CommStats]:
    """The SLPA baseline on the simulated cluster; returns (memories, stats)."""
    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(graph, part, shard_backend)
    if _resolve_engine(engine, shards) == "array":
        bsp = ArrayBSPEngine(shards, part)
        programs = [
            FastSLPAPropagationProgram(shard, seed=seed, iterations=iterations)
            for shard in shards
        ]
    else:
        bsp = BSPEngine(shards, part)
        programs = [
            SLPAPropagationProgram(shard, seed=seed, iterations=iterations)
            for shard in shards
        ]
    bsp.run(programs)
    memories: Dict[int, List[int]] = {}
    for program in programs:
        memories.update(program.collect())
    return memories, bsp.stats


def run_distributed_update(
    graph: Graph,
    state: LabelState,
    batch: EditBatch,
    seed: int = 0,
    batch_epoch: int = 1,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
) -> Tuple[Graph, LabelState, CommStats]:
    """Algorithm 2 on the simulated cluster.

    Takes the *pre-batch* graph and label state; returns the updated graph,
    the repaired state (same object, mutated), and communication stats.
    ``batch_epoch`` must count batches the same way the sequential
    :class:`CorrectionPropagator` does for the randomness to line up.
    ``shard_backend="csr"`` requires the post-batch graph to keep
    contiguous ids ``0..n-1``.  ``engine="array"`` runs the correction
    program through the columnar message plane (same repairs, same stats).
    """
    if shard_backend not in ("auto", "dict", "csr"):
        raise ValueError(
            f"shard_backend must be 'auto', 'dict' or 'csr', "
            f"got {shard_backend!r}"
        )
    batch.validate_against(graph)
    if shard_backend != "dict":  # an explicit dict never needs the id scan
        post_ids = set(graph.vertices()) | set(batch.touched_vertices())
        post_contiguous = not post_ids or (
            min(post_ids) >= 0 and max(post_ids) + 1 == len(post_ids)
        )
        if shard_backend == "auto":
            shard_backend = "csr" if post_contiguous else "dict"
        if shard_backend == "csr" and not post_contiguous:
            # Fail before mutating anything: apply_batch edits the caller's
            # graph (and the loop below pads the caller's state) in place,
            # and the CSR slicer would reject non-contiguous ids only
            # afterwards.
            raise ValueError(
                "shard_backend='csr' requires the post-batch graph to keep "
                "contiguous vertex ids 0..n-1; use shard_backend='dict' or "
                "repro.graph.relabel_to_integers"
            )
    new_graph = apply_batch(graph, batch)
    added = batch.added_neighbors()
    removed = batch.removed_neighbors()
    for v in set(added) | set(removed):
        if not state.has_vertex(v):
            state.init_vertex(v)
            for _ in range(state.num_iterations):
                state.labels[v].append(v)
                state.srcs[v].append(NO_SOURCE)
                state.poss[v].append(NO_SOURCE)
                state.epochs[v].append(0)

    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(new_graph, part, shard_backend)
    programs = []
    for shard in shards:
        local = shard.vertices
        programs.append(
            CorrectionPropagationProgram(
                shard,
                seed=seed,
                iterations=state.num_iterations,
                labels={v: state.labels[v] for v in local},
                srcs={v: state.srcs[v] for v in local},
                poss={v: state.poss[v] for v in local},
                epochs={v: state.epochs[v] for v in local},
                receivers={v: state.receivers[v] for v in local},
                added={v: s for v, s in added.items() if v in local},
                removed={v: s for v, s in removed.items() if v in local},
                batch_epoch=batch_epoch,
            )
        )
    if _resolve_engine(engine, shards) == "array":
        # The correction program stays tuple-level (its cascade is sparse,
        # O(eta) messages); the adapter runs it unmodified on the columnar
        # plane, exercising the vectorised barrier end to end.
        bsp = ArrayBSPEngine(shards, part)
        bsp.run([TupleProgramAdapter(program) for program in programs])
    else:
        bsp = BSPEngine(shards, part)
        bsp.run(programs)
    # Worker slices alias the state's own lists/dicts, so the state is
    # already repaired in place; nothing to merge back.
    return new_graph, state, bsp.stats


def run_distributed_postprocess(
    graph: Graph,
    state: LabelState,
    num_workers: int = 4,
    step: float = 0.001,
) -> Tuple[Cover, CommStats]:
    """Section III-B extraction with the CC stage on the cluster.

    Edge weights and τ2 are cheap one-round aggregations (computed directly
    here); the connected-components stage — the round-dominant part the
    paper discusses — runs distributed, and its stats are returned.
    """
    weights = edge_weights(graph, state.labels)
    tau2 = weak_threshold(graph, weights)
    tau1, _entropy, _curve = sweep_tau1(graph, weights, tau2, step=step)
    components, stats = distributed_connected_components(
        graph, num_workers=num_workers, weights=weights, tau=tau1
    )
    strong = [c for c in components if len(c) >= 2]
    strong_members: Set[int] = set()
    community_of: Dict[int, int] = {}
    communities: List[Set[int]] = []
    for cid, component in enumerate(strong):
        communities.append(set(component))
        strong_members.update(component)
        for v in component:
            community_of[v] = cid
    for v in graph.vertices():
        if v in strong_members:
            continue
        for u in graph.neighbors_view(v):
            if u not in strong_members:
                continue
            edge = (u, v) if u < v else (v, u)
            if weights[edge] >= tau2 - 1e-12:
                communities[community_of[u]].add(v)
    return Cover(communities), stats
