"""High-level distributed runs: one-call wrappers over the BSP engine.

These functions mirror the sequential APIs but execute on the simulated
cluster, returning both the result and the :class:`CommStats` needed by the
communication-cost experiments:

* :func:`run_distributed_rslpa` — Algorithm 1, 2 supersteps/iteration,
  ``O(|V|)`` messages per iteration;
* :func:`run_distributed_slpa` — the baseline, 1 superstep/iteration,
  ``O(|E|)`` messages per iteration;
* :func:`run_distributed_update` — Algorithm 2 over workers, ``O(η)``
  messages total;
* :func:`run_distributed_postprocess` — weights + τ2 locally per worker,
  τ1 sweep on the driver, communities via distributed hash-to-min CC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.communities import Cover
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.postprocess import edge_weights, sweep_tau1, weak_threshold
from repro.distributed.components import distributed_connected_components
from repro.distributed.engine import BSPEngine
from repro.distributed.metrics import CommStats
from repro.distributed.programs import (
    CorrectionPropagationProgram,
    RSLPAPropagationProgram,
    SLPAPropagationProgram,
)
from repro.distributed.worker import build_csr_shards, build_shards
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch, apply_batch
from repro.graph.partition import HashPartitioner, Partitioner

__all__ = [
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]


def _resolve_partitioner(
    partitioner: Optional[Partitioner], num_workers: int
) -> Partitioner:
    return partitioner or HashPartitioner(num_workers)


def _build_backend_shards(graph, part: Partitioner, shard_backend: str):
    """Build worker shards on the requested local-adjacency backend.

    ``"dict"`` walks the mutable :class:`Graph`; ``"csr"`` slices a
    :class:`CSRGraph` snapshot (built on demand when ``graph`` is a dict
    graph) without round-tripping through per-vertex Python structures.
    A :class:`CSRGraph` input always takes the CSR path.
    """
    if shard_backend not in ("dict", "csr"):
        raise ValueError(
            f"shard_backend must be 'dict' or 'csr', got {shard_backend!r}"
        )
    if isinstance(graph, CSRGraph) or shard_backend == "csr":
        return build_csr_shards(graph, part)
    return build_shards(graph, part)


def run_distributed_rslpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 200,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
) -> Tuple[LabelState, CommStats]:
    """Algorithm 1 on the simulated cluster; returns (state, comm stats).

    The returned state is fully recorded (provenance + reverse records) and
    bit-identical to a sequential :class:`ReferencePropagator` run —
    on either shard backend (``graph`` may also be a :class:`CSRGraph`).
    """
    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(graph, part, shard_backend)
    engine = BSPEngine(shards, part)
    programs = [
        RSLPAPropagationProgram(shard, seed=seed, iterations=iterations)
        for shard in shards
    ]
    engine.run(programs)

    state = LabelState()
    collected: Dict[int, tuple] = {}
    for program in programs:
        collected.update(program.collect())
    for v, (labels, srcs, poss) in collected.items():
        state.labels[v] = list(labels)
        state.srcs[v] = list(srcs)
        state.poss[v] = list(poss)
        state.epochs[v] = [0] * len(labels)
        state.receivers[v] = {}
    for v, (labels, srcs, poss) in collected.items():
        for t in range(1, len(labels)):
            src = srcs[t]
            if src != NO_SOURCE:
                state.receivers[src].setdefault(poss[t], set()).add((v, t))
    state.set_num_iterations(iterations)
    return state, engine.stats


def run_distributed_slpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 100,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
) -> Tuple[Dict[int, List[int]], CommStats]:
    """The SLPA baseline on the simulated cluster; returns (memories, stats)."""
    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(graph, part, shard_backend)
    engine = BSPEngine(shards, part)
    programs = [
        SLPAPropagationProgram(shard, seed=seed, iterations=iterations)
        for shard in shards
    ]
    engine.run(programs)
    memories: Dict[int, List[int]] = {}
    for program in programs:
        memories.update(program.collect())
    return memories, engine.stats


def run_distributed_update(
    graph: Graph,
    state: LabelState,
    batch: EditBatch,
    seed: int = 0,
    batch_epoch: int = 1,
    num_workers: int = 4,
    partitioner: Optional[Partitioner] = None,
    shard_backend: str = "dict",
) -> Tuple[Graph, LabelState, CommStats]:
    """Algorithm 2 on the simulated cluster.

    Takes the *pre-batch* graph and label state; returns the updated graph,
    the repaired state (same object, mutated), and communication stats.
    ``batch_epoch`` must count batches the same way the sequential
    :class:`CorrectionPropagator` does for the randomness to line up.
    ``shard_backend="csr"`` requires the post-batch graph to keep
    contiguous ids ``0..n-1``.
    """
    if shard_backend not in ("dict", "csr"):
        raise ValueError(
            f"shard_backend must be 'dict' or 'csr', got {shard_backend!r}"
        )
    batch.validate_against(graph)
    if shard_backend == "csr":
        # Fail before mutating anything: apply_batch edits the caller's
        # graph (and the loop below pads the caller's state) in place, and
        # the CSR slicer would reject non-contiguous ids only afterwards.
        ids = set(graph.vertices()) | set(batch.touched_vertices())
        if ids and (min(ids) < 0 or max(ids) + 1 != len(ids)):
            raise ValueError(
                "shard_backend='csr' requires the post-batch graph to keep "
                "contiguous vertex ids 0..n-1; use shard_backend='dict' or "
                "repro.graph.relabel_to_integers"
            )
    new_graph = apply_batch(graph, batch)
    added = batch.added_neighbors()
    removed = batch.removed_neighbors()
    for v in set(added) | set(removed):
        if not state.has_vertex(v):
            state.init_vertex(v)
            for _ in range(state.num_iterations):
                state.labels[v].append(v)
                state.srcs[v].append(NO_SOURCE)
                state.poss[v].append(NO_SOURCE)
                state.epochs[v].append(0)

    part = _resolve_partitioner(partitioner, num_workers)
    shards = _build_backend_shards(new_graph, part, shard_backend)
    engine = BSPEngine(shards, part)
    programs = []
    for shard in shards:
        local = shard.vertices
        programs.append(
            CorrectionPropagationProgram(
                shard,
                seed=seed,
                iterations=state.num_iterations,
                labels={v: state.labels[v] for v in local},
                srcs={v: state.srcs[v] for v in local},
                poss={v: state.poss[v] for v in local},
                epochs={v: state.epochs[v] for v in local},
                receivers={v: state.receivers[v] for v in local},
                added={v: s for v, s in added.items() if v in local},
                removed={v: s for v, s in removed.items() if v in local},
                batch_epoch=batch_epoch,
            )
        )
    engine.run(programs)
    # Worker slices alias the state's own lists/dicts, so the state is
    # already repaired in place; nothing to merge back.
    return new_graph, state, engine.stats


def run_distributed_postprocess(
    graph: Graph,
    state: LabelState,
    num_workers: int = 4,
    step: float = 0.001,
) -> Tuple[Cover, CommStats]:
    """Section III-B extraction with the CC stage on the cluster.

    Edge weights and τ2 are cheap one-round aggregations (computed directly
    here); the connected-components stage — the round-dominant part the
    paper discusses — runs distributed, and its stats are returned.
    """
    weights = edge_weights(graph, state.labels)
    tau2 = weak_threshold(graph, weights)
    tau1, _entropy, _curve = sweep_tau1(graph, weights, tau2, step=step)
    components, stats = distributed_connected_components(
        graph, num_workers=num_workers, weights=weights, tau=tau1
    )
    strong = [c for c in components if len(c) >= 2]
    strong_members: Set[int] = set()
    community_of: Dict[int, int] = {}
    communities: List[Set[int]] = []
    for cid, component in enumerate(strong):
        communities.append(set(component))
        strong_members.update(component)
        for v in component:
            community_of[v] = cid
    for v in graph.vertices():
        if v in strong_members:
            continue
        for u in graph.neighbors_view(v):
            if u not in strong_members:
                continue
            edge = (u, v) if u < v else (v, u)
            if weights[edge] >= tau2 - 1e-12:
                communities[community_of[u]].add(v)
    return Cover(communities), stats
