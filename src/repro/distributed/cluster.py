"""High-level distributed runs: one-call wrappers over the BSP engines.

These functions mirror the sequential APIs but execute on the simulated
cluster, returning both the result and the :class:`CommStats` needed by the
communication-cost experiments:

* :func:`run_distributed_rslpa` — Algorithm 1, 2 supersteps/iteration,
  ``O(|V|)`` messages per iteration;
* :func:`run_distributed_slpa` — the baseline, 1 superstep/iteration,
  ``O(|E|)`` messages per iteration;
* :func:`run_distributed_update` — Algorithm 2 over workers, ``O(η)``
  messages total;
* :func:`run_distributed_postprocess` — weights + τ2 locally per worker,
  τ1 sweep on the driver, communities via distributed hash-to-min CC.

Execution selection is centralised: the per-call keywords
(``num_workers`` / ``engine`` / ``shard_backend`` / ``state_format`` /
``partitioner``) are shims that build an
:class:`~repro.api.config.ExecutionConfig` (pass ``config=`` to supply one
directly — it takes precedence), and every ``auto`` is negotiated by
:func:`repro.api.plan.resolve_plan`.  Engines, worker programs, and named
partitioners come from :mod:`repro.api.registry`, so plugged-in components
resolve exactly like the built-ins.  ``config.multiprocess=True`` runs the
propagation wrappers on real OS processes
(:class:`~repro.distributed.multiprocess.MultiprocessBSPEngine`) with
bit-identical results and stats; ``config.transport`` picks the data
plane those processes exchange supersteps over (``auto`` resolves to the
zero-copy shared-memory rings whenever the array plane runs
multiprocess).
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.api.config import ExecutionConfig
from repro.api.plan import GraphCaps, RunPlan, resolve_plan
from repro.api.registry import ENGINES, PROGRAMS
from repro.core.communities import Cover
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import edge_weights, sweep_tau1, weak_threshold
from repro.distributed.components import distributed_connected_components
from repro.distributed.engine_array import TupleProgramAdapter
from repro.distributed.metrics import CommStats
from repro.distributed.worker import build_csr_shards, build_shards
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch, apply_batch
from repro.graph.partition import Partitioner

__all__ = [
    "run_distributed_rslpa",
    "run_distributed_slpa",
    "run_distributed_update",
    "run_distributed_postprocess",
]


def _execution_config(
    config: Optional[ExecutionConfig],
    num_workers: int,
    partitioner: Optional[Union[str, Partitioner]],
    shard_backend: str,
    engine: str,
    state_format: str = "auto",
) -> ExecutionConfig:
    """The keyword shim: kwargs become a config unless one was passed.

    A passed config takes precedence over the per-axis keywords; these
    wrappers are always distributed, so a config that left ``num_workers``
    at its local default of 0 inherits the wrapper's worker count.
    """
    if config is not None:
        if config.num_workers == 0:
            config = replace(config, num_workers=num_workers)
        return config
    return ExecutionConfig(
        num_workers=num_workers,
        partitioner=partitioner,
        shard_backend=shard_backend,
        engine=engine,
        state_format=state_format,
    )


def _build_shards_for(plan: RunPlan, graph, part: Partitioner):
    """Build worker shards on the plan's (already negotiated) backend."""
    if plan.shard_backend == "csr":
        return build_csr_shards(graph, part)
    return build_shards(graph, part)


def _obs_for(plan: RunPlan):
    """A fresh observability context when the plan traces, else ``None``."""
    if not plan.trace:
        return None
    from repro.obs import Obs

    return Obs()


def _attach_obs(bsp, plan: RunPlan) -> None:
    """Wire tracing onto an in-process engine when the plan asks for it.

    The engine records its spans through ``bsp.obs``; parking the same
    context on ``bsp.stats.obs`` is what lets the result objects (and the
    service) surface the trace without any signature changes.  The
    multiprocess engine takes ``obs=`` at construction instead.
    """
    obs = _obs_for(plan)
    if obs is None:
        return
    obs.meta.setdefault("mode", "in-process")
    obs.meta.setdefault("engine", plan.engine)
    obs.meta.setdefault("num_workers", plan.num_workers)
    bsp.obs = obs
    bsp.stats.obs = obs


def _merge_collected_rslpa_state(collected: Dict[int, tuple], iterations: int) -> LabelState:
    """Fully-recorded :class:`LabelState` from per-vertex collect() tuples.

    This is the plane-agnostic merge: tuple programs, array programs, and
    multiprocess workers all export the same per-vertex
    ``(labels, srcs, poss)`` format.
    """
    state = LabelState()
    for v, (labels, srcs, poss) in collected.items():
        state.labels[v] = list(labels)
        state.srcs[v] = list(srcs)
        state.poss[v] = list(poss)
        state.epochs[v] = [0] * len(labels)
        state.receivers[v] = {}
    for v, (labels, srcs, poss) in collected.items():
        for t in range(1, len(labels)):
            src = srcs[t]
            if src != NO_SOURCE:
                state.receivers[src].setdefault(poss[t], set()).add((v, t))
    state.set_num_iterations(iterations)
    return state


def _merge_array_rslpa_state(programs, iterations: int) -> LabelState:
    """Fully-recorded :class:`LabelState` from array-program matrices.

    Produces exactly what :func:`_merge_collected_rslpa_state` builds from
    per-vertex lists, but from the ``(T+1, n_local)`` matrices: sequence
    dicts come from one ``tolist`` per matrix, and the reverse records from
    one ``nonzero`` + ``lexsort`` group-split over all recorded slots
    instead of a per-slot Python loop.
    """
    state = LabelState()
    ids_parts, srcs_parts, poss_parts = [], [], []
    for program in programs:
        if program.n_local == 0:
            continue
        ids_parts.append(program.local_ids)
        srcs_parts.append(program.srcs)
        poss_parts.append(program.poss)
        vids = program.local_ids.tolist()
        state.labels.update(zip(vids, program.labels.T.tolist()))
        state.srcs.update(zip(vids, program.srcs.T.tolist()))
        state.poss.update(zip(vids, program.poss.T.tolist()))
        state.epochs.update((v, [0] * (iterations + 1)) for v in vids)
        state.receivers.update((v, {}) for v in vids)
    if ids_parts:
        ids = np.concatenate(ids_parts)
        srcs_m = np.concatenate(srcs_parts, axis=1)[1:, :]
        poss_m = np.concatenate(poss_parts, axis=1)[1:, :]
        t_idx, v_idx = np.nonzero(srcs_m != NO_SOURCE)
        if len(t_idx):
            src = srcs_m[t_idx, v_idx]
            pos = poss_m[t_idx, v_idx]
            order = np.lexsort((t_idx, v_idx, pos, src))
            src_s, pos_s = src[order], pos[order]
            new_group = np.empty(len(order), dtype=bool)
            new_group[0] = True
            new_group[1:] = (src_s[1:] != src_s[:-1]) | (pos_s[1:] != pos_s[:-1])
            starts = np.flatnonzero(new_group).tolist()
            starts.append(len(order))
            src_l, pos_l = src_s.tolist(), pos_s.tolist()
            pairs = list(
                zip(ids[v_idx[order]].tolist(), (t_idx[order] + 1).tolist())
            )
            for a, b in zip(starts, starts[1:]):
                state.receivers[src_l[a]][pos_l[a]] = set(pairs[a:b])
    state.set_num_iterations(iterations)
    return state


def _assemble_array_rslpa_state(programs, iterations: int) -> ArrayLabelState:
    """:class:`ArrayLabelState` straight from array-program matrices.

    The array plane's native export: per-worker ``(T+1, n_local)`` matrices
    scatter into global matrices by vertex id and the reverse records come
    from the state's vectorised ``reindex`` — no per-vertex Python at all.
    Requires contiguous vertex ids ``0..n-1`` (the array-state contract).
    """
    n = sum(program.n_local for program in programs)
    parts = [program.local_ids for program in programs if program.n_local]
    ids = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if n and (int(ids.min()) < 0 or int(ids.max()) + 1 != n):
        raise ValueError(
            "state_format='array' requires contiguous vertex ids 0..n-1; "
            "use state_format='dict' or repro.graph.relabel_to_integers"
        )
    shape = (iterations + 1, n)
    labels = np.empty(shape, dtype=np.int64)
    srcs = np.empty(shape, dtype=np.int64)
    poss = np.empty(shape, dtype=np.int64)
    for program in programs:
        if program.n_local == 0:
            continue
        labels[:, program.local_ids] = program.labels
        srcs[:, program.local_ids] = program.srcs
        poss[:, program.local_ids] = program.poss
    return ArrayLabelState.from_matrices(labels, srcs, poss)


def _run_multiprocess(plan: RunPlan, shards, part, program_cls, seed, iterations):
    """Run a propagation program on real OS processes; returns (collected, stats)."""
    from repro.distributed.multiprocess import MultiprocessBSPEngine

    factory = partial(program_cls, seed=seed, iterations=iterations)
    plane = "array" if plan.engine == "array" else "tuple"
    fault_kwargs = {}
    if plan.fault_tolerance:
        # resolve_plan already made both knobs concrete for fault-tolerant
        # plans; the engine defaults only back-stop direct construction.
        fault_kwargs = dict(
            fault_tolerance=True,
            checkpoint_interval=plan.checkpoint_interval,
            max_restarts=plan.max_restarts,
        )
    with MultiprocessBSPEngine(
        shards,
        part,
        factory,
        plane=plane,
        transport=plan.transport or "pipe",
        obs=_obs_for(plan),
        **fault_kwargs,
    ) as engine:
        engine.run()
        results = engine.collect()
    collected: Dict[int, tuple] = {}
    for worker_result in results:
        collected.update(worker_result)
    return collected, engine.stats


def run_distributed_rslpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 200,
    num_workers: int = 4,
    partitioner: Optional[Union[str, Partitioner]] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
    state_format: str = "dict",
    config: Optional[ExecutionConfig] = None,
) -> Tuple[Union[LabelState, ArrayLabelState], CommStats]:
    """Algorithm 1 on the simulated cluster; returns (state, comm stats).

    The returned state is fully recorded (provenance + reverse records) and
    bit-identical to a sequential :class:`ReferencePropagator` run —
    on either shard backend (``graph`` may also be a :class:`CSRGraph`),
    on either message plane (``engine="reference"`` routes Python
    tuples, ``"array"`` routes struct-of-arrays columns; ``"auto"`` takes
    the array plane on CSR shards), in-process or on real OS processes
    (``config.multiprocess``).  ``state_format="array"`` returns an
    :class:`~repro.core.labels_array.ArrayLabelState` (contiguous ids
    required) — the array engine's native export, assembled without any
    per-vertex Python, and what the fast incremental lifecycle consumes.
    All ``auto`` negotiation happens in
    :func:`repro.api.plan.resolve_plan`; ``config=`` supplies the
    :class:`~repro.api.config.ExecutionConfig` directly and overrides the
    per-axis keywords.
    """
    cfg = _execution_config(
        config, num_workers, partitioner, shard_backend, engine, state_format
    )
    plan = resolve_plan(GraphCaps.of(graph), cfg)
    part = plan.build_partitioner()
    shards = _build_shards_for(plan, graph, part)
    program_cls = PROGRAMS.resolve(f"rslpa/{plan.engine}")

    if plan.multiprocess:
        collected, stats = _run_multiprocess(
            plan, shards, part, program_cls, seed, iterations
        )
        state = _merge_collected_rslpa_state(collected, iterations)
        if plan.state_format == "array":
            return ArrayLabelState.from_label_state(state), stats
        return state, stats

    bsp = ENGINES.resolve(plan.engine)(shards, part)
    _attach_obs(bsp, plan)
    programs = [
        program_cls(shard, seed=seed, iterations=iterations) for shard in shards
    ]
    bsp.run(programs)
    if plan.engine == "array":
        if plan.state_format == "array":
            return _assemble_array_rslpa_state(programs, iterations), bsp.stats
        return _merge_array_rslpa_state(programs, iterations), bsp.stats

    collected: Dict[int, tuple] = {}
    for program in programs:
        collected.update(program.collect())
    state = _merge_collected_rslpa_state(collected, iterations)
    if plan.state_format == "array":
        return ArrayLabelState.from_label_state(state), bsp.stats
    return state, bsp.stats


def run_distributed_slpa(
    graph: Graph,
    seed: int = 0,
    iterations: int = 100,
    num_workers: int = 4,
    partitioner: Optional[Union[str, Partitioner]] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
    config: Optional[ExecutionConfig] = None,
) -> Tuple[Dict[int, List[int]], CommStats]:
    """The SLPA baseline on the simulated cluster; returns (memories, stats)."""
    cfg = _execution_config(config, num_workers, partitioner, shard_backend, engine)
    plan = resolve_plan(GraphCaps.of(graph), cfg)
    part = plan.build_partitioner()
    shards = _build_shards_for(plan, graph, part)
    program_cls = PROGRAMS.resolve(f"slpa/{plan.engine}")
    if plan.multiprocess:
        memories, stats = _run_multiprocess(
            plan, shards, part, program_cls, seed, iterations
        )
        return memories, stats
    bsp = ENGINES.resolve(plan.engine)(shards, part)
    _attach_obs(bsp, plan)
    programs = [
        program_cls(shard, seed=seed, iterations=iterations) for shard in shards
    ]
    bsp.run(programs)
    memories: Dict[int, List[int]] = {}
    for program in programs:
        memories.update(program.collect())
    return memories, bsp.stats


def run_distributed_update(
    graph: Graph,
    state: LabelState,
    batch: EditBatch,
    seed: int = 0,
    batch_epoch: int = 1,
    num_workers: int = 4,
    partitioner: Optional[Union[str, Partitioner]] = None,
    shard_backend: str = "dict",
    engine: str = "auto",
    config: Optional[ExecutionConfig] = None,
) -> Tuple[Graph, LabelState, CommStats]:
    """Algorithm 2 on the simulated cluster.

    Takes the *pre-batch* graph and label state; returns the updated graph,
    the repaired state (same object, mutated), and communication stats.
    ``batch_epoch`` must count batches the same way the sequential
    :class:`CorrectionPropagator` does for the randomness to line up.
    ``shard_backend="csr"`` requires the post-batch graph to keep
    contiguous ids ``0..n-1`` (the plan is resolved against the
    *post-batch* capabilities, and fails before mutating anything).
    ``engine="array"`` runs the correction program through the columnar
    message plane (same repairs, same stats).
    """
    cfg = _execution_config(config, num_workers, partitioner, shard_backend, engine)
    if cfg.multiprocess:
        raise ValueError(
            "run_distributed_update repairs the caller's state in place; "
            "multiprocess workers cannot share it (use the in-process engine)"
        )
    batch.validate_against(graph)
    # Resolve against the POST-batch graph: apply_batch edits the caller's
    # graph (and the loop below pads the caller's state) in place, so a
    # plan the batch would invalidate must fail before mutating anything.
    post_ids = set(graph.vertices()) | set(batch.touched_vertices())
    post_contiguous = not post_ids or (
        min(post_ids) >= 0 and max(post_ids) + 1 == len(post_ids)
    )
    caps = GraphCaps(
        num_vertices=len(post_ids),
        num_edges=graph.num_edges,
        contiguous_ids=post_contiguous,
        is_csr=isinstance(graph, CSRGraph),
    )
    plan = resolve_plan(caps, cfg)
    new_graph = apply_batch(graph, batch)
    added = batch.added_neighbors()
    removed = batch.removed_neighbors()
    for v in set(added) | set(removed):
        if not state.has_vertex(v):
            state.init_vertex(v)
            for _ in range(state.num_iterations):
                state.labels[v].append(v)
                state.srcs[v].append(NO_SOURCE)
                state.poss[v].append(NO_SOURCE)
                state.epochs[v].append(0)

    part = plan.build_partitioner()
    shards = _build_shards_for(plan, new_graph, part)
    program_cls = PROGRAMS.resolve("correction/reference")
    programs = []
    for shard in shards:
        local = shard.vertices
        programs.append(
            program_cls(
                shard,
                seed=seed,
                iterations=state.num_iterations,
                labels={v: state.labels[v] for v in local},
                srcs={v: state.srcs[v] for v in local},
                poss={v: state.poss[v] for v in local},
                epochs={v: state.epochs[v] for v in local},
                receivers={v: state.receivers[v] for v in local},
                added={v: s for v, s in added.items() if v in local},
                removed={v: s for v, s in removed.items() if v in local},
                batch_epoch=batch_epoch,
            )
        )
    bsp = ENGINES.resolve(plan.engine)(shards, part)
    _attach_obs(bsp, plan)
    if plan.engine == "array":
        # The correction program stays tuple-level (its cascade is sparse,
        # O(eta) messages); the adapter runs it unmodified on the columnar
        # plane, exercising the vectorised barrier end to end.
        bsp.run([TupleProgramAdapter(program) for program in programs])
    else:
        bsp.run(programs)
    # Worker slices alias the state's own lists/dicts, so the state is
    # already repaired in place; nothing to merge back.
    return new_graph, state, bsp.stats


def run_distributed_postprocess(
    graph: Graph,
    state: LabelState,
    num_workers: int = 4,
    step: float = 0.001,
) -> Tuple[Cover, CommStats]:
    """Section III-B extraction with the CC stage on the cluster.

    Edge weights and τ2 are cheap one-round aggregations (computed directly
    here); the connected-components stage — the round-dominant part the
    paper discusses — runs distributed, and its stats are returned.
    """
    weights = edge_weights(graph, state.labels)
    tau2 = weak_threshold(graph, weights)
    tau1, _entropy, _curve = sweep_tau1(graph, weights, tau2, step=step)
    components, stats = distributed_connected_components(
        graph, num_workers=num_workers, weights=weights, tau=tau1
    )
    strong = [c for c in components if len(c) >= 2]
    strong_members: Set[int] = set()
    community_of: Dict[int, int] = {}
    communities: List[Set[int]] = []
    for cid, component in enumerate(strong):
        communities.append(set(component))
        strong_members.update(component)
        for v in component:
            community_of[v] = cid
    for v in graph.vertices():
        if v in strong_members:
            continue
        for u in graph.neighbors_view(v):
            if u not in strong_members:
                continue
            edge = (u, v) if u < v else (v, u)
            if weights[edge] >= tau2 - 1e-12:
                communities[community_of[u]].add(v)
    return Cover(communities), stats
