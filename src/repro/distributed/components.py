"""Distributed connected components in logarithmic rounds (hash-to-min).

The rSLPA post-processing finds communities as connected components of the
τ1-filtered weight graph; the paper cites Chitnis et al. (ICDE 2013,
ref. [18]) for an ``O(log d)``-round MapReduce algorithm.  This module
implements the **Hash-to-Min** scheme from that line of work on the BSP
engine:

* every vertex ``v`` keeps a cluster set ``C_v``, initially ``{v} ∪ N(v)``;
* each round, ``v`` sends ``C_v`` to ``m = min(C_v)`` and ``{m}`` to every
  other member of ``C_v``; clusters are replaced by the union of received
  sets;
* at convergence ``min(C_v)`` is the component representative for every
  ``v`` (and the representative's cluster holds its whole component).

Vertices only re-send when their cluster changed (delta sending), so the
engine's message-quiescence rule doubles as convergence detection.

Edge filtering (``weights``/``tau``) runs the algorithm on the subgraph of
edges with weight >= τ — exactly what the distributed post-processing needs
without materialising the filtered graph (Section V-B2).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.distributed.engine import BSPEngine, MessageContext, WorkerProgram
from repro.distributed.metrics import CommStats
from repro.distributed.worker import WorkerShard, build_shards
from repro.graph.adjacency import Graph
from repro.graph.partition import HashPartitioner, Partitioner

__all__ = ["HashToMinProgram", "distributed_connected_components"]

Edge = Tuple[int, int]


class HashToMinProgram(WorkerProgram):
    """Hash-to-Min connected components over one worker shard."""

    def __init__(self, shard: WorkerShard):
        super().__init__(shard)
        # int() keeps cluster members plain ints on the CSR shard backend.
        self.clusters: Dict[int, Set[int]] = {
            v: {v, *(int(u) for u in shard.neighbors(v))} for v in shard.vertices
        }
        self._dirty: Set[int] = {v for v in shard.vertices if shard.degree(v) > 0}

    def _emit(self, ctx: MessageContext) -> None:
        for v in sorted(self._dirty):
            cluster = self.clusters[v]
            m = min(cluster)
            payload = tuple(sorted(cluster))
            ctx.send(m, ("set", payload))
            for u in cluster:
                if u != m:
                    ctx.send(u, ("set", (m,)))
        self._dirty.clear()

    def on_start(self, ctx: MessageContext) -> None:
        self._emit(ctx)

    def on_superstep(
        self, ctx: MessageContext, superstep: int, inbox: Sequence[tuple]
    ) -> None:
        received: Dict[int, Set[int]] = {}
        for dst, _kind, members in inbox:
            received.setdefault(dst, set()).update(members)
        for v, incoming in received.items():
            if not incoming <= self.clusters[v]:
                # Monotone variant: clusters only grow, so delta-sending
                # quiesces and min() improves until it is the component min.
                self.clusters[v] |= incoming
                self._dirty.add(v)
        self._emit(ctx)

    def collect(self) -> dict:
        return {v: min(cluster) for v, cluster in self.clusters.items()}


def _filtered_adjacency(
    graph: Graph,
    weights: Optional[Mapping[Edge, float]],
    tau: Optional[float],
) -> Graph:
    """The τ-filtered subgraph (all vertices kept, weak edges dropped)."""
    if weights is None or tau is None:
        return graph
    filtered = Graph.from_edges((), vertices=graph.vertices())
    for (u, v), w in weights.items():
        if w >= tau - 1e-12:
            filtered.add_edge(u, v)
    return filtered


def distributed_connected_components(
    graph: Graph,
    num_workers: int = 4,
    weights: Optional[Mapping[Edge, float]] = None,
    tau: Optional[float] = None,
    partitioner: Optional[Union[str, Partitioner]] = None,
) -> Tuple[List[Set[int]], CommStats]:
    """Components of the (optionally τ-filtered) graph, plus comm stats.

    Returns components sorted by (size desc, min vertex) — including
    singletons, so callers can apply the paper's ">= 2 vertices" rule.
    ``partitioner`` is a ready :class:`Partitioner`, a name registered in
    :data:`repro.api.registry.PARTITIONERS` (``"hash"``, ``"range"``, or
    a plugin — resolved against this graph's capabilities, the same
    resolution :func:`~repro.api.plan.resolve_plan` applies), or ``None``
    for the default hash partitioner.
    """
    filtered = _filtered_adjacency(graph, weights, tau)
    if isinstance(partitioner, str):
        from repro.api.plan import GraphCaps
        from repro.api.registry import PARTITIONERS

        part = PARTITIONERS.resolve(partitioner)(
            num_workers, GraphCaps.of(graph)
        )
    else:
        part = partitioner or HashPartitioner(num_workers)
    shards = build_shards(filtered, part)
    engine = BSPEngine(shards, part)
    programs = [HashToMinProgram(shard) for shard in shards]
    engine.run(programs)
    representative: Dict[int, int] = {}
    for program in programs:
        representative.update(program.collect())
    groups: Dict[int, Set[int]] = {}
    for v, rep in representative.items():
        groups.setdefault(rep, set()).add(v)
    components = sorted(groups.values(), key=lambda c: (-len(c), min(c)))
    return components, engine.stats
