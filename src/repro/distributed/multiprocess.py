"""True multi-process execution of BSP programs (one machine, N processes).

The in-process engines simulate the cluster deterministically; this backend
demonstrates the same programs running with *real* parallelism, one OS
process per worker, a control pipe per worker, and the driver acting as
the synchronisation barrier — the closest single-machine analogue to the
paper's 7-node Spark deployment.

Two message planes, selected with ``plane=``:

* ``"tuple"`` (default) — programs are
  :class:`~repro.distributed.engine.WorkerProgram` subclasses; outboxes
  cross the data plane as pickled tuple lists and the driver routes them
  with the reference per-message loop.
* ``"array"`` — programs are
  :class:`~repro.distributed.engine_array.ArrayWorkerProgram` subclasses
  (or adapter-wrapped tuple programs); outboxes are packed per-kind numpy
  columns and the driver barrier is the vectorised
  :func:`~repro.distributed.message_array.route_columns`.

How the columns move is the *transport* (``transport=``, see
:mod:`repro.distributed.transport` and
:data:`repro.api.registry.TRANSPORTS`): ``"pipe"`` pickles payloads over
the control pipes (the reference data plane, and the only one the tuple
plane supports), ``"shm"`` swaps them through double-buffered
shared-memory rings with only index headers on the pipes, and ``"tcp"``
frames them over localhost sockets so worker groups behave like separate
hosts.  Results and per-superstep :class:`CommStats` are bit-identical
across all transports — routing happens on the driver before any
transport touches the columns.

Programs must be picklable (all programs in
:mod:`repro.distributed.programs` and
:mod:`repro.distributed.programs_array` are, as long as their state is
builtins/ndarrays).  Mutations a program makes to its state stay inside
its process; results come back via ``collect()``, so this backend suits
the *propagation* programs (whose results are collected), not the
in-place correction program.

A worker that dies mid-run can never hang the driver: every wait polls
process liveness and raises
:class:`~repro.distributed.transport.WorkerCrashedError` naming the dead
worker, and ``shutdown()`` releases pipes, sockets, and shared-memory
segments on every exit path (idempotently, crash or no crash).

Fault tolerance (``fault_tolerance=True``) turns that detection into
supervised recovery:

* every ``checkpoint_interval`` barriers (and always at superstep 0 and
  at quiescence) the driver collects a **consistent cut** — each worker's
  CRC-validated pickled :meth:`~repro.distributed.engine.WorkerProgram.
  snapshot` plus materialised copies of the superstep's outboxes and the
  :class:`CommStats` length, held driver-side, which survives any worker
  death;
* on :class:`WorkerCrashedError` the driver respawns the dead worker
  (re-shipping its shard, rebuilding its transport endpoint — the TCP
  endpoint redials with exponential backoff), restores the last cut on
  *all* workers through a deadlock-free ``sync``/``restore`` drain
  protocol, rewinds :class:`CommStats`, and replays;
* because every random draw is keyed by counters inside the snapshot,
  the replay — and therefore the final covers *and* every per-superstep
  counter — is bit-identical to a failure-free run.

Respawns are bounded by ``max_restarts``; a torn snapshot (CRC mismatch)
invalidates the whole cut and the previous one is kept.  Failures can be
scripted deterministically with a
:class:`~repro.distributed.faults.FaultPlan` (``fault_plan=``); a
respawned worker always runs with its faults stripped, so a scripted
failure fires exactly once.  ``recovery`` (a
:class:`~repro.distributed.metrics.RecoveryStats`, also attached to
``stats.recovery``) counts checkpoints, respawns, and replayed
supersteps; ``leaked_pids`` lists any process that survived the SIGKILL
escalation in :meth:`~MultiprocessBSPEngine.shutdown`.

Usage::

    with MultiprocessBSPEngine(shards, partitioner, factory) as engine:
        engine.run()
        results = engine.collect()
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import pickle
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.engine_array import ArrayWorkerProgram, TupleProgramAdapter
from repro.distributed.faults import FaultPlan
from repro.distributed.message import Message, message_size_bytes
from repro.distributed.message_array import (
    ArrayInbox,
    ArrayMessageContext,
    ArrayOutbox,
    route_columns,
)
from repro.distributed.metrics import CommStats, RecoveryStats, SuperstepStats
from repro.distributed.transport import Transport, WorkerCrashedError, WorkerEndpoint
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["MultiprocessBSPEngine", "WorkerCrashedError"]

logger = logging.getLogger(__name__)

ProgramFactory = Callable[
    [WorkerShard], Union[WorkerProgram, ArrayWorkerProgram]
]

#: Seconds between liveness polls while the driver waits on a pipe.
_POLL_S = 0.05

#: Tag of every control reply a worker sends on its pipe.  Control replies
#: must be distinguishable from stale data-plane messages (outbox headers,
#: collect dicts) while the recovery protocol drains an interrupted
#: barrier — no transport produces a tuple starting with this sentinel.
_CTRL = "__ctrl__"

#: Upper bound on stale messages drained per worker during recovery; a
#: worker can owe at most a handful (one outbox header, one snapshot or
#: collect reply, acks of an interrupted earlier recovery).
_DRAIN_LIMIT = 64


def _build_program(factory: ProgramFactory, shard: WorkerShard, plane: str):
    program = factory(shard)
    if plane == "array" and not isinstance(program, ArrayWorkerProgram):
        # Tuple programs run on the columnar plane through the adapter
        # (same contract as the in-process ArrayBSPEngine).
        program = TupleProgramAdapter(program)
    return program


def _worker_main(
    conn,
    shard: WorkerShard,
    factory: ProgramFactory,
    plane: str,
    endpoint: WorkerEndpoint,
    fault_plan: Optional[FaultPlan] = None,
    trace: bool = False,
) -> None:
    """Child-process loop: execute one program over commands from the driver.

    With ``trace=True`` the worker keeps its own flight recorder and
    metrics registry (:class:`repro.obs.Obs`): per-superstep
    ``compute``/``pack``/``transport_send``/``barrier_wait`` spans with
    this worker's attribution, shipped to the driver on the ``trace``
    verb and cleared.  ``time.time_ns()`` is the shared timebase, so the
    shipped spans align with the driver's on one wall clock.
    """
    faults = fault_plan if fault_plan is not None else FaultPlan()
    wid = shard.worker_id
    obs = None
    if trace:
        from repro.obs import Obs

        obs = Obs()
    program = _build_program(factory, shard, plane)
    make_ctx = ArrayMessageContext if plane == "array" else MessageContext
    try:
        endpoint.open()
        while True:
            if obs is not None:
                idle_start = time.time_ns()
            command = conn.recv()
            verb = command[0]
            if verb in ("start", "step"):
                if verb == "start":
                    superstep, header = 0, None
                else:
                    _verb, superstep, header = command
                if obs is not None:
                    # Time blocked in conn.recv() waiting for the barrier
                    # to release this superstep.
                    obs.trace.record(
                        "engine.barrier_wait", idle_start, plane=plane,
                        worker=wid, superstep=superstep,
                    )
                # Fault seams, in failure order: a kill strikes before the
                # inbox is touched, a stall delays the compute, a delay or
                # dropped send strikes between compute and transport.
                if faults.should_kill(wid, superstep):
                    os.kill(os.getpid(), signal.SIGKILL)
                stall = faults.stall_seconds(wid, superstep)
                if stall:
                    time.sleep(stall)
                if obs is not None:
                    compute_start = time.time_ns()
                ctx = make_ctx()
                inbox = None
                if verb == "start":
                    program.on_start(ctx)
                elif plane == "array":
                    inbox = endpoint.recv_inbox(header)
                    program.on_superstep(ctx, superstep, ArrayInbox(inbox))
                else:
                    inbox = endpoint.recv_inbox(header)
                    program.on_superstep(ctx, superstep, inbox)
                if obs is not None:
                    pack_start = time.time_ns()
                    obs.trace.record(
                        "engine.compute", compute_start, plane=plane,
                        worker=wid, superstep=superstep, end_ns=pack_start,
                    )
                payload = ctx.finalize() if plane == "array" else ctx.outbox
                if obs is not None:
                    send_start = time.time_ns()
                    obs.trace.record(
                        "engine.pack", pack_start, plane=plane,
                        worker=wid, superstep=superstep, end_ns=send_start,
                    )
                delay = faults.delay_seconds(wid, superstep)
                if delay:
                    time.sleep(delay)
                if faults.should_drop_send(wid, superstep):
                    # A dropped transport send is indistinguishable from a
                    # crash to the driver — by design: a half-sent
                    # superstep must never be half-applied.
                    endpoint.close()
                    conn.close()
                    os._exit(3)
                endpoint.send_outbox(payload, conn.send)
                if obs is not None:
                    obs.trace.record(
                        "engine.transport_send", send_start, plane=plane,
                        worker=wid, superstep=superstep,
                    )
                # Drop the inbox views before the next iteration: shm inbox
                # columns alias a ring slot, and lingering references would
                # keep the mapping pinned past endpoint.close().
                inbox = ctx = payload = None
            elif verb == "trace":
                # Ship-and-clear this worker's recordings.  The reply is a
                # >= 3 tuple tagged _CTRL, so an interrupted fetch drains
                # safely through _drain_until_ack during recovery.
                if obs is not None:
                    conn.send(
                        (_CTRL, "trace", obs.trace.take(), obs.metrics.snapshot())
                    )
                else:  # tracing off: reply empty rather than desync
                    conn.send((_CTRL, "trace", [], {}))
            elif verb == "snapshot":
                _verb, superstep = command
                blob = pickle.dumps(
                    program.snapshot(), protocol=pickle.HIGHEST_PROTOCOL
                )
                crc = zlib.crc32(blob)
                if faults.should_tear_snapshot(wid, superstep):
                    blob = blob[: len(blob) // 2]  # torn write: fails its CRC
                conn.send((_CTRL, "snap", superstep, blob, crc))
            elif verb == "sync":
                conn.send((_CTRL, "sync", command[1]))
            elif verb == "restore":
                _verb, _superstep, blob, token = command
                program.restore(pickle.loads(blob))
                conn.send((_CTRL, "restored", token))
            elif verb == "reset":
                program = _build_program(factory, shard, plane)
                conn.send((_CTRL, "reset", command[1]))
            elif verb == "collect":
                conn.send(program.collect())
            elif verb == "stop":
                break
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown command {verb!r}")
    finally:
        endpoint.close()
        conn.close()


@dataclass
class _Cut:
    """One consistent cut: everything needed to rewind the whole cluster.

    Held driver-side (the driver survives worker deaths).  ``outboxes``
    are materialised copies — shm outbox columns are views into ring slots
    that are rewritten two supersteps later, so the cut must own its data.
    """

    superstep: int
    blobs: Dict[int, bytes]  # worker_id -> pickled program snapshot
    outboxes: Dict[int, object]  # worker_id -> owned outbox copy
    stats_len: int  # CommStats length at the cut


class MultiprocessBSPEngine:
    """Drives persistent worker processes through synchronous supersteps.

    With ``fault_tolerance=True`` the engine checkpoints a consistent cut
    every ``checkpoint_interval`` barriers and transparently recovers from
    worker deaths (up to ``max_restarts`` respawns) with bit-identical
    results and stats; without it, a death raises
    :class:`WorkerCrashedError` as before.  ``fault_plan`` injects
    scripted failures (see :mod:`repro.distributed.faults`).
    """

    def __init__(
        self,
        shards: Sequence[WorkerShard],
        partitioner: Partitioner,
        factory: ProgramFactory,
        mp_context: Optional[str] = None,
        plane: str = "tuple",
        transport: Union[str, Transport] = "pipe",
        fault_tolerance: bool = False,
        checkpoint_interval: int = 4,
        max_restarts: int = 3,
        fault_plan: Optional[FaultPlan] = None,
        obs=None,
    ):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        if plane not in ("tuple", "array"):
            raise ValueError(f"plane must be 'tuple' or 'array', got {plane!r}")
        if plane == "array":
            worker_ids = sorted(shard.worker_id for shard in shards)
            if worker_ids != list(range(partitioner.num_partitions)):
                # The columnar barrier addresses inboxes by partition index.
                raise ValueError(
                    f"shard worker_ids {worker_ids} must be the partition "
                    f"indices 0..{partitioner.num_partitions - 1}"
                )
        if isinstance(transport, str):
            from repro.api.registry import TRANSPORTS

            transport = TRANSPORTS.resolve(transport)()
        if transport.array_only and plane != "array":
            raise ValueError(
                f"transport {transport.name!r} moves packed columns and "
                f"requires plane='array'; the tuple plane runs on "
                f"transport='pipe' only"
            )
        if not isinstance(checkpoint_interval, int) or checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be an int >= 1, "
                f"got {checkpoint_interval!r}"
            )
        if not isinstance(max_restarts, int) or max_restarts < 0:
            raise ValueError(
                f"max_restarts must be an int >= 0, got {max_restarts!r}"
            )
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise TypeError(
                f"fault_plan must be a FaultPlan, got {type(fault_plan).__name__}"
            )
        self.partitioner = partitioner
        self.plane = plane
        self.recovery = RecoveryStats()
        # The observability context (None = off).  It rides on the stats
        # object like the recovery ledger, so the cluster wrappers and
        # the service surface the recorded run for free; the transport
        # gets the same reference for its driver-side byte/stall metrics.
        self.obs = obs
        # One stats object carries both planes of accounting, so the
        # cluster wrappers and the service see recovery counters for free.
        self.stats = CommStats(recovery=self.recovery, obs=obs)
        self.leaked_pids: List[int] = []
        self._transport = transport
        transport.obs = obs
        if obs is not None:
            obs.meta.setdefault("mode", "multiprocess")
            obs.meta.setdefault("plane", plane)
            obs.meta.setdefault("transport", transport.name)
            obs.meta.setdefault("num_workers", len(shards))
        self._fault_tolerance = bool(fault_tolerance)
        self._checkpoint_interval = checkpoint_interval
        self._max_restarts = max_restarts
        # Retained for respawns: the supervisor re-ships a dead worker's
        # shard and rebuilds its endpoint from the same factory/transport.
        self._shards = list(shards)
        self._factory = factory
        self._fault_plans: List[Optional[FaultPlan]] = [fault_plan] * len(
            self._shards
        )
        self._ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self._connections: List[Optional[object]] = [None] * len(self._shards)
        self._processes: List[Optional[object]] = [None] * len(self._shards)
        self._worker_ids = [shard.worker_id for shard in self._shards]
        self._closed = False
        self._checkpoint: Optional[_Cut] = None
        self._superstep = 0
        self._stats_base = 0
        self._outboxes: Optional[Dict[int, object]] = None
        self._ctrl_token = 0
        self._last_max_supersteps = 100_000
        try:
            self._transport.bind(self._worker_ids, self._ctx)
            for index in range(len(self._shards)):
                self._spawn_worker(index)
            for wid, process in zip(self._worker_ids, self._processes):
                self._transport.attach(wid, process)
        except BaseException:
            # A worker dying during the handshake (or any bind failure)
            # must not leak processes, sockets, or shm segments.
            self.shutdown()
            raise

    def _spawn_worker(self, index: int) -> None:
        shard = self._shards[index]
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                shard,
                self._factory,
                self.plane,
                self._transport.worker_endpoint(shard.worker_id),
                self._fault_plans[index],
                self.obs is not None,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._connections[index] = parent_conn
        self._processes[index] = process

    # ------------------------------------------------------------------
    # Crash-aware control plane
    # ------------------------------------------------------------------
    def _send(self, index: int, command) -> None:
        try:
            self._connections[index].send(command)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise WorkerCrashedError(
                self._worker_ids[index],
                self._processes[index].exitcode,
                "(control pipe closed)",
            )

    def _recv(self, index: int):
        """Receive from one worker's pipe without ever blocking forever."""
        conn = self._connections[index]
        process = self._processes[index]
        while not conn.poll(_POLL_S):
            if not process.is_alive():
                # One final poll: the worker may have replied just before
                # dying and the message still sits in the pipe buffer.
                if conn.poll(_POLL_S):
                    break
                raise WorkerCrashedError(
                    self._worker_ids[index], process.exitcode
                )
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError):
            raise WorkerCrashedError(
                self._worker_ids[index], process.exitcode, "(pipe truncated)"
            )

    def _recv_outboxes(self) -> Dict[int, object]:
        outboxes: Dict[int, object] = {}
        try:
            for i, wid in enumerate(self._worker_ids):
                try:
                    outboxes[wid] = self._transport.recv_outbox(
                        wid, lambda i=i: self._recv(i)
                    )
                except ConnectionError:
                    raise WorkerCrashedError(
                        wid, self._processes[i].exitcode, "(data plane closed)"
                    )
        except Exception:
            # The exception's traceback pins this frame (and the partial
            # dict) until the caller is done with it; shm views held here
            # would block segment reaping during recovery/shutdown.
            outboxes.clear()
            raise
        return outboxes

    def _send_inboxes(self, inboxes, superstep: int) -> None:
        """Ship every inbox, completing sends to survivors before raising.

        A naive fail-fast here can deadlock recovery on the tcp transport:
        a survivor that received its ``step`` verb but not its frame would
        block in a socket read and never see the restore verb.  So one
        worker's death never prevents the others from getting their full
        payloads; the first crash is raised after the loop.
        """
        crash: Optional[WorkerCrashedError] = None
        for i, wid in enumerate(self._worker_ids):
            try:
                self._transport.send_inbox(
                    wid,
                    inboxes[wid],
                    lambda header, i=i, s=superstep: self._send(
                        i, ("step", s, header)
                    ),
                )
            except WorkerCrashedError as exc:
                crash = crash if crash is not None else exc
            except ConnectionError:
                if crash is None:
                    crash = WorkerCrashedError(
                        wid, self._processes[i].exitcode, "(data plane closed)"
                    )
        if crash is not None:
            raise crash

    # ------------------------------------------------------------------
    # Superstep loop
    # ------------------------------------------------------------------
    def _route_tuples(
        self, outboxes: Dict[int, List[Message]], superstep: int
    ) -> Dict[int, List[tuple]]:
        step_stats = SuperstepStats(superstep=superstep)
        inboxes: Dict[int, List[tuple]] = {wid: [] for wid in self._worker_ids}
        for sender_id, outbox in outboxes.items():
            for dst_vertex, payload in outbox:
                owner = self.partitioner.owner(dst_vertex)
                size = message_size_bytes((dst_vertex, payload))
                step_stats.messages += 1
                step_stats.bytes += size
                if owner != sender_id:
                    step_stats.remote_messages += 1
                    step_stats.remote_bytes += size
                inboxes[owner].append((dst_vertex,) + payload)
        for inbox in inboxes.values():
            inbox.sort()
        self.stats.record(step_stats)
        return inboxes

    def _route_arrays(
        self, outboxes: Dict[int, ArrayOutbox], superstep: int
    ) -> Dict[int, ArrayOutbox]:
        inboxes, step_stats = route_columns(
            outboxes, self.partitioner, self.partitioner.num_partitions, superstep
        )
        self.stats.record(step_stats)
        return inboxes

    def _ensure_started(self) -> None:
        """Issue the ``start`` barrier unless a run is already in flight."""
        if self._outboxes is not None:
            return
        self._checkpoint = None  # a fresh start invalidates any previous cut
        self._superstep = 0
        self._stats_base = len(self.stats.per_superstep)
        obs = self.obs
        for i in range(len(self._connections)):
            self._send(i, ("start",))
        if obs is not None:
            barrier_start = time.time_ns()
        self._outboxes = self._recv_outboxes()
        if obs is not None:
            obs.trace.record(
                "engine.barrier_wait", barrier_start, plane=self.plane,
                superstep=0,
            )
        if self._fault_tolerance:
            # Always checkpoint the post-start state: a consistent cut
            # exists before the first superstep can crash anything.
            self._take_checkpoint()

    def _superstep_loop(self, max_supersteps: int) -> None:
        route = self._route_arrays if self.plane == "array" else self._route_tuples
        obs = self.obs
        while any(self._outboxes.values()):
            superstep = self._superstep + 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"program did not quiesce within {max_supersteps} supersteps"
                )
            if obs is not None:
                route_start = time.time_ns()
            inboxes = route(self._outboxes, superstep)
            self._superstep = superstep
            if obs is not None:
                send_start = time.time_ns()
                obs.trace.record(
                    "engine.route", route_start, plane=self.plane,
                    superstep=superstep, end_ns=send_start,
                )
            self._send_inboxes(inboxes, superstep)
            if obs is not None:
                barrier_start = time.time_ns()
                obs.trace.record(
                    "engine.transport_send", send_start, plane=self.plane,
                    superstep=superstep, end_ns=barrier_start,
                )
            self._outboxes = self._recv_outboxes()
            if obs is not None:
                obs.trace.record(
                    "engine.barrier_wait", barrier_start, plane=self.plane,
                    superstep=superstep,
                )
            if (
                self._fault_tolerance
                and superstep % self._checkpoint_interval == 0
                and any(self._outboxes.values())
            ):
                self._take_checkpoint()
        if self._fault_tolerance and (
            self._checkpoint is None
            or self._checkpoint.superstep != self._superstep
        ):
            # Final cut at quiescence: covers a crash during collect().
            self._take_checkpoint()
        self._outboxes = None  # quiescent: the next run() starts fresh
        if obs is not None:
            self._fetch_worker_traces()

    def run(self, max_supersteps: int = 100_000) -> CommStats:
        """Run until message quiescence; returns the communication stats.

        With fault tolerance on, worker deaths inside the loop trigger
        checkpoint/replay recovery instead of raising.
        """
        if self._closed:
            raise RuntimeError("engine already shut down")
        self._last_max_supersteps = max_supersteps
        while True:
            try:
                self._ensure_started()
                self._superstep_loop(max_supersteps)
                return self.stats
            except WorkerCrashedError as exc:
                self._recover(exc)

    def collect(self) -> List[dict]:
        """Gather each worker program's final results."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        while True:
            try:
                for i in range(len(self._connections)):
                    self._send(i, ("collect",))
                return [self._recv(i) for i in range(len(self._connections))]
            except WorkerCrashedError as exc:
                self._recover(exc)
                # The restored cut may predate quiescence: replay to the
                # end before asking again (recovery already drained any
                # stale collect replies).
                self._ensure_started()
                self._superstep_loop(self._last_max_supersteps)

    # ------------------------------------------------------------------
    # Checkpointing and supervised recovery
    # ------------------------------------------------------------------
    def _materialize_outboxes(self, outboxes):
        """Owned copies of the current outboxes (shm columns are views
        into ring slots that are rewritten two supersteps later)."""
        if self.plane == "array":
            return {
                wid: {
                    kind: tuple(np.array(col) for col in cols)
                    for kind, cols in outbox.items()
                }
                for wid, outbox in outboxes.items()
            }
        return {wid: list(outbox) for wid, outbox in outboxes.items()}

    def _fetch_worker_traces(self) -> None:
        """Ship-and-merge every worker's spans and metrics (trace verb).

        Called at quiescence so collect()-triggered replays fetch too.  A
        crash mid-fetch surfaces as :class:`WorkerCrashedError` and flows
        through the normal recovery path; replayed supersteps may then
        contribute duplicate spans, which is fine — the trace is a flight
        recorder of what actually executed, replays included.
        """
        obs = self.obs
        for i in range(len(self._connections)):
            self._send(i, ("trace",))
        for i, wid in enumerate(self._worker_ids):
            reply = self._recv(i)
            if not (
                isinstance(reply, tuple)
                and len(reply) == 4
                and reply[0] == _CTRL
                and reply[1] == "trace"
            ):  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"worker {wid}: expected a trace reply, "
                    f"got {type(reply).__name__}"
                )
            _tag, _kind, spans, metrics = reply
            obs.trace.merge(spans)
            obs.metrics.merge(metrics)

    def _take_checkpoint(self) -> None:
        """Collect a consistent cut; a torn snapshot keeps the previous one."""
        obs = self.obs
        if obs is not None:
            checkpoint_start = time.time_ns()
        for i in range(len(self._connections)):
            self._send(i, ("snapshot", self._superstep))
        replies = [self._recv(i) for i in range(len(self._connections))]
        blobs: Dict[int, bytes] = {}
        torn: List[int] = []
        for wid, reply in zip(self._worker_ids, replies):
            if not (
                isinstance(reply, tuple)
                and len(reply) == 5
                and reply[0] == _CTRL
                and reply[1] == "snap"
            ):  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"worker {wid}: expected a snapshot reply, "
                    f"got {type(reply).__name__}"
                )
            _tag, _kind, superstep, blob, crc = reply
            if superstep != self._superstep or zlib.crc32(blob) != crc:
                torn.append(wid)
            else:
                blobs[wid] = blob
        if torn:
            # One torn snapshot invalidates the whole cut — a mixed cut
            # would not be consistent.  Keep the previous cut; recovery
            # just replays a little further.
            self.recovery.checkpoints_torn += 1
            logger.warning(
                "discarding torn checkpoint at superstep %d (worker(s) %s); "
                "keeping the cut at superstep %s",
                self._superstep,
                torn,
                self._checkpoint.superstep if self._checkpoint else None,
            )
            return
        self._checkpoint = _Cut(
            superstep=self._superstep,
            blobs=blobs,
            outboxes=self._materialize_outboxes(self._outboxes),
            stats_len=len(self.stats.per_superstep),
        )
        self.recovery.checkpoints_taken += 1
        if obs is not None:
            obs.trace.record(
                "engine.checkpoint", checkpoint_start, plane=self.plane,
                superstep=self._superstep,
            )

    def _recover(self, exc: WorkerCrashedError) -> None:
        """Respawn the dead, rewind everyone to the last cut (or to a
        fresh start when no cut exists yet), and let the caller replay."""
        if self._closed or not self._fault_tolerance:
            raise exc
        # A pipe EOF can be observed microseconds before waitpid() sees the
        # exit (the kernel closes fds before the zombie transition), so
        # give the death a moment to become reapable before concluding the
        # crash is something recovery cannot repair.
        deadline = time.monotonic() + 5.0
        while True:
            dead = [
                index
                for index, process in enumerate(self._processes)
                if process is None or not process.is_alive()
            ]
            if dead or time.monotonic() >= deadline:
                break
            time.sleep(_POLL_S)
        if not dead:  # pragma: no cover - not a process death; cannot repair
            raise exc
        obs = self.obs
        if obs is not None:
            restore_start = time.time_ns()
        self.recovery.recoveries += 1
        # Drop the live outboxes before touching the transport: shm outbox
        # columns are views pinning the dead worker's segments, and detach
        # cannot reap a segment with exported pointers.  The cut owns
        # materialised copies, so nothing is lost.
        self._outboxes = None
        logger.warning(
            "recovering from %s: respawning worker(s) %s",
            exc,
            [self._worker_ids[index] for index in dead],
        )
        for index in dead:
            self._respawn(index)
        if self._checkpoint is None:
            # Crashed before the first cut existed: reset every program
            # and redo the start barrier.
            self._resync("reset")
            self.stats.truncate(self._stats_base)
            self.recovery.supersteps_replayed += self._superstep
            self._superstep = 0
            self._outboxes = None
        else:
            cut = self._checkpoint
            self._resync("restore")
            self.recovery.supersteps_replayed += max(
                0, self._superstep - cut.superstep
            )
            self._superstep = cut.superstep
            self._outboxes = dict(cut.outboxes)
            self.stats.truncate(cut.stats_len)
        if obs is not None:
            obs.trace.record(
                "engine.restore", restore_start, plane=self.plane,
                superstep=self._superstep,
            )

    def _respawn(self, index: int) -> None:
        wid = self._worker_ids[index]
        if self.recovery.workers_respawned >= self._max_restarts:
            raise WorkerCrashedError(
                wid,
                self._processes[index].exitcode,
                f"(respawn budget exhausted: max_restarts={self._max_restarts})",
            )
        self.recovery.workers_respawned += 1
        obs = self.obs
        if obs is not None:
            respawn_start = time.time_ns()
        self._processes[index].join(timeout=5)  # reap the corpse
        try:
            self._connections[index].close()
        except OSError:  # pragma: no cover
            pass
        self._transport.detach(wid)
        plan = self._fault_plans[index]
        if plan is not None:
            # Strip-on-respawn: a replacement worker is healthy, so every
            # scripted fault fires exactly once and replay terminates.
            self._fault_plans[index] = plan.without_worker(wid)
        self._spawn_worker(index)
        self._transport.attach(wid, self._processes[index])
        if obs is not None:
            obs.trace.record(
                "engine.respawn", respawn_start, plane=self.plane,
                worker=wid, superstep=self._superstep,
            )
        logger.info("respawned worker %d (%s)", wid, self._shards[index].describe())

    def _resync(self, verb: str) -> None:
        """Bring every worker to the same state via ``sync`` + restore/reset.

        Per worker, in order: a tiny ``sync`` verb (never blocks the
        driver), a drain of everything stale up to its ack — outbox
        headers and their out-of-band frames, snapshot and collect
        replies, acks of an interrupted earlier recovery — and only then
        the ``restore``/``reset`` verb.  Sequencing the payload-bearing
        verb after the sync ack means the worker is provably idle in
        ``conn.recv`` when the (possibly larger-than-pipe-buffer)
        snapshot blob is sent, so the two sides can never deadlock
        pushing at each other.
        """
        self._ctrl_token += 1
        token = self._ctrl_token
        cut = self._checkpoint
        for index, wid in enumerate(self._worker_ids):
            self._send(index, ("sync", token))
            self._drain_until_ack(index, wid, "sync", token)
            if verb == "restore":
                self._send(
                    index, ("restore", cut.superstep, cut.blobs[wid], token)
                )
                self._drain_until_ack(index, wid, "restored", token)
            else:
                self._send(index, ("reset", token))
                self._drain_until_ack(index, wid, "reset", token)

    def _drain_until_ack(self, index: int, wid: int, kind: str, token: int) -> None:
        for _ in range(_DRAIN_LIMIT):
            msg = self._recv(index)
            if isinstance(msg, tuple) and len(msg) >= 3 and msg[0] == _CTRL:
                if msg[1] == kind and msg[-1] == token:
                    return
                continue  # control reply from an interrupted earlier phase
            try:
                self._transport.drain_stale(wid, msg)
            except ConnectionError:
                raise WorkerCrashedError(
                    wid, self._processes[index].exitcode, "(died during drain)"
                )
        raise RuntimeError(  # pragma: no cover - protocol violation
            f"worker {wid} never acknowledged {kind!r}"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and release every resource; safe to call repeatedly
        (and after a worker crash, and from ``__exit__`` mid-exception).

        Escalates stop → SIGTERM → SIGKILL; a process that survives even
        SIGKILL (uninterruptible sleep) is reported in :attr:`leaked_pids`
        and logged instead of being silently abandoned.
        """
        if self._closed:
            return
        self._closed = True
        connections = [c for c in self._connections if c is not None]
        processes = [p for p in self._processes if p is not None]
        try:
            for conn in connections:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass  # worker already gone
            for process in processes:
                process.join(timeout=10)
        finally:
            for process in processes:
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5)
            for process in processes:
                if process.is_alive():  # pragma: no cover - ignored SIGTERM
                    process.kill()
                    process.join(timeout=5)
            for process in processes:
                if process.is_alive():
                    self.leaked_pids.append(process.pid)
                    logger.error(
                        "worker process pid=%d survived the SIGKILL "
                        "escalation; leaking it",
                        process.pid,
                    )
            for conn in connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            # Release outbox column views (shm: exported pointers into the
            # workers' segments) before closing the transport, or the
            # segments cannot be unmapped.
            self._outboxes = None
            self._checkpoint = None
            # Always last: reaps shm segments / sockets even when workers
            # were terminated and their own close() never ran.
            self._transport.close()

    def __enter__(self) -> "MultiprocessBSPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
