"""True multi-process execution of BSP programs (one machine, N processes).

The in-process engines simulate the cluster deterministically; this backend
demonstrates the same programs running with *real* parallelism, one OS
process per worker, a control pipe per worker, and the driver acting as
the synchronisation barrier — the closest single-machine analogue to the
paper's 7-node Spark deployment.

Two message planes, selected with ``plane=``:

* ``"tuple"`` (default) — programs are
  :class:`~repro.distributed.engine.WorkerProgram` subclasses; outboxes
  cross the data plane as pickled tuple lists and the driver routes them
  with the reference per-message loop.
* ``"array"`` — programs are
  :class:`~repro.distributed.engine_array.ArrayWorkerProgram` subclasses
  (or adapter-wrapped tuple programs); outboxes are packed per-kind numpy
  columns and the driver barrier is the vectorised
  :func:`~repro.distributed.message_array.route_columns`.

How the columns move is the *transport* (``transport=``, see
:mod:`repro.distributed.transport` and
:data:`repro.api.registry.TRANSPORTS`): ``"pipe"`` pickles payloads over
the control pipes (the reference data plane, and the only one the tuple
plane supports), ``"shm"`` swaps them through double-buffered
shared-memory rings with only index headers on the pipes, and ``"tcp"``
frames them over localhost sockets so worker groups behave like separate
hosts.  Results and per-superstep :class:`CommStats` are bit-identical
across all transports — routing happens on the driver before any
transport touches the columns.

Programs must be picklable (all programs in
:mod:`repro.distributed.programs` and
:mod:`repro.distributed.programs_array` are, as long as their state is
builtins/ndarrays).  Mutations a program makes to its state stay inside
its process; results come back via ``collect()``, so this backend suits
the *propagation* programs (whose results are collected), not the
in-place correction program.

A worker that dies mid-run can never hang the driver: every wait polls
process liveness and raises
:class:`~repro.distributed.transport.WorkerCrashedError` naming the dead
worker, and ``shutdown()`` releases pipes, sockets, and shared-memory
segments on every exit path (idempotently, crash or no crash).

Usage::

    with MultiprocessBSPEngine(shards, partitioner, factory) as engine:
        engine.run()
        results = engine.collect()
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.engine_array import ArrayWorkerProgram, TupleProgramAdapter
from repro.distributed.message import Message, message_size_bytes
from repro.distributed.message_array import (
    ArrayInbox,
    ArrayMessageContext,
    ArrayOutbox,
    route_columns,
)
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.transport import Transport, WorkerCrashedError, WorkerEndpoint
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["MultiprocessBSPEngine", "WorkerCrashedError"]

ProgramFactory = Callable[
    [WorkerShard], Union[WorkerProgram, ArrayWorkerProgram]
]

#: Seconds between liveness polls while the driver waits on a pipe.
_POLL_S = 0.05


def _worker_main(
    conn,
    shard: WorkerShard,
    factory: ProgramFactory,
    plane: str,
    endpoint: WorkerEndpoint,
) -> None:
    """Child-process loop: execute one program over commands from the driver."""
    program = factory(shard)
    if plane == "array" and not isinstance(program, ArrayWorkerProgram):
        # Tuple programs run on the columnar plane through the adapter
        # (same contract as the in-process ArrayBSPEngine).
        program = TupleProgramAdapter(program)
    make_ctx = ArrayMessageContext if plane == "array" else MessageContext
    try:
        endpoint.open()
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "start":
                ctx = make_ctx()
                program.on_start(ctx)
                payload = ctx.finalize() if plane == "array" else ctx.outbox
                endpoint.send_outbox(payload, conn.send)
            elif verb == "step":
                _verb, superstep, header = command
                inbox = endpoint.recv_inbox(header)
                ctx = make_ctx()
                if plane == "array":
                    program.on_superstep(ctx, superstep, ArrayInbox(inbox))
                    payload = ctx.finalize()
                else:
                    program.on_superstep(ctx, superstep, inbox)
                    payload = ctx.outbox
                endpoint.send_outbox(payload, conn.send)
                # Drop the inbox views before the next iteration: shm inbox
                # columns alias a ring slot, and lingering references would
                # keep the mapping pinned past endpoint.close().
                del inbox, ctx, payload
            elif verb == "collect":
                conn.send(program.collect())
            elif verb == "stop":
                break
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown command {verb!r}")
    finally:
        endpoint.close()
        conn.close()


class MultiprocessBSPEngine:
    """Drives persistent worker processes through synchronous supersteps."""

    def __init__(
        self,
        shards: Sequence[WorkerShard],
        partitioner: Partitioner,
        factory: ProgramFactory,
        mp_context: Optional[str] = None,
        plane: str = "tuple",
        transport: Union[str, Transport] = "pipe",
    ):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        if plane not in ("tuple", "array"):
            raise ValueError(f"plane must be 'tuple' or 'array', got {plane!r}")
        if plane == "array":
            worker_ids = sorted(shard.worker_id for shard in shards)
            if worker_ids != list(range(partitioner.num_partitions)):
                # The columnar barrier addresses inboxes by partition index.
                raise ValueError(
                    f"shard worker_ids {worker_ids} must be the partition "
                    f"indices 0..{partitioner.num_partitions - 1}"
                )
        if isinstance(transport, str):
            from repro.api.registry import TRANSPORTS

            transport = TRANSPORTS.resolve(transport)()
        if transport.array_only and plane != "array":
            raise ValueError(
                f"transport {transport.name!r} moves packed columns and "
                f"requires plane='array'; the tuple plane runs on "
                f"transport='pipe' only"
            )
        self.partitioner = partitioner
        self.plane = plane
        self.stats = CommStats()
        self._transport = transport
        ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self._connections = []
        self._processes = []
        self._worker_ids = [shard.worker_id for shard in shards]
        self._closed = False
        try:
            self._transport.bind(self._worker_ids, ctx)
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        shard,
                        factory,
                        plane,
                        self._transport.worker_endpoint(shard.worker_id),
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
            for wid, process in zip(self._worker_ids, self._processes):
                self._transport.attach(wid, process)
        except BaseException:
            # A worker dying during the handshake (or any bind failure)
            # must not leak processes, sockets, or shm segments.
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Crash-aware control plane
    # ------------------------------------------------------------------
    def _send(self, index: int, command) -> None:
        try:
            self._connections[index].send(command)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise WorkerCrashedError(
                self._worker_ids[index],
                self._processes[index].exitcode,
                "(control pipe closed)",
            )

    def _recv(self, index: int):
        """Receive from one worker's pipe without ever blocking forever."""
        conn = self._connections[index]
        process = self._processes[index]
        while not conn.poll(_POLL_S):
            if not process.is_alive():
                # One final poll: the worker may have replied just before
                # dying and the message still sits in the pipe buffer.
                if conn.poll(_POLL_S):
                    break
                raise WorkerCrashedError(
                    self._worker_ids[index], process.exitcode
                )
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError):
            raise WorkerCrashedError(
                self._worker_ids[index], process.exitcode, "(pipe truncated)"
            )

    def _recv_outboxes(self) -> Dict[int, object]:
        return {
            wid: self._transport.recv_outbox(wid, lambda i=i: self._recv(i))
            for i, wid in enumerate(self._worker_ids)
        }

    # ------------------------------------------------------------------
    # Superstep loop
    # ------------------------------------------------------------------
    def _route_tuples(
        self, outboxes: Dict[int, List[Message]], superstep: int
    ) -> Dict[int, List[tuple]]:
        step_stats = SuperstepStats(superstep=superstep)
        inboxes: Dict[int, List[tuple]] = {wid: [] for wid in self._worker_ids}
        for sender_id, outbox in outboxes.items():
            for dst_vertex, payload in outbox:
                owner = self.partitioner.owner(dst_vertex)
                size = message_size_bytes((dst_vertex, payload))
                step_stats.messages += 1
                step_stats.bytes += size
                if owner != sender_id:
                    step_stats.remote_messages += 1
                    step_stats.remote_bytes += size
                inboxes[owner].append((dst_vertex,) + payload)
        for inbox in inboxes.values():
            inbox.sort()
        self.stats.record(step_stats)
        return inboxes

    def _route_arrays(
        self, outboxes: Dict[int, ArrayOutbox], superstep: int
    ) -> Dict[int, ArrayOutbox]:
        inboxes, step_stats = route_columns(
            outboxes, self.partitioner, self.partitioner.num_partitions, superstep
        )
        self.stats.record(step_stats)
        return inboxes

    def run(self, max_supersteps: int = 100_000) -> CommStats:
        """Run until message quiescence; returns the communication stats."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        route = self._route_arrays if self.plane == "array" else self._route_tuples
        for i in range(len(self._connections)):
            self._send(i, ("start",))
        outboxes = self._recv_outboxes()
        superstep = 0
        while any(outboxes.values()):
            superstep += 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"program did not quiesce within {max_supersteps} supersteps"
                )
            inboxes = route(outboxes, superstep)
            for i, wid in enumerate(self._worker_ids):
                self._transport.send_inbox(
                    wid,
                    inboxes[wid],
                    lambda header, i=i, s=superstep: self._send(
                        i, ("step", s, header)
                    ),
                )
            outboxes = self._recv_outboxes()
        return self.stats

    def collect(self) -> List[dict]:
        """Gather each worker program's final results."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        for i in range(len(self._connections)):
            self._send(i, ("collect",))
        return [self._recv(i) for i in range(len(self._connections))]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and release every resource; safe to call repeatedly
        (and after a worker crash, and from ``__exit__`` mid-exception)."""
        if self._closed:
            return
        self._closed = True
        try:
            for conn in self._connections:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass  # worker already gone
            for process in self._processes:
                process.join(timeout=10)
        finally:
            for process in self._processes:
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5)
            for conn in self._connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            # Always last: reaps shm segments / sockets even when workers
            # were terminated and their own close() never ran.
            self._transport.close()

    def __enter__(self) -> "MultiprocessBSPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
