"""True multi-process execution of BSP programs (one machine, N processes).

The in-process :class:`BSPEngine` simulates the cluster deterministically;
this backend demonstrates the same programs running with *real* parallelism,
one OS process per worker, pipes for message exchange, and the driver acting
as the synchronisation barrier — the closest single-machine analogue to the
paper's 7-node Spark deployment.

Programs must be picklable (all programs in :mod:`repro.distributed.programs`
are, as long as their state dictionaries are plain builtins).  Mutations a
program makes to its state stay inside its process; results come back via
``collect()``, so this backend suits the *propagation* programs (whose
results are collected), not the in-place correction program.

Usage::

    with MultiprocessBSPEngine(shards, partitioner, factory) as engine:
        engine.run()
        results = engine.collect()
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Dict, List, Optional, Sequence

from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.message import Message, message_size_bytes
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["MultiprocessBSPEngine"]

ProgramFactory = Callable[[WorkerShard], WorkerProgram]


def _worker_main(conn, shard: WorkerShard, factory: ProgramFactory) -> None:
    """Child-process loop: execute one program over commands from the driver."""
    program = factory(shard)
    try:
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "start":
                ctx = MessageContext()
                program.on_start(ctx)
                conn.send(ctx.outbox)
            elif verb == "step":
                _verb, superstep, inbox = command
                ctx = MessageContext()
                program.on_superstep(ctx, superstep, inbox)
                conn.send(ctx.outbox)
            elif verb == "collect":
                conn.send(program.collect())
            elif verb == "stop":
                break
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown command {verb!r}")
    finally:
        conn.close()


class MultiprocessBSPEngine:
    """Drives persistent worker processes through synchronous supersteps."""

    def __init__(
        self,
        shards: Sequence[WorkerShard],
        partitioner: Partitioner,
        factory: ProgramFactory,
        mp_context: Optional[str] = None,
    ):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        self.partitioner = partitioner
        self.stats = CommStats()
        ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self._connections = []
        self._processes = []
        self._worker_ids = [shard.worker_id for shard in shards]
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main, args=(child_conn, shard, factory), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._closed = False

    # ------------------------------------------------------------------
    # Superstep loop
    # ------------------------------------------------------------------
    def _route(
        self, outboxes: Dict[int, List[Message]], superstep: int
    ) -> Dict[int, List[tuple]]:
        step_stats = SuperstepStats(superstep=superstep)
        inboxes: Dict[int, List[tuple]] = {wid: [] for wid in self._worker_ids}
        for sender_id, outbox in outboxes.items():
            for dst_vertex, payload in outbox:
                owner = self.partitioner.owner(dst_vertex)
                size = message_size_bytes((dst_vertex, payload))
                step_stats.messages += 1
                step_stats.bytes += size
                if owner != sender_id:
                    step_stats.remote_messages += 1
                    step_stats.remote_bytes += size
                inboxes[owner].append((dst_vertex,) + payload)
        for inbox in inboxes.values():
            inbox.sort()
        self.stats.record(step_stats)
        return inboxes

    def run(self, max_supersteps: int = 100_000) -> CommStats:
        """Run until message quiescence; returns the communication stats."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        for conn in self._connections:
            conn.send(("start",))
        outboxes = {
            wid: conn.recv()
            for wid, conn in zip(self._worker_ids, self._connections)
        }
        superstep = 0
        while any(outboxes.values()):
            superstep += 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"program did not quiesce within {max_supersteps} supersteps"
                )
            inboxes = self._route(outboxes, superstep)
            for wid, conn in zip(self._worker_ids, self._connections):
                conn.send(("step", superstep, inboxes[wid]))
            outboxes = {
                wid: conn.recv()
                for wid, conn in zip(self._worker_ids, self._connections)
            }
        return self.stats

    def collect(self) -> List[dict]:
        """Gather each worker program's final results."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        for conn in self._connections:
            conn.send(("collect",))
        return [conn.recv() for conn in self._connections]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        for conn in self._connections:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._closed = True

    def __enter__(self) -> "MultiprocessBSPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
