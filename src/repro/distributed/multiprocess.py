"""True multi-process execution of BSP programs (one machine, N processes).

The in-process engines simulate the cluster deterministically; this backend
demonstrates the same programs running with *real* parallelism, one OS
process per worker, pipes for message exchange, and the driver acting as
the synchronisation barrier — the closest single-machine analogue to the
paper's 7-node Spark deployment.

Two message planes, selected with ``plane=``:

* ``"tuple"`` (default) — programs are
  :class:`~repro.distributed.engine.WorkerProgram` subclasses; outboxes
  cross the pipes as pickled tuple lists and the driver routes them with
  the reference per-message loop.
* ``"array"`` — programs are
  :class:`~repro.distributed.engine_array.ArrayWorkerProgram` subclasses
  (or adapter-wrapped tuple programs); outboxes cross the pipes as packed
  per-kind numpy columns and the driver barrier is the vectorised
  :func:`~repro.distributed.message_array.route_columns` — far fewer,
  far larger pickles.

Programs must be picklable (all programs in
:mod:`repro.distributed.programs` and
:mod:`repro.distributed.programs_array` are, as long as their state is
builtins/ndarrays).  Mutations a program makes to its state stay inside
its process; results come back via ``collect()``, so this backend suits
the *propagation* programs (whose results are collected), not the
in-place correction program.

Usage::

    with MultiprocessBSPEngine(shards, partitioner, factory) as engine:
        engine.run()
        results = engine.collect()
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.engine_array import ArrayWorkerProgram, TupleProgramAdapter
from repro.distributed.message import Message, message_size_bytes
from repro.distributed.message_array import (
    ArrayInbox,
    ArrayMessageContext,
    ArrayOutbox,
    route_columns,
)
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["MultiprocessBSPEngine"]

ProgramFactory = Callable[
    [WorkerShard], Union[WorkerProgram, ArrayWorkerProgram]
]


def _worker_main(
    conn, shard: WorkerShard, factory: ProgramFactory, plane: str
) -> None:
    """Child-process loop: execute one program over commands from the driver."""
    program = factory(shard)
    if plane == "array" and not isinstance(program, ArrayWorkerProgram):
        # Tuple programs run on the columnar plane through the adapter
        # (same contract as the in-process ArrayBSPEngine).
        program = TupleProgramAdapter(program)
    make_ctx = ArrayMessageContext if plane == "array" else MessageContext
    try:
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "start":
                ctx = make_ctx()
                program.on_start(ctx)
                conn.send(
                    ctx.finalize() if plane == "array" else ctx.outbox
                )
            elif verb == "step":
                _verb, superstep, inbox = command
                ctx = make_ctx()
                if plane == "array":
                    program.on_superstep(ctx, superstep, ArrayInbox(inbox))
                    conn.send(ctx.finalize())
                else:
                    program.on_superstep(ctx, superstep, inbox)
                    conn.send(ctx.outbox)
            elif verb == "collect":
                conn.send(program.collect())
            elif verb == "stop":
                break
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown command {verb!r}")
    finally:
        conn.close()


class MultiprocessBSPEngine:
    """Drives persistent worker processes through synchronous supersteps."""

    def __init__(
        self,
        shards: Sequence[WorkerShard],
        partitioner: Partitioner,
        factory: ProgramFactory,
        mp_context: Optional[str] = None,
        plane: str = "tuple",
    ):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        if plane not in ("tuple", "array"):
            raise ValueError(f"plane must be 'tuple' or 'array', got {plane!r}")
        if plane == "array":
            worker_ids = sorted(shard.worker_id for shard in shards)
            if worker_ids != list(range(partitioner.num_partitions)):
                # The columnar barrier addresses inboxes by partition index.
                raise ValueError(
                    f"shard worker_ids {worker_ids} must be the partition "
                    f"indices 0..{partitioner.num_partitions - 1}"
                )
        self.partitioner = partitioner
        self.plane = plane
        self.stats = CommStats()
        ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self._connections = []
        self._processes = []
        self._worker_ids = [shard.worker_id for shard in shards]
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, shard, factory, plane),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._closed = False

    # ------------------------------------------------------------------
    # Superstep loop
    # ------------------------------------------------------------------
    def _route_tuples(
        self, outboxes: Dict[int, List[Message]], superstep: int
    ) -> Dict[int, List[tuple]]:
        step_stats = SuperstepStats(superstep=superstep)
        inboxes: Dict[int, List[tuple]] = {wid: [] for wid in self._worker_ids}
        for sender_id, outbox in outboxes.items():
            for dst_vertex, payload in outbox:
                owner = self.partitioner.owner(dst_vertex)
                size = message_size_bytes((dst_vertex, payload))
                step_stats.messages += 1
                step_stats.bytes += size
                if owner != sender_id:
                    step_stats.remote_messages += 1
                    step_stats.remote_bytes += size
                inboxes[owner].append((dst_vertex,) + payload)
        for inbox in inboxes.values():
            inbox.sort()
        self.stats.record(step_stats)
        return inboxes

    def _route_arrays(
        self, outboxes: Dict[int, ArrayOutbox], superstep: int
    ) -> Dict[int, ArrayOutbox]:
        inboxes, step_stats = route_columns(
            outboxes, self.partitioner, self.partitioner.num_partitions, superstep
        )
        self.stats.record(step_stats)
        return inboxes

    def run(self, max_supersteps: int = 100_000) -> CommStats:
        """Run until message quiescence; returns the communication stats."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        route = self._route_arrays if self.plane == "array" else self._route_tuples
        for conn in self._connections:
            conn.send(("start",))
        outboxes = {
            wid: conn.recv()
            for wid, conn in zip(self._worker_ids, self._connections)
        }
        superstep = 0
        while any(outboxes.values()):
            superstep += 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"program did not quiesce within {max_supersteps} supersteps"
                )
            inboxes = route(outboxes, superstep)
            for wid, conn in zip(self._worker_ids, self._connections):
                conn.send(("step", superstep, inboxes[wid]))
            outboxes = {
                wid: conn.recv()
                for wid, conn in zip(self._worker_ids, self._connections)
            }
        return self.stats

    def collect(self) -> List[dict]:
        """Gather each worker program's final results."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        for conn in self._connections:
            conn.send(("collect",))
        return [conn.recv() for conn in self._connections]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        for conn in self._connections:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._closed = True

    def __enter__(self) -> "MultiprocessBSPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
