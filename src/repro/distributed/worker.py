"""Worker shards: the per-machine state of the simulated cluster.

A :class:`WorkerShard` owns a set of vertices and their adjacency (the
outgoing half of every incident edge, as in an edge-cut partitioning — each
worker can enumerate its vertices' neighbours locally but must message the
neighbour's owner to touch its state, exactly the Spark/Pregel model the
paper runs on).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.graph.adjacency import Graph
from repro.graph.partition import Partitioner

__all__ = ["WorkerShard", "build_shards"]


class WorkerShard:
    """One worker's slice of the graph (picklable for the MP backend)."""

    __slots__ = ("worker_id", "vertices", "adjacency")

    def __init__(self, worker_id: int, vertices: FrozenSet[int], adjacency: Dict[int, List[int]]):
        self.worker_id = worker_id
        self.vertices = vertices
        self.adjacency = adjacency  # vertex -> sorted neighbour list

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbour list (do not mutate)."""
        return self.adjacency[v]

    def owns(self, v: int) -> bool:
        return v in self.vertices

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def local_edges(self) -> int:
        """Incident edge endpoints stored on this worker."""
        return sum(len(nbrs) for nbrs in self.adjacency.values())

    def __repr__(self) -> str:
        return f"WorkerShard(id={self.worker_id}, |V|={self.num_vertices})"


def build_shards(graph: Graph, partitioner: Partitioner) -> List[WorkerShard]:
    """Partition a graph into worker shards (sorted adjacency per vertex)."""
    groups = partitioner.partition(graph.vertices())
    shards: List[WorkerShard] = []
    for worker_id in range(partitioner.num_partitions):
        local = groups.get(worker_id, [])
        adjacency = {v: sorted(graph.neighbors_view(v)) for v in local}
        shards.append(
            WorkerShard(worker_id, frozenset(local), adjacency)
        )
    return shards
