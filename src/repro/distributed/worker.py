"""Worker shards: the per-machine state of the simulated cluster.

A :class:`WorkerShard` owns a set of vertices and their adjacency (the
outgoing half of every incident edge, as in an edge-cut partitioning — each
worker can enumerate its vertices' neighbours locally but must message the
neighbour's owner to touch its state, exactly the Spark/Pregel model the
paper runs on).

Two storage backends share the same shard API:

* :class:`WorkerShard` — dict of sorted neighbour lists, built from the
  mutable :class:`~repro.graph.adjacency.Graph` (works for arbitrary ids);
* :class:`CSRShard` — local ``indptr``/``indices`` arrays sliced straight
  out of a :class:`~repro.graph.csr.CSRGraph` by
  :func:`repro.graph.partition.slice_csr`, so BSP programs scan arrays
  instead of dict sets.

Both are picklable and yield identical neighbour *sequences* (ascending),
so every program produces bit-identical results on either backend.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Union

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioner, slice_csr

__all__ = ["WorkerShard", "CSRShard", "build_shards", "build_csr_shards"]


def _read_only(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the caller's array stays writeable)."""
    view = array.view()
    view.flags.writeable = False
    return view


class WorkerShard:
    """One worker's slice of the graph (picklable for the MP backend)."""

    __slots__ = ("worker_id", "vertices", "adjacency")

    def __init__(self, worker_id: int, vertices: FrozenSet[int], adjacency: Dict[int, List[int]]):
        self.worker_id = worker_id
        self.vertices = vertices
        self.adjacency = adjacency  # vertex -> sorted neighbour list

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    def neighbors(self, v: int) -> Sequence[int]:
        """Ascending neighbour sequence (do not mutate)."""
        return self.adjacency[v]

    def owns(self, v: int) -> bool:
        return v in self.vertices

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def local_edges(self) -> int:
        """Incident edge endpoints stored on this worker."""
        return sum(len(nbrs) for nbrs in self.adjacency.values())

    def describe(self) -> str:
        """One-line supervisor-facing description (respawn/recovery logs)."""
        return (
            f"{type(self).__name__} {self.worker_id}: "
            f"{self.num_vertices} vertices, {self.local_edges()} edge endpoints"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.worker_id}, |V|={self.num_vertices})"


class CSRShard(WorkerShard):
    """A worker shard whose local adjacency is a CSR array pair.

    ``local_ids[r]`` owns row ``r`` of ``(indptr, indices)``; ``indices``
    holds *global* neighbour ids, ascending within each row, exactly like
    the dict backend's sorted lists.
    """

    __slots__ = ("local_ids", "indptr", "indices", "_row_of")

    def __init__(
        self,
        worker_id: int,
        local_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
    ):
        # np.asarray keeps the caller's buffer when it is already int64
        # (slice_csr output), and one C-level tolist() feeds both the owned
        # set and the row lookup — no per-vertex Python conversion loop.
        # The shard then stores read-only *views* (freezing the view, not
        # the caller's array), so neighbors() hands out immutable slices
        # and program code cannot silently corrupt the shared adjacency.
        self.local_ids = _read_only(np.asarray(local_ids, dtype=np.int64))
        ids = self.local_ids.tolist()
        super().__init__(worker_id, frozenset(ids), {})
        self.indptr = _read_only(np.asarray(indptr, dtype=np.int64))
        self.indices = _read_only(np.asarray(indices, dtype=np.int64))
        self._row_of = {v: r for r, v in enumerate(ids)}

    def degree(self, v: int) -> int:
        r = self._row_of[v]
        return int(self.indptr[r + 1] - self.indptr[r])

    def neighbors(self, v: int) -> np.ndarray:
        """Ascending neighbour array (a read-only view into the shard CSR)."""
        r = self._row_of[v]
        return self.indices[self.indptr[r] : self.indptr[r + 1]]

    def local_edges(self) -> int:
        return len(self.indices)


def build_shards(graph: Graph, partitioner: Partitioner) -> List[WorkerShard]:
    """Partition a graph into dict-backed shards (sorted adjacency lists)."""
    groups = partitioner.partition(graph.vertices())
    shards: List[WorkerShard] = []
    for worker_id in range(partitioner.num_partitions):
        local = groups.get(worker_id, [])
        adjacency = {v: sorted(graph.neighbors_view(v)) for v in local}
        shards.append(
            WorkerShard(worker_id, frozenset(local), adjacency)
        )
    return shards


def build_csr_shards(
    graph: Union[Graph, CSRGraph], partitioner: Partitioner
) -> List[CSRShard]:
    """Partition a graph into CSR-backed shards (array local adjacency).

    Accepts a ready :class:`CSRGraph` snapshot or a mutable :class:`Graph`
    (snapshotted first; requires contiguous ids ``0..n-1``).
    """
    csr = CSRGraph.coerce(graph)
    return [
        CSRShard(worker_id, local_ids, indptr, indices)
        for worker_id, (local_ids, indptr, indices) in enumerate(
            slice_csr(csr, partitioner)
        )
    ]
