"""Data-plane transports for the multiprocess BSP engine.

:class:`~repro.distributed.multiprocess.MultiprocessBSPEngine` separates
*control* from *data*: tiny command verbs (``start``/``step``/``collect``/
``stop``) always travel over a per-worker ``multiprocessing.Pipe``, while
the superstep payloads — the per-kind int64 column outboxes and inboxes of
the array message plane — go through a pluggable :class:`Transport`.
Three built-ins register in :data:`repro.api.registry.TRANSPORTS`:

``pipe``
    The reference data plane: payloads piggyback on the control pipe as
    pickles (exactly the pre-transport behaviour).  The only transport
    that also carries the tuple plane's list outboxes.
``shm``
    Zero-copy shared memory.  Each direction of each worker owns a
    double-buffered ring of ``multiprocessing.shared_memory`` segments;
    the writer packs its columns in place (one memcpy), the control pipe
    carries only an index header ``(segment name, (kind, rows), ...)``,
    and the reader maps the columns back as read-only numpy views —
    payload arrays are never pickled.  The barrier becomes an
    index-exchange plus :func:`~repro.distributed.message_array.
    route_columns` over views.
``tcp``
    The same framed columns over localhost TCP sockets, so driver-spawned
    worker groups exchange supersteps exactly as two hosts would: a
    length-prefixed layout header followed by the raw column bytes
    (``sendall``/``recv_into``, no payload pickling).  The control pipe
    still sequences the supersteps — its acks double as the liveness
    signal.

Every transport preserves bit-identical results and per-superstep
:class:`~repro.distributed.metrics.CommStats`: routing, ordering, and
byte accounting all happen in :func:`route_columns` on the driver, before
any transport touches the columns.

Lifetime contract: inbox columns delivered by the ``shm`` transport are
views into a ring slot that is rewritten two supersteps later, so
programs must consume (or copy, see
:meth:`~repro.distributed.message_array.ArrayInbox.materialize`) their
inbox within the superstep that delivered it — the contract the built-in
array programs already satisfy.

Crash safety: a worker that dies mid-superstep can never hang the driver.
Control-pipe receives poll worker liveness and raise
:class:`WorkerCrashedError` naming the dead worker; socket reads do the
same.  Shared-memory segments and sockets are closed (and segments
unlinked) on every exit path, including after ``terminate()``.

Observability: the engine sets :attr:`Transport.obs` (a
:class:`repro.obs.Obs`) when the run is traced, and each transport
records driver-side metrics under ``transport.<name>.*`` — pipe send/recv
counts, shm payload bytes and segment growth, tcp payload bytes and
send/recv stall seconds.  With ``obs`` left ``None`` (the default) no
transport path touches :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.message_array import (
    SCHEMAS,
    ArrayOutbox,
    pack_columns,
    packed_nbytes,
    unpack_columns,
)
from repro.utils.backoff import JitteredBackoff

__all__ = [
    "WorkerCrashedError",
    "Transport",
    "WorkerEndpoint",
    "PipeTransport",
    "SharedMemoryTransport",
    "SocketTransport",
]

#: Seconds between liveness polls while waiting on a worker.
_POLL_S = 0.05

#: Worker-side connect retries (exponential backoff from _CONNECT_DELAY_S,
#: jittered — see SocketWorkerEndpoint.open): a respawned worker may dial
#: in while the driver is still detaching its predecessor's socket, so the
#: first attempt is allowed to fail.
_CONNECT_ATTEMPTS = 6
_CONNECT_DELAY_S = 0.05


class WorkerCrashedError(RuntimeError):
    """A worker process died while the driver was waiting on it.

    Carries the dead worker's id and exit code so supervisors can act on
    *which* shard was lost instead of hanging on a silent ``recv``.
    """

    def __init__(self, worker_id: int, exitcode: Optional[int] = None,
                 detail: str = ""):
        self.worker_id = worker_id
        self.exitcode = exitcode
        message = f"worker {worker_id} died"
        if exitcode is not None:
            message += f" with exit code {exitcode}"
        if detail:
            message += f" {detail}"
        super().__init__(message)


# ----------------------------------------------------------------------
# Transport interface
# ----------------------------------------------------------------------
class Transport:
    """Driver-side data plane: one instance per engine, all workers.

    The engine calls, in order: :meth:`bind` (before spawning),
    :meth:`worker_endpoint` per worker (the picklable child half),
    :meth:`attach` per started process, then per superstep
    :meth:`send_inbox` / :meth:`recv_outbox`, and finally :meth:`close`
    (idempotent, called on every exit path).
    """

    name = "base"
    #: Column transports move typed int64 columns and therefore require
    #: ``plane="array"``; only the pipe transport carries tuple payloads.
    array_only = True
    #: Observability context (:class:`repro.obs.Obs`) the engine attaches
    #: when the run is traced; ``None`` keeps every data-plane path free
    #: of metric calls.
    obs = None

    def bind(self, worker_ids: Sequence[int], mp_context) -> None:
        """Allocate driver-side resources before any worker starts."""

    def worker_endpoint(self, worker_id: int) -> "WorkerEndpoint":
        """The picklable worker half handed to the child process."""
        raise NotImplementedError

    def attach(self, worker_id: int, process) -> None:
        """Complete the per-worker handshake after ``process`` started."""

    def send_inbox(
        self, worker_id: int, payload, send_command: Callable[[object], None]
    ) -> None:
        """Ship one inbox; ``send_command(header)`` emits the pipe verb.

        Transports control the command/payload ordering themselves: the
        pipe command must precede any blocking payload push, or a worker
        still waiting on its verb could deadlock the driver.
        """
        raise NotImplementedError

    def recv_outbox(self, worker_id: int, recv_header: Callable[[], object]):
        """Receive one outbox; ``recv_header()`` is the crash-aware pipe
        read the engine supplies."""
        raise NotImplementedError

    def detach(self, worker_id: int) -> None:
        """Release one worker's per-connection state after its process died.

        Called by supervised recovery before respawning, so the
        replacement's :meth:`attach` starts clean; the default has no
        per-worker state to release.
        """

    def drain_stale(self, worker_id: int, header) -> None:
        """Discard the payload a stale outbox ``header`` refers to.

        During recovery the driver drains leftover pipe messages from the
        interrupted barrier; a transport whose header is followed by an
        out-of-band payload (tcp) must consume that payload here or the
        connection desynchronises.  The default (pipe/shm: the header *is*
        or *indexes* the payload) does nothing.
        """

    def close(self) -> None:
        """Release every driver-side resource (idempotent)."""


class WorkerEndpoint:
    """Worker-side data plane, constructed in the driver, used in the child."""

    def open(self) -> None:
        """Connect/allocate inside the worker process (before first verb)."""

    def recv_inbox(self, header):
        """Decode one inbox from the ``step`` verb's ``header``."""
        raise NotImplementedError

    def send_outbox(self, payload, send_header: Callable[[object], None]) -> None:
        """Ship one outbox; ``send_header`` emits the pipe reply.

        The pipe reply must precede any blocking payload push (mirror of
        :meth:`Transport.send_inbox`): the driver only starts draining a
        worker's payload after seeing its header.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker-side resources (idempotent; runs on every exit)."""


# ----------------------------------------------------------------------
# Pipe (reference) transport
# ----------------------------------------------------------------------
class PipeTransport(Transport):
    """Payloads piggyback on the control pipe as pickles (the baseline)."""

    name = "pipe"
    array_only = False

    def worker_endpoint(self, worker_id: int) -> "PipeWorkerEndpoint":
        return PipeWorkerEndpoint()

    def send_inbox(self, worker_id, payload, send_command) -> None:
        if self.obs is not None:
            # Payloads ride the pipe as pickles, so byte accounting would
            # mean pickling twice; count shipments instead (CommStats
            # already owns the logical byte totals).
            self.obs.metrics.counter("transport.pipe.inbox_sends").inc()
        send_command(payload)

    def recv_outbox(self, worker_id, recv_header):
        if self.obs is not None:
            self.obs.metrics.counter("transport.pipe.outbox_recvs").inc()
        return recv_header()


class PipeWorkerEndpoint(WorkerEndpoint):
    def recv_inbox(self, header):
        return header

    def send_outbox(self, payload, send_header) -> None:
        send_header(payload)


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def _columns_nbytes(columns) -> int:
    """Total payload bytes of a per-kind column outbox (0 when empty)."""
    if not columns:
        return 0
    return sum(col.nbytes for cols in columns.values() for col in cols)


def _unlink_quiet(segment) -> None:
    """Unlink a segment, tolerating the peer having unlinked it first."""
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def _close_quiet(segment) -> None:
    """Close a mapping; tolerate still-exported views (process is exiting)."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a program retained views
        pass


class _SegmentRing:
    """Writer half of one direction: a double-buffered ring of segments.

    ``pack`` alternates between ``depth`` slots, so the reader's views of
    superstep ``s`` stay valid while superstep ``s+1`` is written — the
    lock-step barrier guarantees nothing older is still referenced.  A
    slot grows geometrically when an outbox outgrows it (the header names
    the segment, so the reader re-attaches transparently).
    """

    def __init__(self, depth: int = 2, min_bytes: int = 1 << 20):
        self._depth = depth
        self._min_bytes = min_bytes
        self._slots: List[Optional[object]] = [None] * depth
        self._seq = 0
        self.grows = 0  # slot (re)allocations; read by the traced driver

    def pack(self, columns: ArrayOutbox) -> Tuple[Optional[str], tuple]:
        """Write ``columns`` into the next slot; returns the index header."""
        from multiprocessing import shared_memory

        if not columns:
            return (None, ())
        slot = self._seq % self._depth
        self._seq += 1
        need = packed_nbytes(columns)
        segment = self._slots[slot]
        if segment is None or segment.size < need:
            self.grows += 1
            size = max(need, self._min_bytes)
            if segment is not None:
                size = max(size, 2 * segment.size)
                _close_quiet(segment)
                _unlink_quiet(segment)
            segment = shared_memory.SharedMemory(create=True, size=size)
            self._slots[slot] = segment
        layout = pack_columns(columns, segment.buf)
        return (segment.name, layout)

    def close(self) -> None:
        for i, segment in enumerate(self._slots):
            if segment is not None:
                _close_quiet(segment)
                _unlink_quiet(segment)
                self._slots[i] = None


class _SegmentCache:
    """Reader half: attaches segments by name, caches the mappings."""

    def __init__(self):
        self._segments: Dict[str, object] = {}

    def unpack(self, header: Tuple[Optional[str], tuple]) -> ArrayOutbox:
        from multiprocessing import shared_memory

        name, layout = header
        if name is None:
            return {}
        segment = self._segments.get(name)
        if segment is None:
            # Attaching registers with the resource tracker a second time;
            # that's a harmless set-add — the tracker daemon is shared with
            # the process that created the segment (fork and spawn both
            # hand children the parent's tracker), and the one explicit
            # unlink in whichever process reaps the segment removes the
            # name exactly once.
            segment = shared_memory.SharedMemory(name=name)
            self._segments[name] = segment
        return unpack_columns(segment.buf, layout)

    def close(self, unlink: bool = False) -> None:
        """Detach everything; ``unlink=True`` also reaps segments whose
        owner died before it could (missing files are fine)."""
        for segment in self._segments.values():
            _close_quiet(segment)
            if unlink:
                _unlink_quiet(segment)
        self._segments.clear()


class SharedMemoryTransport(Transport):
    """Zero-copy column exchange through double-buffered shm rings.

    The driver owns one :class:`_SegmentRing` per worker for inboxes; each
    worker owns one for its outboxes.  The control pipe carries only the
    ``(segment name, layout)`` headers — the index exchange — and each
    side maps the peer's columns as read-only views, so no payload bytes
    are ever pickled or re-copied on receive.
    """

    name = "shm"

    def __init__(self):
        self._inbox_rings: Dict[int, _SegmentRing] = {}
        self._outbox_caches: Dict[int, _SegmentCache] = {}

    def bind(self, worker_ids, mp_context) -> None:
        # Start the resource-tracker daemon BEFORE the workers fork, so
        # driver and workers share one tracker.  Then create/unlink pairs
        # balance exactly: attaching re-adds a name the creator already
        # registered (a set no-op) and the single unlink removes it —
        # whereas per-process trackers would try to reap each other's
        # live segments at exit.
        try:  # pragma: no cover - tracker is POSIX-only
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except (ImportError, AttributeError):
            pass
        for wid in worker_ids:
            self._inbox_rings[wid] = _SegmentRing()
            self._outbox_caches[wid] = _SegmentCache()

    def worker_endpoint(self, worker_id: int) -> "SharedMemoryWorkerEndpoint":
        return SharedMemoryWorkerEndpoint()

    def send_inbox(self, worker_id, payload, send_command) -> None:
        # Pack first (never blocks), then the verb: the worker attaches
        # only after seeing the header, so the data is already in place.
        obs = self.obs
        ring = self._inbox_rings[worker_id]
        grows_before = ring.grows if obs is not None else 0
        send_command(ring.pack(payload))
        if obs is not None:
            obs.metrics.histogram("transport.shm.inbox_bytes").observe(
                _columns_nbytes(payload)
            )
            if ring.grows != grows_before:
                obs.metrics.counter("transport.shm.segment_grows").inc(
                    ring.grows - grows_before
                )

    def recv_outbox(self, worker_id, recv_header) -> ArrayOutbox:
        outbox = self._outbox_caches[worker_id].unpack(recv_header())
        if self.obs is not None:
            self.obs.metrics.histogram("transport.shm.outbox_bytes").observe(
                _columns_nbytes(outbox)
            )
        return outbox

    def detach(self, worker_id) -> None:
        # Reap the dead worker's outbox segments now (its own close never
        # ran) and start a fresh cache for the replacement's ring.  The
        # driver-owned inbox ring stays: the replacement re-attaches the
        # same segments by name on its first step.
        cache = self._outbox_caches.get(worker_id)
        if cache is not None:
            cache.close(unlink=True)
        self._outbox_caches[worker_id] = _SegmentCache()

    def close(self) -> None:
        for ring in self._inbox_rings.values():
            ring.close()
        for cache in self._outbox_caches.values():
            # Reap worker-owned segments too: after a crash (or terminate)
            # the worker's own close never ran.
            cache.close(unlink=True)
        self._inbox_rings.clear()
        self._outbox_caches.clear()


class SharedMemoryWorkerEndpoint(WorkerEndpoint):
    """Worker half: owns the outbox ring, attaches the driver's inboxes."""

    def __init__(self):
        self._ring: Optional[_SegmentRing] = None
        self._cache: Optional[_SegmentCache] = None

    def open(self) -> None:
        self._ring = _SegmentRing()
        self._cache = _SegmentCache()

    def recv_inbox(self, header) -> ArrayOutbox:
        return self._cache.unpack(header)

    def send_outbox(self, payload, send_header) -> None:
        send_header(self._ring.pack(payload))

    def close(self) -> None:
        if self._ring is not None:
            self._ring.close()
            self._ring = None
        if self._cache is not None:
            # The driver owns (and unlinks) the inbox segments.
            self._cache.close(unlink=False)
            self._cache = None


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
def _recv_into_exact(sock, view: memoryview, alive: Callable[[], bool],
                     who: str, on_stall: Optional[Callable[[], None]] = None,
                     ) -> None:
    """Fill ``view`` from ``sock``, polling ``alive`` on timeouts.

    ``on_stall`` (observability hook) fires once per timed-out poll, i.e.
    once per ``_POLL_S`` the read spent blocked on an unready peer.
    """
    got = 0
    while got < len(view):
        try:
            n = sock.recv_into(view[got:])
        except socket.timeout:
            if not alive():
                raise ConnectionError(f"{who} died mid-frame")
            if on_stall is not None:
                on_stall()
            continue
        if n == 0:
            raise ConnectionError(f"{who} closed the connection mid-frame")
        got += n


def _recv_bytes_exact(sock, count: int, alive, who: str,
                      on_stall=None) -> bytearray:
    buf = bytearray(count)
    _recv_into_exact(sock, memoryview(buf), alive, who, on_stall)
    return buf


def _send_all(sock, view: memoryview, alive: Callable[[], bool],
              who: str, on_stall: Optional[Callable[[], None]] = None,
              ) -> None:
    """Push ``view`` down ``sock``, polling ``alive`` on timeouts.

    ``sock.sendall`` forgets how much it wrote when it times out, so a
    frame larger than the kernel buffer must be pushed ``send`` by
    ``send`` — the peer may legitimately be busy draining another
    worker's frame for much longer than one poll interval.  ``on_stall``
    fires once per timed-out poll (see :func:`_recv_into_exact`).
    """
    sent = 0
    while sent < len(view):
        try:
            sent += sock.send(view[sent:])
        except socket.timeout:
            if not alive():
                raise ConnectionError(f"{who} died mid-frame")
            if on_stall is not None:
                on_stall()
            continue


def _send_frame(sock, columns: ArrayOutbox, alive: Callable[[], bool],
                who: str, on_stall=None) -> None:
    """One superstep payload: length-prefixed layout, then raw columns."""
    layout = tuple(
        (kind, int(columns[kind][0].shape[0])) for kind in sorted(columns)
    )
    head = pickle.dumps(layout, protocol=pickle.HIGHEST_PROTOCOL)
    _send_all(sock, memoryview(struct.pack("<Q", len(head)) + head),
              alive, who, on_stall)
    for kind in sorted(columns):
        for col in columns[kind]:
            col = np.ascontiguousarray(col, dtype=np.int64)
            _send_all(sock, col.view(np.uint8).data, alive, who, on_stall)


def _recv_frame(sock, alive, who: str, on_stall=None) -> ArrayOutbox:
    (head_len,) = struct.unpack(
        "<Q", _recv_bytes_exact(sock, 8, alive, who, on_stall)
    )
    layout = pickle.loads(_recv_bytes_exact(sock, head_len, alive, who, on_stall))
    out: ArrayOutbox = {}
    for kind, rows in layout:
        width = SCHEMAS[kind].width + 1
        cols = []
        for _ in range(width):
            col = np.empty(rows, dtype=np.int64)
            _recv_into_exact(sock, col.view(np.uint8).data, alive, who, on_stall)
            col.flags.writeable = False
            cols.append(col)
        out[kind] = tuple(cols)
    return out


class SocketTransport(Transport):
    """Framed columns over localhost TCP: the two-"host" data plane.

    The driver listens on an ephemeral ``127.0.0.1`` port; every worker
    process dials in and authenticates with a per-engine cookie, making
    each worker group an independent "host" whose only shared state is
    the wire.  Payloads are length-framed raw column bytes — the same
    layout the shm transport packs — so promoting a worker group to a
    genuinely remote machine is a matter of the address, not the format.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1"):
        self._host = host
        self._listener = None
        self._port: Optional[int] = None
        self._cookie: bytes = b""
        self._socks: Dict[int, socket.socket] = {}
        self._processes: Dict[int, object] = {}

    def bind(self, worker_ids, mp_context) -> None:
        self._listener = socket.create_server((self._host, 0))
        self._listener.settimeout(_POLL_S)
        self._port = self._listener.getsockname()[1]
        self._cookie = os.urandom(16)

    def worker_endpoint(self, worker_id: int) -> "SocketWorkerEndpoint":
        return SocketWorkerEndpoint(
            self._host, self._port, worker_id, self._cookie
        )

    def attach(self, worker_id: int, process) -> None:
        self._processes[worker_id] = process
        while worker_id not in self._socks:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                if not process.is_alive():
                    raise WorkerCrashedError(
                        worker_id, process.exitcode, "before connecting"
                    )
                continue
            hello = _recv_bytes_exact(
                sock, 24, lambda: True, "connecting worker"
            )
            if bytes(hello[:16]) != self._cookie:
                sock.close()  # not ours: refuse cross-engine traffic
                continue
            (wid,) = struct.unpack("<q", hello[16:])
            sock.settimeout(_POLL_S)
            self._socks[wid] = sock

    def _alive(self, worker_id: int) -> bool:
        process = self._processes.get(worker_id)
        return process is None or process.is_alive()

    def _stall_hook(self, direction: str):
        """Per-poll stall hook charging ``_POLL_S`` to a counter (traced
        runs only; ``None`` — the fast path — when tracing is off)."""
        if self.obs is None:
            return None
        counter = self.obs.metrics.counter(
            f"transport.tcp.{direction}_stall_seconds"
        )
        return lambda: counter.inc(_POLL_S)

    def send_inbox(self, worker_id, payload, send_command) -> None:
        # Verb first: the worker must be draining the socket before a
        # larger-than-buffer frame is pushed, or sendall would deadlock.
        send_command(None)
        _send_frame(
            self._socks[worker_id],
            payload,
            lambda: self._alive(worker_id),
            f"worker {worker_id}",
            on_stall=self._stall_hook("send"),
        )
        if self.obs is not None:
            self.obs.metrics.histogram("transport.tcp.inbox_bytes").observe(
                _columns_nbytes(payload)
            )

    def recv_outbox(self, worker_id, recv_header) -> ArrayOutbox:
        recv_header()  # pipe ack: sequencing + crash detection
        outbox = _recv_frame(
            self._socks[worker_id],
            lambda: self._alive(worker_id),
            f"worker {worker_id}",
            on_stall=self._stall_hook("recv"),
        )
        if self.obs is not None:
            self.obs.metrics.histogram("transport.tcp.outbox_bytes").observe(
                _columns_nbytes(outbox)
            )
        return outbox

    def detach(self, worker_id) -> None:
        sock = self._socks.pop(worker_id, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._processes.pop(worker_id, None)

    def drain_stale(self, worker_id, header) -> None:
        # A ``None`` header is an outbox ack: a frame is in (or still
        # entering) the socket.  Drain it so the survivor unblocks and the
        # stream realigns; any other stale message (a collect dict, a
        # control reply) carries no out-of-band payload.
        if header is None and worker_id in self._socks:
            _recv_frame(
                self._socks[worker_id],
                lambda: self._alive(worker_id),
                f"worker {worker_id}",
            )

    def close(self) -> None:
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._socks.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None


class SocketWorkerEndpoint(WorkerEndpoint):
    def __init__(self, host: str, port: int, worker_id: int, cookie: bytes):
        self._host = host
        self._port = port
        self._worker_id = worker_id
        self._cookie = cookie
        self._sock: Optional[socket.socket] = None

    def open(self) -> None:
        # Exponential backoff over a bounded retry budget: a respawned
        # worker may dial in while the driver is still tearing down its
        # predecessor's socket or busy inside the recovery barrier.  The
        # schedule is jittered so simultaneously-respawned workers spread
        # their redials instead of hammering the listener in lock-step;
        # keying the jitter by (cookie, worker id) keeps each worker's
        # delays reproducible run over run.
        backoff = JitteredBackoff(
            _CONNECT_DELAY_S,
            attempts=_CONNECT_ATTEMPTS,
            key=(self._cookie, self._worker_id, "tcp-reconnect"),
        )

        def dial():
            self._sock = socket.create_connection((self._host, self._port))

        backoff.retry(dial, exceptions=(OSError,))
        self._sock.sendall(
            self._cookie + struct.pack("<q", self._worker_id)
        )
        self._sock.settimeout(_POLL_S)

    def recv_inbox(self, header) -> ArrayOutbox:
        return _recv_frame(self._sock, lambda: True, "driver")

    def send_outbox(self, payload, send_header) -> None:
        # Ack first (mirror of send_inbox): the driver reads the ack, then
        # drains the frame, so a big frame never wedges both ends.
        send_header(None)
        # alive() is always true on the worker side: if the driver dies
        # its end of the socket closes and send() raises instead.
        _send_frame(self._sock, payload, lambda: True, "driver")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
