"""Columnar message plane: typed schemas, array buffers, vectorised routing.

The reference BSP engine materialises every message as a Python tuple and
routes them one ``partitioner.owner()`` call at a time.  This module is the
array alternative: each message *kind* has a :class:`MessageSchema` fixing
its integer payload fields, senders accumulate messages as struct-of-arrays
``int64`` columns (:class:`ArrayMessageContext`), and the superstep barrier
(:func:`route_columns`) routes a whole outbox with a handful of numpy
passes — one :meth:`~repro.graph.partition.Partitioner.owner_array` gather
over the destination column, ``np.bincount`` for the per-worker split, and
one lexsort per kind for deterministic inbox order.

Equivalence with the tuple plane is exact and is what the test suite
asserts:

* **accounting** — a kind's wire size is fixed by its schema
  (``address + kind tag + 8 bytes per field``), matching
  :func:`repro.distributed.message.message_size_bytes` on the equivalent
  tuple, so per-superstep :class:`~repro.distributed.metrics.SuperstepStats`
  are identical counter for counter;
* **ordering** — within a kind, inbox rows are lexicographically sorted by
  ``(dst, fields...)``; merging kinds in ascending kind-string order
  reproduces the reference engine's fully sorted tuple inbox
  (:meth:`ArrayInbox.to_sorted_tuples`), which is how tuple programs run
  unchanged on the array engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.message import message_size_bytes
from repro.distributed.metrics import SuperstepStats
from repro.graph.partition import Partitioner

__all__ = [
    "MessageSchema",
    "SCHEMAS",
    "register_schema",
    "ArrayMessageContext",
    "ArrayInbox",
    "ArrayOutbox",
    "route_columns",
    "packed_nbytes",
    "pack_columns",
    "unpack_columns",
]

@dataclass(frozen=True)
class MessageSchema:
    """Fixed layout of one message kind: named int64 payload fields."""

    kind: str
    fields: Tuple[str, ...]

    @property
    def width(self) -> int:
        """Number of payload columns (the destination column is implicit)."""
        return len(self.fields)

    @property
    def message_bytes(self) -> int:
        """Wire size of one message of this kind.

        Computed *through* the tuple plane's
        :func:`~repro.distributed.message.message_size_bytes` on a
        representative tuple, so the per-schema accounting is identical to
        the per-message accounting by construction.
        """
        return message_size_bytes((0, (self.kind,) + (0,) * self.width))


#: Registry of every message kind the built-in programs exchange.
SCHEMAS: Dict[str, MessageSchema] = {}


def register_schema(kind: str, fields: Sequence[str]) -> MessageSchema:
    """Register (or re-register, identically) a message kind's schema."""
    schema = MessageSchema(kind, tuple(fields))
    existing = SCHEMAS.get(kind)
    if existing is not None and existing != schema:
        raise ValueError(
            f"message kind {kind!r} already registered with fields "
            f"{existing.fields}, cannot re-register with {schema.fields}"
        )
    SCHEMAS[kind] = schema
    return schema


# Algorithm 1 (rSLPA fetch protocol).
register_schema("req", ("pos", "requester", "t"))
register_schema("lab", ("label", "src", "pos", "t"))
# SLPA baseline (push protocol).
register_schema("spk", ("label", "t"))
# Algorithm 2 (Correction Propagation).
register_schema("unreg", ("pos", "tar", "k"))
register_schema("fetch", ("pos", "tar", "k"))
register_schema("fval", ("label", "k", "src", "pos", "version"))
register_schema("corr", ("label", "k", "src", "pos", "version"))


class _ColumnBuffer:
    """One kind's growing struct-of-arrays store: dst plus payload columns."""

    __slots__ = ("schema", "size", "_cols")

    def __init__(self, schema: MessageSchema, capacity: int = 16):
        self.schema = schema
        self.size = 0
        self._cols = [
            np.empty(capacity, dtype=np.int64) for _ in range(schema.width + 1)
        ]

    def _grow_to(self, need: int) -> None:
        capacity = self._cols[0].shape[0]
        if need <= capacity:
            return
        new_capacity = max(capacity * 2, need)
        for i, col in enumerate(self._cols):
            grown = np.empty(new_capacity, dtype=np.int64)
            grown[: self.size] = col[: self.size]
            self._cols[i] = grown

    def append_columns(self, dst: np.ndarray, cols: Sequence[np.ndarray]) -> None:
        if len(cols) != self.schema.width:
            raise ValueError(
                f"kind {self.schema.kind!r} takes {self.schema.width} payload "
                f"columns {self.schema.fields}, got {len(cols)}"
            )
        m = len(dst)
        if m == 0:
            return
        end = self.size + m
        self._grow_to(end)
        self._cols[0][self.size : end] = dst
        for i, col in enumerate(cols, start=1):
            if len(col) != m:
                raise ValueError(
                    f"column length mismatch for kind {self.schema.kind!r}: "
                    f"dst has {m} rows, field "
                    f"{self.schema.fields[i - 1]!r} has {len(col)}"
                )
            self._cols[i][self.size : end] = col
        self.size = end

    def append_row(self, dst: int, values: Sequence[int]) -> None:
        if len(values) != self.schema.width:
            raise ValueError(
                f"kind {self.schema.kind!r} takes {self.schema.width} payload "
                f"fields {self.schema.fields}, got {len(values)}"
            )
        end = self.size + 1
        self._grow_to(end)
        self._cols[0][self.size] = dst
        for i, value in enumerate(values, start=1):
            self._cols[i][self.size] = value
        self.size = end

    def columns(self) -> Tuple[np.ndarray, ...]:
        """The filled ``(dst, field...)`` column views."""
        return tuple(col[: self.size] for col in self._cols)


#: A finalized outbox: kind -> (dst column, payload columns...).
ArrayOutbox = Dict[str, Tuple[np.ndarray, ...]]


class ArrayMessageContext:
    """Collects one worker's sends as per-kind growing int64 columns.

    The columnar sibling of
    :class:`~repro.distributed.engine.MessageContext`: array programs emit
    whole column batches via :meth:`send_columns`; the scalar :meth:`send`
    accepts reference-style ``(kind, *ints)`` payload tuples so tuple
    programs can run on the array plane through an adapter.
    """

    __slots__ = ("_buffers",)

    def __init__(self):
        self._buffers: Dict[str, _ColumnBuffer] = {}

    def _buffer(self, kind: str) -> _ColumnBuffer:
        buffer = self._buffers.get(kind)
        if buffer is None:
            schema = SCHEMAS.get(kind)
            if schema is None:
                raise KeyError(
                    f"unknown message kind {kind!r}; register_schema() it "
                    "before sending on the array plane"
                )
            buffer = self._buffers[kind] = _ColumnBuffer(schema)
        return buffer

    def send_columns(
        self, kind: str, dst: np.ndarray, *cols: np.ndarray
    ) -> None:
        """Queue one message per row of ``dst`` with the given field columns."""
        self._buffer(kind).append_columns(dst, cols)

    def send(self, dst_vertex: int, payload: tuple) -> None:
        """Tuple-plane compatible scalar send (``payload[0]`` is the kind)."""
        self._buffer(payload[0]).append_row(int(dst_vertex), payload[1:])

    @property
    def total_messages(self) -> int:
        return sum(buffer.size for buffer in self._buffers.values())

    def finalize(self) -> ArrayOutbox:
        """The accumulated outbox as per-kind column tuples."""
        return {
            kind: buffer.columns()
            for kind, buffer in self._buffers.items()
            if buffer.size
        }


class ArrayInbox:
    """One worker's per-superstep inbox in columnar form.

    Per kind, rows are sorted lexicographically by ``(dst, fields...)`` —
    the reference engine's tuple order restricted to that kind.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Optional[ArrayOutbox] = None):
        self._columns: ArrayOutbox = columns or {}

    def kinds(self) -> List[str]:
        return sorted(self._columns)

    def columns(self, kind: str) -> Optional[Tuple[np.ndarray, ...]]:
        """``(dst, field...)`` columns of ``kind``, or ``None`` if absent."""
        return self._columns.get(kind)

    @property
    def total_messages(self) -> int:
        return sum(len(cols[0]) for cols in self._columns.values())

    def __bool__(self) -> bool:
        return bool(self._columns)

    def materialize(self) -> "ArrayInbox":
        """An inbox whose columns are owned copies.

        Transport-delivered inboxes may be views into shared memory that
        a later superstep rewrites (see :mod:`repro.distributed.transport`);
        a program that wants to keep columns beyond the superstep that
        delivered them copies here first.
        """
        return ArrayInbox(
            {
                kind: tuple(np.array(col) for col in cols)
                for kind, cols in self._columns.items()
            }
        )

    def to_sorted_tuples(self) -> List[tuple]:
        """The reference engine's sorted tuple inbox, reconstructed exactly.

        Rows become ``(dst, kind, *fields)`` tuples of plain Python ints;
        the full sort merges kinds into the reference order (tuples compare
        ``(dst, kind-string, ints...)``, and rows of equal dst and kind
        have identical widths).
        """
        out: List[tuple] = []
        for kind in self.kinds():
            cols = self._columns[kind]
            as_lists = [col.tolist() for col in cols]
            out.extend(
                (dst, kind, *rest)
                for dst, *rest in zip(*as_lists)
            )
        out.sort()
        return out


def route_columns(
    outboxes: Dict[int, ArrayOutbox],
    partitioner: Partitioner,
    num_partitions: int,
    superstep: int,
) -> Tuple[Dict[int, ArrayOutbox], SuperstepStats]:
    """The vectorised synchronisation barrier.

    Takes every worker's finalized outbox, returns per-worker inbox columns
    plus the superstep's communication counters.  Per kind: concatenate
    across senders, one ``owner_array`` gather over the dst column, schema
    byte accounting (no per-message size calls), a remote/local split from
    one vector compare, then ``lexsort + bincount + cumsum`` to emit
    per-worker groups in deterministic ``(dst, fields...)`` order.
    """
    step_stats = SuperstepStats(superstep=superstep)
    inboxes: Dict[int, ArrayOutbox] = {p: {} for p in range(num_partitions)}
    kinds = sorted({kind for outbox in outboxes.values() for kind in outbox})
    for kind in kinds:
        schema = SCHEMAS[kind]
        chunks = [
            (sender, outbox[kind])
            for sender, outbox in sorted(outboxes.items())
            if kind in outbox and len(outbox[kind][0])
        ]
        if not chunks:
            continue
        width = schema.width
        dst = np.concatenate([cols[0] for _, cols in chunks])
        fields = [
            np.concatenate([cols[i] for _, cols in chunks])
            for i in range(1, width + 1)
        ]
        senders = np.concatenate(
            [
                np.full(len(cols[0]), sender, dtype=np.int64)
                for sender, cols in chunks
            ]
        )
        owners = partitioner.owner_array(dst)
        if int(owners.min()) < 0 or int(owners.max()) >= num_partitions:
            # Fail as loudly as the reference engine's inboxes[owner] KeyError
            # would: a partitioner bug must not silently drop messages.
            bad = dst[(owners < 0) | (owners >= num_partitions)]
            raise ValueError(
                f"partitioner assigned owners outside 0..{num_partitions - 1} "
                f"for destinations {bad[:5].tolist()}"
            )

        m = int(dst.shape[0])
        step_stats.messages += m
        step_stats.bytes += m * schema.message_bytes
        remote = int(np.count_nonzero(owners != senders))
        step_stats.remote_messages += remote
        step_stats.remote_bytes += remote * schema.message_bytes

        # Owner-major, then (dst, fields...) lexicographic within an owner.
        order = np.lexsort(tuple(fields[::-1]) + (dst, owners))
        counts = np.bincount(owners, minlength=num_partitions)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        dst_sorted = dst[order]
        fields_sorted = [field[order] for field in fields]
        for p in range(num_partitions):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            if lo == hi:
                continue
            inboxes[p][kind] = (dst_sorted[lo:hi],) + tuple(
                field[lo:hi] for field in fields_sorted
            )
    return inboxes, step_stats


# ----------------------------------------------------------------------
# Flat buffer packing (the transport wire/shared-memory format)
# ----------------------------------------------------------------------
# An ArrayOutbox flattens into one contiguous int64 region with a purely
# structural index: kinds in ascending name order, each kind's columns in
# (dst, fields...) order, each column ``rows * 8`` bytes.  The layout
# tuple ``((kind, rows), ...)`` plus the schema registry fully determine
# every offset, so the index exchanged between processes stays a few
# dozen bytes regardless of payload size.  Both sides must register the
# same schemas (module import does this for the built-in kinds; plugins
# must register theirs before the engine spawns workers).

def packed_nbytes(columns: ArrayOutbox) -> int:
    """Bytes needed to pack ``columns`` with :func:`pack_columns`."""
    total = 0
    for kind, cols in columns.items():
        total += len(cols) * int(cols[0].shape[0]) * 8
    return total


def pack_columns(columns: ArrayOutbox, buf) -> Tuple[Tuple[str, int], ...]:
    """Write ``columns`` into ``buf`` (a writable buffer); returns the layout."""
    layout = []
    offset = 0
    for kind in sorted(columns):
        cols = columns[kind]
        rows = int(cols[0].shape[0])
        layout.append((kind, rows))
        for col in cols:
            target = np.frombuffer(buf, dtype=np.int64, count=rows, offset=offset)
            target[:] = col
            offset += rows * 8
    return tuple(layout)


def unpack_columns(buf, layout: Sequence[Tuple[str, int]]) -> ArrayOutbox:
    """Read-only column views over ``buf`` for a :func:`pack_columns` layout.

    The views alias ``buf`` (zero copy); they stay valid only as long as
    the underlying buffer does — transports document the exact lifetime.
    """
    out: ArrayOutbox = {}
    offset = 0
    for kind, rows in layout:
        width = SCHEMAS[kind].width + 1
        cols = []
        for _ in range(width):
            view = np.frombuffer(buf, dtype=np.int64, count=rows, offset=offset)
            view.flags.writeable = False
            cols.append(view)
            offset += rows * 8
        out[kind] = tuple(cols)
    return out
