"""The BSP superstep engine.

Executes a :class:`WorkerProgram` over a set of worker shards in bulk-
synchronous supersteps, exactly like the MapReduce/Spark execution model the
paper targets (Section V-B2): within a superstep every worker processes its
inbox and emits messages; the engine routes messages to the owner of the
destination vertex at the synchronisation barrier and records communication
statistics.

Programs are *worker-level* (one instance per shard) rather than
vertex-level: the paper's algorithms are most naturally written as mappers/
reducers over a worker's local vertices (see Algorithms 1-2), and this keeps
the simulation fast.

Determinism: workers run in id order and inboxes are delivered sorted, so a
run is a pure function of (program, shards, seed) — the property that lets
the test suite assert distributed == sequential equality bit-for-bit.

Observability: setting :attr:`BSPEngine.obs` (a :class:`repro.obs.Obs`,
done by the cluster wrappers when the plan says ``trace=True``) records
one ``engine.compute`` span per worker per superstep and one
``engine.route`` span per barrier; the default ``None`` keeps the hot
loop free of any call into :mod:`repro.obs`.
"""

from __future__ import annotations

from time import time_ns
from typing import Dict, List, Sequence

from repro.distributed.message import Message, message_size_bytes
from repro.distributed.metrics import CommStats, SuperstepStats
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["WorkerProgram", "MessageContext", "BSPEngine"]


class MessageContext:
    """Collects the messages a worker emits during one superstep."""

    __slots__ = ("outbox",)

    def __init__(self):
        self.outbox: List[Message] = []

    def send(self, dst_vertex: int, payload: tuple) -> None:
        """Queue ``payload`` for delivery to ``dst_vertex`` next superstep."""
        self.outbox.append((dst_vertex, payload))


class WorkerProgram:
    """Base class for worker-level BSP programs.

    Subclasses hold per-worker algorithm state, are constructed once per
    shard, and must be picklable if run under the multiprocess backend.
    """

    def __init__(self, shard: WorkerShard):
        self.shard = shard

    def on_start(self, ctx: MessageContext) -> None:
        """Called once before superstep 1; emit initial messages here."""

    def on_superstep(
        self, ctx: MessageContext, superstep: int, inbox: Sequence[tuple]
    ) -> None:
        """Process this worker's inbox; emit follow-up messages via ``ctx``.

        ``inbox`` holds the payload tuples addressed to this worker's
        vertices (each payload's first field is the destination vertex by
        engine convention — see :meth:`BSPEngine.run`), sorted for
        determinism.  The engine stops when a superstep generates no
        messages anywhere.
        """
        raise NotImplementedError

    def collect(self) -> dict:
        """Return this worker's final local results (merged by the caller)."""
        return {}

    def snapshot(self) -> dict:
        """Portable copy of this program's mutable state (checkpointing).

        The default captures everything in ``__dict__`` except the shard:
        shards are immutable inputs the supervisor re-ships to a
        replacement process, not state.  The snapshot is pickled across a
        process boundary, which is what gives it copy semantics — programs
        whose state is builtins/ndarrays (all built-ins) need not override.
        """
        return {k: v for k, v in self.__dict__.items() if k != "shard"}

    def restore(self, snapshot: dict) -> None:
        """Reinstate a :meth:`snapshot`; replay from it is bit-identical
        because every random draw is keyed by counters in that state."""
        self.__dict__.update(snapshot)


class BSPEngine:
    """Runs a program over shards with synchronous message routing."""

    def __init__(self, shards: Sequence[WorkerShard], partitioner: Partitioner):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        self.shards = list(shards)
        self.partitioner = partitioner
        self.stats = CommStats()
        self.obs = None  # set to a repro.obs.Obs to record this engine

    def _route(
        self, outboxes: Dict[int, List[Message]], superstep: int
    ) -> Dict[int, List[tuple]]:
        """Deliver messages to owning workers; account communication."""
        obs = self.obs
        if obs is not None:
            route_start = time_ns()
        step_stats = SuperstepStats(superstep=superstep)
        inboxes: Dict[int, List[tuple]] = {s.worker_id: [] for s in self.shards}
        for sender_id, outbox in outboxes.items():
            for dst_vertex, payload in outbox:
                owner = self.partitioner.owner(dst_vertex)
                size = message_size_bytes((dst_vertex, payload))
                step_stats.messages += 1
                step_stats.bytes += size
                if owner != sender_id:
                    step_stats.remote_messages += 1
                    step_stats.remote_bytes += size
                # Engine convention: the destination vertex is prepended so
                # programs can dispatch without a second lookup table.
                inboxes[owner].append((dst_vertex,) + payload)
        for inbox in inboxes.values():
            inbox.sort()
        self.stats.record(step_stats)
        if obs is not None:
            obs.trace.record(
                "engine.route", route_start, plane="tuple", superstep=superstep
            )
            obs.metrics.counter("engine.messages").inc(step_stats.messages)
            obs.metrics.counter("engine.remote_messages").inc(
                step_stats.remote_messages
            )
            obs.metrics.counter("engine.bytes").inc(step_stats.bytes)
            obs.metrics.counter("engine.remote_bytes").inc(
                step_stats.remote_bytes
            )
        return inboxes

    def run(
        self,
        programs: Sequence[WorkerProgram],
        max_supersteps: int = 100_000,
    ) -> List[WorkerProgram]:
        """Execute until message quiescence (or the superstep cap).

        Returns the programs so callers can :meth:`WorkerProgram.collect`.
        """
        if len(programs) != len(self.shards):
            raise ValueError("one program instance per shard is required")
        obs = self.obs
        outboxes: Dict[int, List[Message]] = {}
        for program in programs:
            if obs is not None:
                compute_start = time_ns()
            ctx = MessageContext()
            program.on_start(ctx)
            outboxes[program.shard.worker_id] = ctx.outbox
            if obs is not None:
                obs.trace.record(
                    "engine.compute",
                    compute_start,
                    plane="tuple",
                    worker=program.shard.worker_id,
                    superstep=0,
                )
        superstep = 0
        while any(outboxes.values()):
            superstep += 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"BSP program did not quiesce within {max_supersteps} supersteps"
                )
            inboxes = self._route(outboxes, superstep)
            outboxes = {}
            for program in programs:
                if obs is not None:
                    compute_start = time_ns()
                ctx = MessageContext()
                inbox = inboxes.get(program.shard.worker_id, [])
                program.on_superstep(ctx, superstep, inbox)
                outboxes[program.shard.worker_id] = ctx.outbox
                if obs is not None:
                    obs.trace.record(
                        "engine.compute",
                        compute_start,
                        plane="tuple",
                        worker=program.shard.worker_id,
                        superstep=superstep,
                    )
        return list(programs)
