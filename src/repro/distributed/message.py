"""Message representation and size accounting for the BSP engine.

Messages are plain ``(dst_vertex, payload)`` pairs — the payload is a tuple
of ints/strs.  Keeping them as tuples (instead of a dataclass) matters: the
engine routes millions of them in the larger benches.

:func:`payload_size_bytes` provides the byte estimate used by the
communication-cost accounting (8 bytes per integer field, UTF-8 length for
strings, plus an 8-byte vertex address) — a deliberately simple serialised
size model matching how the paper counts "labels passing through the graph".
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["Message", "payload_size_bytes", "message_size_bytes"]

# A message is (dst_vertex, payload-tuple).
Message = Tuple[int, tuple]

_ADDRESS_BYTES = 8


def payload_size_bytes(payload: tuple) -> int:
    """Estimated wire size of a payload tuple."""
    size = 0
    for field in payload:
        if isinstance(field, str):
            size += len(field.encode("utf-8"))
        elif isinstance(field, (tuple, list, frozenset, set)):
            size += payload_size_bytes(tuple(field))
        else:
            size += 8
    return size


def message_size_bytes(message: Message) -> int:
    """Estimated wire size of a full message (address + payload)."""
    return _ADDRESS_BYTES + payload_size_bytes(message[1])
