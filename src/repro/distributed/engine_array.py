"""The columnar BSP superstep engine.

Drop-in sibling of :class:`repro.distributed.engine.BSPEngine` whose
message plane is the struct-of-arrays one from
:mod:`repro.distributed.message_array`: programs emit column batches into
an :class:`~repro.distributed.message_array.ArrayMessageContext`, and the
synchronisation barrier is one vectorised
:func:`~repro.distributed.message_array.route_columns` call instead of a
per-message Python loop.

Two program flavours run here:

* :class:`ArrayWorkerProgram` subclasses — array-native, they consume the
  per-kind inbox columns wholesale (see
  :mod:`repro.distributed.programs_array`);
* any reference :class:`~repro.distributed.engine.WorkerProgram` wrapped
  in a :class:`TupleProgramAdapter`, which reconstructs the reference
  engine's sorted tuple inbox from the columns and converts scalar sends
  back — bit-identical behaviour on the new plane without touching the
  program (how Correction Propagation runs here).

Determinism and accounting are exactly the reference engine's: same inbox
order guarantees, same per-superstep :class:`CommStats` counters (the test
suite asserts both, message for message).  So is the observability hook:
set :attr:`ArrayBSPEngine.obs` to record ``engine.compute`` /
``engine.route`` spans, leave it ``None`` for a zero-overhead run.
"""

from __future__ import annotations

from time import time_ns
from typing import Dict, List, Sequence

from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.message_array import (
    ArrayInbox,
    ArrayMessageContext,
    ArrayOutbox,
    route_columns,
)
from repro.distributed.metrics import CommStats
from repro.distributed.worker import WorkerShard
from repro.graph.partition import Partitioner

__all__ = ["ArrayWorkerProgram", "TupleProgramAdapter", "ArrayBSPEngine"]


class ArrayWorkerProgram:
    """Base class for array-native worker programs.

    The columnar counterpart of
    :class:`~repro.distributed.engine.WorkerProgram`: ``ctx`` is an
    :class:`ArrayMessageContext` and the inbox arrives as an
    :class:`ArrayInbox` of per-kind column tuples (sorted by
    ``(dst, fields...)`` within each kind).
    """

    def __init__(self, shard: WorkerShard):
        self.shard = shard

    def on_start(self, ctx: ArrayMessageContext) -> None:
        """Called once before superstep 1; emit initial messages here."""

    def on_superstep(
        self, ctx: ArrayMessageContext, superstep: int, inbox: ArrayInbox
    ) -> None:
        """Process this worker's inbox columns; emit follow-ups via ``ctx``.

        Inbox columns are read-only and only guaranteed valid for the
        duration of this call: under the multiprocess shared-memory
        transport they are views into a ring slot that is rewritten two
        supersteps later.  Programs that must retain inbox data across
        supersteps should keep :meth:`ArrayInbox.materialize`'s owned
        copy instead of the inbox itself (the built-in programs consume
        their inbox within the superstep, which is the common shape).
        """
        raise NotImplementedError

    def collect(self) -> dict:
        """Return this worker's final local results (merged by the caller)."""
        return {}

    def snapshot(self) -> dict:
        """Portable copy of the mutable state (everything but the shard);
        same contract as :meth:`WorkerProgram.snapshot
        <repro.distributed.engine.WorkerProgram.snapshot>`."""
        return {k: v for k, v in self.__dict__.items() if k != "shard"}

    def restore(self, snapshot: dict) -> None:
        """Reinstate a :meth:`snapshot` for bit-identical replay."""
        self.__dict__.update(snapshot)


class TupleProgramAdapter(ArrayWorkerProgram):
    """Runs an unmodified tuple-plane program on the columnar engine.

    The adapter rebuilds the reference engine's fully sorted tuple inbox
    (:meth:`ArrayInbox.to_sorted_tuples`) for ``on_superstep`` and funnels
    the program's scalar sends into the column buffers, so the wrapped
    program observes exactly the reference engine's contract.
    """

    def __init__(self, program: WorkerProgram):
        super().__init__(program.shard)
        self.program = program

    def on_start(self, ctx: ArrayMessageContext) -> None:
        tuple_ctx = MessageContext()
        self.program.on_start(tuple_ctx)
        for dst_vertex, payload in tuple_ctx.outbox:
            ctx.send(dst_vertex, payload)

    def on_superstep(
        self, ctx: ArrayMessageContext, superstep: int, inbox: ArrayInbox
    ) -> None:
        tuple_ctx = MessageContext()
        self.program.on_superstep(tuple_ctx, superstep, inbox.to_sorted_tuples())
        for dst_vertex, payload in tuple_ctx.outbox:
            ctx.send(dst_vertex, payload)

    def collect(self) -> dict:
        return self.program.collect()

    def snapshot(self) -> dict:
        # Delegate: the wrapped program's state is the state (the default
        # would capture `self.program` wholesale, shard included).
        return self.program.snapshot()

    def restore(self, snapshot: dict) -> None:
        self.program.restore(snapshot)


class ArrayBSPEngine:
    """Runs array programs over shards with a vectorised routing barrier."""

    def __init__(self, shards: Sequence[WorkerShard], partitioner: Partitioner):
        if len(shards) != partitioner.num_partitions:
            raise ValueError(
                f"{len(shards)} shards but partitioner has "
                f"{partitioner.num_partitions} partitions"
            )
        worker_ids = sorted(shard.worker_id for shard in shards)
        if worker_ids != list(range(partitioner.num_partitions)):
            # route_columns addresses inboxes by partition index, so ids
            # must BE the partition indices (the builders guarantee this);
            # fail loudly instead of silently dropping misaddressed mail.
            raise ValueError(
                f"shard worker_ids {worker_ids} must be the partition "
                f"indices 0..{partitioner.num_partitions - 1}"
            )
        self.shards = list(shards)
        self.partitioner = partitioner
        self.stats = CommStats()
        self.obs = None  # set to a repro.obs.Obs to record this engine

    def run(
        self,
        programs: Sequence[ArrayWorkerProgram],
        max_supersteps: int = 100_000,
    ) -> List[ArrayWorkerProgram]:
        """Execute until message quiescence (or the superstep cap)."""
        if len(programs) != len(self.shards):
            raise ValueError("one program instance per shard is required")
        obs = self.obs
        num_partitions = self.partitioner.num_partitions
        outboxes: Dict[int, ArrayOutbox] = {}
        for program in programs:
            if obs is not None:
                compute_start = time_ns()
            ctx = ArrayMessageContext()
            program.on_start(ctx)
            outboxes[program.shard.worker_id] = ctx.finalize()
            if obs is not None:
                obs.trace.record(
                    "engine.compute",
                    compute_start,
                    plane="array",
                    worker=program.shard.worker_id,
                    superstep=0,
                )
        superstep = 0
        while any(outboxes.values()):
            superstep += 1
            if superstep > max_supersteps:
                raise RuntimeError(
                    f"BSP program did not quiesce within {max_supersteps} supersteps"
                )
            if obs is not None:
                route_start = time_ns()
            inboxes, step_stats = route_columns(
                outboxes, self.partitioner, num_partitions, superstep
            )
            self.stats.record(step_stats)
            if obs is not None:
                obs.trace.record(
                    "engine.route", route_start, plane="array",
                    superstep=superstep,
                )
                obs.metrics.counter("engine.messages").inc(step_stats.messages)
                obs.metrics.counter("engine.remote_messages").inc(
                    step_stats.remote_messages
                )
                obs.metrics.counter("engine.bytes").inc(step_stats.bytes)
                obs.metrics.counter("engine.remote_bytes").inc(
                    step_stats.remote_bytes
                )
            outboxes = {}
            for program in programs:
                if obs is not None:
                    compute_start = time_ns()
                ctx = ArrayMessageContext()
                inbox = ArrayInbox(inboxes.get(program.shard.worker_id))
                program.on_superstep(ctx, superstep, inbox)
                outboxes[program.shard.worker_id] = ctx.finalize()
                if obs is not None:
                    obs.trace.record(
                        "engine.compute",
                        compute_start,
                        plane="array",
                        worker=program.shard.worker_id,
                        superstep=superstep,
                    )
        return list(programs)
