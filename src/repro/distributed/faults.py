"""Deterministic fault injection for the multiprocess BSP engine.

Fault-tolerance code is only trustworthy if its failure paths run in CI,
and failure paths only run in CI if failures can be *scripted*.  A
:class:`FaultPlan` is that script: a declarative, picklable description of
which worker misbehaves at which superstep, handed to
:class:`~repro.distributed.multiprocess.MultiprocessBSPEngine` (and from
there to every worker process), so tests and benchmarks can replay the
exact same failure on every run.

Five fault kinds, all keyed by ``(worker_id, superstep)`` — superstep 0
is the ``start`` barrier, superstep ``s >= 1`` the ``step`` verb for
superstep ``s``:

``kill``
    The worker SIGKILLs itself on receiving the verb, before touching its
    inbox — the hard-crash case (OOM killer, machine loss).
``drop_send``
    The worker computes its superstep but exits before its outbox moves,
    simulating a transport send that never completes.  To the driver this
    is indistinguishable from a crash (by design: a half-sent superstep
    must never be half-applied).
``stall``
    The worker sleeps for the given seconds before computing — the
    slow-worker / GC-pause case.  The driver's liveness polling must wait
    it out, not misdiagnose it as a crash.
``delay``
    The worker sleeps *after* computing but before sending, widening the
    window in which other workers' crashes are detected mid-barrier.
``torn_snapshot``
    The worker truncates the checkpoint blob it returns for that
    superstep (keeping the CRC of the intact blob), simulating a torn
    checkpoint write; the driver must reject the whole cut and keep the
    previous one.

The plan only *decides*; the worker loop performs the actions, so the
decisions stay unit-testable in-process.  Supervised recovery respawns a
dead worker with :meth:`without_worker` applied — a respawned worker is
healthy, which is what makes every scripted kill terminate instead of
re-firing on replay forever.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = ["FaultPlan"]

Site = Tuple[int, int]  # (worker_id, superstep)


def _check_site(site, kind: str) -> Site:
    try:
        worker, superstep = site
    except (TypeError, ValueError):
        raise ValueError(
            f"{kind} fault must be a (worker_id, superstep) pair, got {site!r}"
        )
    worker, superstep = int(worker), int(superstep)
    if worker < 0 or superstep < 0:
        raise ValueError(
            f"{kind} fault needs worker_id >= 0 and superstep >= 0, "
            f"got ({worker}, {superstep})"
        )
    return (worker, superstep)


def _sites(single, many: Iterable, kind: str) -> FrozenSet[Site]:
    sites = [_check_site(site, kind) for site in many]
    if single is not None:
        sites.append(_check_site(single, kind))
    return frozenset(sites)


def _timed_sites(single, many: Iterable, kind: str) -> Dict[Site, float]:
    timed: Dict[Site, float] = {}
    entries = list(many)
    if single is not None:
        entries.append(single)
    for entry in entries:
        try:
            worker, superstep, seconds = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"{kind} fault must be a (worker_id, superstep, seconds) "
                f"triple, got {entry!r}"
            )
        site = _check_site((worker, superstep), kind)
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"{kind} seconds must be >= 0, got {seconds}")
        timed[site] = seconds  # one duration per site: last spec wins
    return timed


class FaultPlan:
    """A deterministic failure script for one multiprocess run.

    Singular keywords (``kill=``, ``drop_send=``, ``stall=``, ``delay=``,
    ``torn_snapshot=``) take one fault spec; their plural forms take any
    iterable of specs.  Instances are immutable in spirit, picklable (they
    cross the process boundary with the worker arguments), and comparable
    by value.

    >>> plan = FaultPlan(kill=(1, 3), stall=(0, 2, 0.1))
    >>> plan.should_kill(1, 3), plan.should_kill(1, 2)
    (True, False)
    >>> plan.without_worker(1).should_kill(1, 3)
    False
    """

    __slots__ = ("kills", "drop_sends", "stalls", "delays", "torn_snapshots")

    def __init__(
        self,
        kill: Optional[Site] = None,
        kills: Iterable[Site] = (),
        drop_send: Optional[Site] = None,
        drop_sends: Iterable[Site] = (),
        stall=None,
        stalls: Iterable = (),
        delay=None,
        delays: Iterable = (),
        torn_snapshot: Optional[Site] = None,
        torn_snapshots: Iterable[Site] = (),
    ):
        self.kills = _sites(kill, kills, "kill")
        self.drop_sends = _sites(drop_send, drop_sends, "drop_send")
        self.stalls = _timed_sites(stall, stalls, "stall")
        self.delays = _timed_sites(delay, delays, "delay")
        self.torn_snapshots = _sites(torn_snapshot, torn_snapshots, "torn_snapshot")

    # ------------------------------------------------------------------
    # Decisions (the worker loop performs the matching actions)
    # ------------------------------------------------------------------
    def should_kill(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.kills

    def should_drop_send(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.drop_sends

    def stall_seconds(self, worker_id: int, superstep: int) -> float:
        return self.stalls.get((worker_id, superstep), 0.0)

    def delay_seconds(self, worker_id: int, superstep: int) -> float:
        return self.delays.get((worker_id, superstep), 0.0)

    def should_tear_snapshot(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.torn_snapshots

    # ------------------------------------------------------------------
    # Plan algebra
    # ------------------------------------------------------------------
    def without_worker(self, worker_id: int) -> "FaultPlan":
        """The plan with every fault of ``worker_id`` removed.

        Supervised recovery hands this to the replacement process, so a
        scripted failure fires exactly once: a respawned worker is healthy.
        """
        keep = lambda site: site[0] != worker_id  # noqa: E731
        return FaultPlan(
            kills=filter(keep, self.kills),
            drop_sends=filter(keep, self.drop_sends),
            stalls=(
                site + (seconds,)
                for site, seconds in self.stalls.items()
                if keep(site)
            ),
            delays=(
                site + (seconds,)
                for site, seconds in self.delays.items()
                if keep(site)
            ),
            torn_snapshots=filter(keep, self.torn_snapshots),
        )

    def __bool__(self) -> bool:
        return bool(
            self.kills
            or self.drop_sends
            or self.stalls
            or self.delays
            or self.torn_snapshots
        )

    def _key(self):
        return (
            self.kills,
            self.drop_sends,
            tuple(sorted(self.stalls.items())),
            tuple(sorted(self.delays.items())),
            self.torn_snapshots,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    # __slots__ classes need explicit pickle support (no __dict__).
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        parts = []
        for label, sites in (
            ("kills", self.kills),
            ("drop_sends", self.drop_sends),
            ("torn_snapshots", self.torn_snapshots),
        ):
            if sites:
                parts.append(f"{label}={sorted(sites)}")
        for label, timed in (("stalls", self.stalls), ("delays", self.delays)):
            if timed:
                parts.append(f"{label}={sorted(timed.items())}")
        return f"FaultPlan({', '.join(parts)})"
