"""Deterministic fault injection for the multiprocess BSP engine.

Fault-tolerance code is only trustworthy if its failure paths run in CI,
and failure paths only run in CI if failures can be *scripted*.  A
:class:`FaultPlan` is that script: a declarative, picklable description of
which worker misbehaves at which superstep, handed to
:class:`~repro.distributed.multiprocess.MultiprocessBSPEngine` (and from
there to every worker process), so tests and benchmarks can replay the
exact same failure on every run.

Five fault kinds, all keyed by ``(worker_id, superstep)`` — superstep 0
is the ``start`` barrier, superstep ``s >= 1`` the ``step`` verb for
superstep ``s``:

``kill``
    The worker SIGKILLs itself on receiving the verb, before touching its
    inbox — the hard-crash case (OOM killer, machine loss).
``drop_send``
    The worker computes its superstep but exits before its outbox moves,
    simulating a transport send that never completes.  To the driver this
    is indistinguishable from a crash (by design: a half-sent superstep
    must never be half-applied).
``stall``
    The worker sleeps for the given seconds before computing — the
    slow-worker / GC-pause case.  The driver's liveness polling must wait
    it out, not misdiagnose it as a crash.
``delay``
    The worker sleeps *after* computing but before sending, widening the
    window in which other workers' crashes are detected mid-barrier.
``torn_snapshot``
    The worker truncates the checkpoint blob it returns for that
    superstep (keeping the CRC of the intact blob), simulating a torn
    checkpoint write; the driver must reject the whole cut and keep the
    previous one.

The plan only *decides*; the worker loop performs the actions, so the
decisions stay unit-testable in-process.  Supervised recovery respawns a
dead worker with :meth:`without_worker` applied — a respawned worker is
healthy, which is what makes every scripted kill terminate instead of
re-firing on replay forever.

The same script drives the *service plane*
(:mod:`repro.service.replication`), keyed by WAL sequence number instead
of superstep:

``kill_primary``
    ``(seq, phase)`` — the primary SIGKILLs itself at batch ``seq``,
    either on ``"recv"`` (before the WAL append: the batch is lost in
    flight and must be re-sent to the promoted primary) or ``"applied"``
    (after WAL append + apply, before acking: the promoted replica must
    replay it from the shipped/on-disk tail).  A bare int means
    ``"applied"``.
``kill_replica``
    ``(replica_id, seq)`` — the replica SIGKILLs itself after applying
    shipped record ``seq``; the supervisor must respawn it and the client
    must re-route around it meanwhile.
``drop_wal_record``
    ``(replica_id, seq)`` — the shipped copy of record ``seq`` to that
    replica is dropped once in transit; the replica's gap detection must
    nack and the supervisor re-ship.
``stall_heartbeat``
    ``(replica_id, seq, seconds)`` — the replica stops heartbeating (and
    answering queries) for ``seconds`` after applying ``seq``; the client
    must re-route to a live peer instead of erroring.

Promotion and respawn strip the fired fault with
:meth:`without_kill_primary` / :meth:`without_replica`, the service-plane
mirror of :meth:`without_worker`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = ["FaultPlan"]

Site = Tuple[int, int]  # (worker_id, superstep)


def _check_site(site, kind: str) -> Site:
    try:
        worker, superstep = site
    except (TypeError, ValueError):
        raise ValueError(
            f"{kind} fault must be a (worker_id, superstep) pair, got {site!r}"
        )
    worker, superstep = int(worker), int(superstep)
    if worker < 0 or superstep < 0:
        raise ValueError(
            f"{kind} fault needs worker_id >= 0 and superstep >= 0, "
            f"got ({worker}, {superstep})"
        )
    return (worker, superstep)


def _sites(single, many: Iterable, kind: str) -> FrozenSet[Site]:
    sites = [_check_site(site, kind) for site in many]
    if single is not None:
        sites.append(_check_site(single, kind))
    return frozenset(sites)


PRIMARY_PHASES = ("recv", "applied")


def _check_primary_site(spec, kind: str) -> Tuple[int, str]:
    if isinstance(spec, int):
        spec = (spec, "applied")
    try:
        seq, phase = spec
    except (TypeError, ValueError):
        raise ValueError(
            f"{kind} fault must be a seq or a (seq, phase) pair, got {spec!r}"
        )
    seq = int(seq)
    if seq < 1:
        raise ValueError(f"{kind} fault needs seq >= 1, got {seq}")
    if phase not in PRIMARY_PHASES:
        raise ValueError(
            f"{kind} phase must be one of {PRIMARY_PHASES}, got {phase!r}"
        )
    return (seq, phase)


def _primary_sites(single, many: Iterable, kind: str) -> FrozenSet[Tuple[int, str]]:
    sites = [_check_primary_site(spec, kind) for spec in many]
    if single is not None:
        sites.append(_check_primary_site(single, kind))
    return frozenset(sites)


def _timed_sites(single, many: Iterable, kind: str) -> Dict[Site, float]:
    timed: Dict[Site, float] = {}
    entries = list(many)
    if single is not None:
        entries.append(single)
    for entry in entries:
        try:
            worker, superstep, seconds = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"{kind} fault must be a (worker_id, superstep, seconds) "
                f"triple, got {entry!r}"
            )
        site = _check_site((worker, superstep), kind)
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"{kind} seconds must be >= 0, got {seconds}")
        timed[site] = seconds  # one duration per site: last spec wins
    return timed


class FaultPlan:
    """A deterministic failure script for one multiprocess run.

    Singular keywords (``kill=``, ``drop_send=``, ``stall=``, ``delay=``,
    ``torn_snapshot=``) take one fault spec; their plural forms take any
    iterable of specs.  Instances are immutable in spirit, picklable (they
    cross the process boundary with the worker arguments), and comparable
    by value.

    >>> plan = FaultPlan(kill=(1, 3), stall=(0, 2, 0.1))
    >>> plan.should_kill(1, 3), plan.should_kill(1, 2)
    (True, False)
    >>> plan.without_worker(1).should_kill(1, 3)
    False
    """

    __slots__ = (
        "kills",
        "drop_sends",
        "stalls",
        "delays",
        "torn_snapshots",
        "kill_primaries",
        "kill_replicas",
        "drop_wal_records",
        "stall_heartbeats",
    )

    def __init__(
        self,
        kill: Optional[Site] = None,
        kills: Iterable[Site] = (),
        drop_send: Optional[Site] = None,
        drop_sends: Iterable[Site] = (),
        stall=None,
        stalls: Iterable = (),
        delay=None,
        delays: Iterable = (),
        torn_snapshot: Optional[Site] = None,
        torn_snapshots: Iterable[Site] = (),
        kill_primary=None,
        kill_primaries: Iterable = (),
        kill_replica: Optional[Site] = None,
        kill_replicas: Iterable[Site] = (),
        drop_wal_record: Optional[Site] = None,
        drop_wal_records: Iterable[Site] = (),
        stall_heartbeat=None,
        stall_heartbeats: Iterable = (),
    ):
        self.kills = _sites(kill, kills, "kill")
        self.drop_sends = _sites(drop_send, drop_sends, "drop_send")
        self.stalls = _timed_sites(stall, stalls, "stall")
        self.delays = _timed_sites(delay, delays, "delay")
        self.torn_snapshots = _sites(torn_snapshot, torn_snapshots, "torn_snapshot")
        # Service plane: sites are (seq, phase) for the primary and
        # (replica_id, seq) for replicas.
        self.kill_primaries = _primary_sites(
            kill_primary, kill_primaries, "kill_primary"
        )
        self.kill_replicas = _sites(kill_replica, kill_replicas, "kill_replica")
        self.drop_wal_records = _sites(
            drop_wal_record, drop_wal_records, "drop_wal_record"
        )
        self.stall_heartbeats = _timed_sites(
            stall_heartbeat, stall_heartbeats, "stall_heartbeat"
        )

    # ------------------------------------------------------------------
    # Decisions (the worker loop performs the matching actions)
    # ------------------------------------------------------------------
    def should_kill(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.kills

    def should_drop_send(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.drop_sends

    def stall_seconds(self, worker_id: int, superstep: int) -> float:
        return self.stalls.get((worker_id, superstep), 0.0)

    def delay_seconds(self, worker_id: int, superstep: int) -> float:
        return self.delays.get((worker_id, superstep), 0.0)

    def should_tear_snapshot(self, worker_id: int, superstep: int) -> bool:
        return (worker_id, superstep) in self.torn_snapshots

    # -- service plane --------------------------------------------------
    def should_kill_primary(self, seq: int, phase: str) -> bool:
        return (seq, phase) in self.kill_primaries

    def should_kill_replica(self, replica_id: int, seq: int) -> bool:
        return (replica_id, seq) in self.kill_replicas

    def should_drop_wal_record(self, replica_id: int, seq: int) -> bool:
        return (replica_id, seq) in self.drop_wal_records

    def heartbeat_stall_seconds(self, replica_id: int, seq: int) -> float:
        return self.stall_heartbeats.get((replica_id, seq), 0.0)

    # ------------------------------------------------------------------
    # Plan algebra
    # ------------------------------------------------------------------
    def without_worker(self, worker_id: int) -> "FaultPlan":
        """The plan with every fault of ``worker_id`` removed.

        Supervised recovery hands this to the replacement process, so a
        scripted failure fires exactly once: a respawned worker is healthy.
        """
        keep = lambda site: site[0] != worker_id  # noqa: E731
        return self._replace(
            kills=frozenset(filter(keep, self.kills)),
            drop_sends=frozenset(filter(keep, self.drop_sends)),
            stalls={s: t for s, t in self.stalls.items() if keep(s)},
            delays={s: t for s, t in self.delays.items() if keep(s)},
            torn_snapshots=frozenset(filter(keep, self.torn_snapshots)),
        )

    def without_kill_primary(self, seq: int, phase: str) -> "FaultPlan":
        """The plan with the one fired primary kill removed.

        The supervisor hands this to the promoted primary, so each
        scripted primary kill fires exactly once even when ``max_failovers``
        scripts several in a row.
        """
        return self._replace(
            kill_primaries=self.kill_primaries - {(int(seq), phase)}
        )

    def without_replica(self, replica_id: int) -> "FaultPlan":
        """The plan with every fault of replica ``replica_id`` removed.

        Applied on respawn (a replacement replica is healthy) and on
        promotion (the promoted process stops being that replica).
        """
        keep = lambda site: site[0] != replica_id  # noqa: E731
        return self._replace(
            kill_replicas=frozenset(filter(keep, self.kill_replicas)),
            drop_wal_records=frozenset(filter(keep, self.drop_wal_records)),
            stall_heartbeats={
                s: t for s, t in self.stall_heartbeats.items() if keep(s)
            },
        )

    def _replace(self, **slots) -> "FaultPlan":
        """A copy with the given slots swapped (already-validated values)."""
        clone = FaultPlan()
        for slot in self.__slots__:
            object.__setattr__(clone, slot, slots.get(slot, getattr(self, slot)))
        return clone

    def __bool__(self) -> bool:
        return bool(
            self.kills
            or self.drop_sends
            or self.stalls
            or self.delays
            or self.torn_snapshots
            or self.kill_primaries
            or self.kill_replicas
            or self.drop_wal_records
            or self.stall_heartbeats
        )

    def _key(self):
        return (
            self.kills,
            self.drop_sends,
            tuple(sorted(self.stalls.items())),
            tuple(sorted(self.delays.items())),
            self.torn_snapshots,
            self.kill_primaries,
            self.kill_replicas,
            self.drop_wal_records,
            tuple(sorted(self.stall_heartbeats.items())),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    # __slots__ classes need explicit pickle support (no __dict__).
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        parts = []
        for label, sites in (
            ("kills", self.kills),
            ("drop_sends", self.drop_sends),
            ("torn_snapshots", self.torn_snapshots),
            ("kill_primaries", self.kill_primaries),
            ("kill_replicas", self.kill_replicas),
            ("drop_wal_records", self.drop_wal_records),
        ):
            if sites:
                parts.append(f"{label}={sorted(sites)}")
        for label, timed in (
            ("stalls", self.stalls),
            ("delays", self.delays),
            ("stall_heartbeats", self.stall_heartbeats),
        ):
            if timed:
                parts.append(f"{label}={sorted(timed.items())}")
        return f"FaultPlan({', '.join(parts)})"
