"""Communication-cost accounting for the BSP engine.

The paper's efficiency argument is about *communication volume*: rSLPA's
fetch protocol moves ``O(|V|)`` labels per iteration where SLPA moves
``O(|E|)`` (Section III-A), and Correction Propagation moves ``O(η)``
(Section IV-D).  :class:`CommStats` measures exactly those quantities —
messages and bytes per superstep, split into worker-local and remote.

:class:`RecoveryStats` is the fault-tolerance sibling: checkpoint and
recovery counters the supervised multiprocess engine maintains, attached
to its :class:`CommStats` (``stats.recovery``) so they travel through the
cluster wrappers and the service unchanged.  After a recovery the engine
rewinds :class:`CommStats` with :meth:`CommStats.truncate`, which is what
keeps per-superstep counters bit-identical to a failure-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SuperstepStats", "CommStats", "RecoveryStats"]


@dataclass
class SuperstepStats:
    """Counters for one superstep."""

    superstep: int
    messages: int = 0
    remote_messages: int = 0
    bytes: int = 0
    remote_bytes: int = 0

    @property
    def local_messages(self) -> int:
        return self.messages - self.remote_messages

    def as_dict(self) -> Dict[str, int]:
        """JSON view, symmetric with :meth:`RecoveryStats.as_dict`."""
        return {
            "superstep": self.superstep,
            "messages": self.messages,
            "remote_messages": self.remote_messages,
            "bytes": self.bytes,
            "remote_bytes": self.remote_bytes,
        }


@dataclass
class RecoveryStats:
    """Fault-tolerance counters for one supervised multiprocess engine.

    All zero on a failure-free run with checkpointing off; a recovered run
    reports how much work the failure cost (``supersteps_replayed``)
    without perturbing any :class:`CommStats` counter.
    """

    checkpoints_taken: int = 0
    checkpoints_torn: int = 0
    recoveries: int = 0
    workers_respawned: int = 0
    supersteps_replayed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-serialisable view (service stats / benchmark records)."""
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoints_torn": self.checkpoints_torn,
            "recoveries": self.recoveries,
            "workers_respawned": self.workers_respawned,
            "supersteps_replayed": self.supersteps_replayed,
        }


@dataclass
class CommStats:
    """Aggregated counters for one engine run.

    ``recovery`` is attached by the supervised multiprocess engine (and is
    ``None`` for the in-process engines, which share the driver's fate).
    ``obs`` rides along the same way when the run was traced: the engine
    (or cluster wrapper) attaches its :class:`repro.obs.Obs` context so
    the recorded spans and metrics travel to the uniform result objects
    with the stats, without widening any return signature.
    """

    per_superstep: List[SuperstepStats] = field(default_factory=list)
    recovery: Optional[RecoveryStats] = None
    obs: Optional[Any] = None

    def record(self, stats: SuperstepStats) -> None:
        self.per_superstep.append(stats)

    def truncate(self, supersteps: int) -> None:
        """Forget everything recorded after the first ``supersteps`` entries.

        Recovery rewinds the run to its last consistent cut and replays;
        the replayed supersteps re-record identical counters, so the
        rewound stats end bit-identical to a failure-free run's.
        """
        del self.per_superstep[supersteps:]

    @property
    def supersteps(self) -> int:
        return len(self.per_superstep)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.per_superstep)

    @property
    def total_remote_messages(self) -> int:
        return sum(s.remote_messages for s in self.per_superstep)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.per_superstep)

    @property
    def total_remote_bytes(self) -> int:
        return sum(s.remote_bytes for s in self.per_superstep)

    def messages_per_superstep(self) -> List[int]:
        return [s.messages for s in self.per_superstep]

    def as_dict(self, per_superstep: bool = False) -> Dict[str, Any]:
        """JSON view, symmetric with :meth:`RecoveryStats.as_dict`.

        The flat totals use the benchmark-record field names, so sweeps
        splat ``**stats.as_dict()`` instead of plucking fields; pass
        ``per_superstep=True`` for the full per-step breakdown, and the
        recovery ledger rides along whenever the run was supervised.
        """
        view: Dict[str, Any] = {
            "supersteps": self.supersteps,
            "messages": self.total_messages,
            "remote_messages": self.total_remote_messages,
            "bytes": self.total_bytes,
            "remote_bytes": self.total_remote_bytes,
        }
        if per_superstep:
            view["per_superstep"] = [s.as_dict() for s in self.per_superstep]
        if self.recovery is not None:
            view["recovery"] = self.recovery.as_dict()
        return view

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        return (
            f"{self.supersteps} supersteps, {self.total_messages} messages "
            f"({self.total_remote_messages} remote), "
            f"{self.total_bytes} bytes ({self.total_remote_bytes} remote)"
        )
