"""Communication-cost accounting for the BSP engine.

The paper's efficiency argument is about *communication volume*: rSLPA's
fetch protocol moves ``O(|V|)`` labels per iteration where SLPA moves
``O(|E|)`` (Section III-A), and Correction Propagation moves ``O(η)``
(Section IV-D).  :class:`CommStats` measures exactly those quantities —
messages and bytes per superstep, split into worker-local and remote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["SuperstepStats", "CommStats"]


@dataclass
class SuperstepStats:
    """Counters for one superstep."""

    superstep: int
    messages: int = 0
    remote_messages: int = 0
    bytes: int = 0
    remote_bytes: int = 0

    @property
    def local_messages(self) -> int:
        return self.messages - self.remote_messages


@dataclass
class CommStats:
    """Aggregated counters for one engine run."""

    per_superstep: List[SuperstepStats] = field(default_factory=list)

    def record(self, stats: SuperstepStats) -> None:
        self.per_superstep.append(stats)

    @property
    def supersteps(self) -> int:
        return len(self.per_superstep)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.per_superstep)

    @property
    def total_remote_messages(self) -> int:
        return sum(s.remote_messages for s in self.per_superstep)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.per_superstep)

    @property
    def total_remote_bytes(self) -> int:
        return sum(s.remote_bytes for s in self.per_superstep)

    def messages_per_superstep(self) -> List[int]:
        return [s.messages for s in self.per_superstep]

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        return (
            f"{self.supersteps} supersteps, {self.total_messages} messages "
            f"({self.total_remote_messages} remote), "
            f"{self.total_bytes} bytes ({self.total_remote_bytes} remote)"
        )
