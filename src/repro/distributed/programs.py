"""Distributed vertex programs: Algorithms 1 and 2 over the BSP engine.

Three programs, all bit-compatible with their sequential counterparts (the
test suite asserts exact state equality):

* :class:`RSLPAPropagationProgram` — Algorithm 1's fetch protocol.  Each
  iteration is two supersteps: every vertex sends one ``(src, pos)`` request
  and receives one label back, so the per-iteration message volume is
  ``2·|V|`` — the paper's ``O(|V|)`` communication claim (Section III-A).
* :class:`SLPAPropagationProgram` — the baseline's push protocol: one spoken
  label per *directed edge* per iteration, ``2·|E|`` messages — the
  ``O(|E|)`` cost rSLPA improves on.
* :class:`CorrectionPropagationProgram` — Algorithm 2: repick requests,
  record maintenance (register/unregister), label fetches and correction
  cascades, quiescing when every buffer drains (message volume ``O(η)``).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.slpa import _SEND, _TIE
from repro.core.incremental import keep_lottery_uniform, repick_draw
from repro.core.labels import NO_SOURCE
from repro.core.randomness import draw_position, draw_src_index, slot_hash
from repro.distributed.engine import MessageContext, WorkerProgram
from repro.distributed.worker import WorkerShard

__all__ = [
    "RSLPAPropagationProgram",
    "SLPAPropagationProgram",
    "CorrectionPropagationProgram",
]


class RSLPAPropagationProgram(WorkerProgram):
    """Algorithm 1 as mappers/reducers (fetch protocol).

    Message kinds:
      ``(dst, "req", pos, requester, t)`` — requester asks dst for l_dst^pos;
      ``(dst, "lab", label, src, pos, t)`` — the reply, appended at dst.
    """

    def __init__(self, shard: WorkerShard, seed: int, iterations: int):
        super().__init__(shard)
        self.seed = seed
        self.iterations = iterations
        self.labels: Dict[int, List[int]] = {v: [v] for v in shard.vertices}
        self.srcs: Dict[int, List[int]] = {v: [NO_SOURCE] for v in shard.vertices}
        self.poss: Dict[int, List[int]] = {v: [NO_SOURCE] for v in shard.vertices}

    def _send_requests(self, ctx: MessageContext, t: int) -> None:
        for v in sorted(self.shard.vertices):
            nbrs = self.shard.neighbors(v)
            if len(nbrs) == 0:
                continue  # fallback slots are padded at collect()
            h = slot_hash(self.seed, v, t, 0)
            # int() keeps hashes and messages identical on the CSR backend,
            # whose neighbour sequences are numpy arrays.
            src = int(nbrs[draw_src_index(h, len(nbrs))])
            pos = draw_position(h, t)
            ctx.send(src, ("req", pos, v, t))

    def on_start(self, ctx: MessageContext) -> None:
        if self.iterations >= 1:
            self._send_requests(ctx, 1)

    def on_superstep(
        self, ctx: MessageContext, superstep: int, inbox: Sequence[tuple]
    ) -> None:
        advanced_t: Optional[int] = None
        for message in inbox:
            kind = message[1]
            if kind == "lab":
                dst, _kind, label, src, pos, t = message
                self.labels[dst].append(label)
                self.srcs[dst].append(src)
                self.poss[dst].append(pos)
                advanced_t = t
            elif kind == "req":
                dst, _kind, pos, requester, t = message
                ctx.send(requester, ("lab", self.labels[dst][pos], dst, pos, t))
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown message kind {kind!r}")
        if advanced_t is not None and advanced_t < self.iterations:
            self._send_requests(ctx, advanced_t + 1)

    def collect(self) -> dict:
        """Per-vertex (labels, srcs, poss), degree-0 vertices padded."""
        result = {}
        for v in self.shard.vertices:
            labels, srcs, poss = self.labels[v], self.srcs[v], self.poss[v]
            while len(labels) < self.iterations + 1:  # degree-0 fallback
                labels.append(labels[0])
                srcs.append(NO_SOURCE)
                poss.append(NO_SOURCE)
            result[v] = (labels, srcs, poss)
        return result


class SLPAPropagationProgram(WorkerProgram):
    """The SLPA baseline's push protocol (one label per directed edge).

    Message kind: ``(listener, "spk", label, t)``.  Speaker draws and the
    plurality tie-break reuse the exact counter-based hashes of
    :class:`repro.baselines.slpa.SLPA`, so memories match bit-for-bit.
    """

    def __init__(self, shard: WorkerShard, seed: int, iterations: int):
        super().__init__(shard)
        self.seed = seed
        self.iterations = iterations
        self.memories: Dict[int, List[int]] = {v: [v] for v in shard.vertices}

    def _speak(self, ctx: MessageContext, t: int) -> None:
        for speaker in sorted(self.shard.vertices):
            memory = self.memories[speaker]
            for listener in self.shard.neighbors(speaker):
                listener = int(listener)  # CSR backend yields numpy ints
                h = slot_hash(
                    self.seed ^ _SEND, speaker * 0x1F1F1F1F + listener, t, 0
                )
                pos = draw_position(h, t)
                ctx.send(listener, ("spk", memory[pos], t))

    def on_start(self, ctx: MessageContext) -> None:
        if self.iterations >= 1:
            self._speak(ctx, 1)

    def on_superstep(
        self, ctx: MessageContext, superstep: int, inbox: Sequence[tuple]
    ) -> None:
        if not inbox:
            return
        received: Dict[int, List[int]] = {}
        t = inbox[0][3]
        for listener, _kind, label, msg_t in inbox:
            if msg_t != t:  # pragma: no cover - protocol violation
                raise ValueError("mixed-iteration SLPA inbox")
            received.setdefault(listener, []).append(label)
        for listener, labels in received.items():
            counts = Counter(labels)
            best = max(counts.values())
            winners = sorted(l for l, c in counts.items() if c == best)
            if len(winners) == 1:
                choice = winners[0]
            else:
                h = slot_hash(self.seed ^ _TIE, listener, t, 0)
                choice = winners[draw_src_index(h, len(winners))]
            self.memories[listener].append(choice)
        if t < self.iterations:
            self._speak(ctx, t + 1)

    def collect(self) -> dict:
        result = {}
        for v in self.shard.vertices:
            memory = self.memories[v]
            while len(memory) < self.iterations + 1:  # degree-0 fallback
                memory.append(memory[0])
            result[v] = memory
        return result


class CorrectionPropagationProgram(WorkerProgram):
    """Algorithm 2 over workers: incremental repair after an edit batch.

    The shard's adjacency must reflect the *new* graph.  Each worker holds
    the label-state slice (labels/srcs/poss/epochs/receivers) of its local
    vertices; ``added``/``removed`` give the per-local-vertex neighbour
    deltas of the batch.

    Message kinds:
      ``(old_src, "unreg", pos, tar, k)``             — detach a stale record;
      ``(new_src, "fetch", pos, tar, k)``             — register + request;
      ``(tar, "fval", label, k, src, pos, version)``  — fetch reply;
      ``(tar, "corr", label, k, src, pos, version)``  — cascade correction.

    Two safeguards make the unsynchronised cascade converge to exactly the
    sequential fixpoint (asserted by the tests):

    * every value-carrying message is tagged with the provenance
      ``(src, pos)`` it derives from, and receivers drop updates that do not
      match their slot's *current* provenance — corrections from stale
      records (whose unregister is still in flight) are harmless;
    * every source slot carries a monotone ``version`` bumped on each value
      change, and receivers drop updates older than the newest seen — so
      two corrections for the same slot arriving in one superstep cannot be
      applied out of causal order.
    """

    def __init__(
        self,
        shard: WorkerShard,
        seed: int,
        iterations: int,
        labels: Dict[int, List[int]],
        srcs: Dict[int, List[int]],
        poss: Dict[int, List[int]],
        epochs: Dict[int, List[int]],
        receivers: Dict[int, Dict[int, Set[Tuple[int, int]]]],
        added: Dict[int, Set[int]],
        removed: Dict[int, Set[int]],
        batch_epoch: int,
    ):
        super().__init__(shard)
        self.seed = seed
        self.iterations = iterations
        self.labels = labels
        self.srcs = srcs
        self.poss = poss
        self.epochs = epochs
        self.receivers = receivers
        self.added = added
        self.removed = removed
        self.batch_epoch = batch_epoch
        self.touched_slots: Set[Tuple[int, int]] = set()
        # versions[(v, t)]: bumped whenever local slot (v, t) changes value.
        self.versions: Dict[Tuple[int, int], int] = {}
        # last_seen[(v, t)]: newest source version applied to local slot.
        self.last_seen: Dict[Tuple[int, int], int] = {}

    # -- classification (local part of Algorithm 2 lines 1-7) -------------
    def on_start(self, ctx: MessageContext) -> None:
        for v in sorted(set(self.added) | set(self.removed)):
            if not self.shard.owns(v):
                continue
            removed_here = self.removed.get(v, set())
            added_here = self.added.get(v, set())
            current = self.shard.neighbors(v)
            n_added = len(added_here)
            n_unchanged = len(current) - n_added
            for t in range(1, self.iterations + 1):
                src = self.srcs[v][t]
                if src == NO_SOURCE:
                    if n_added > 0:
                        self._repick(ctx, v, t, current)
                    continue
                if src in removed_here:
                    self._repick(ctx, v, t, current)
                    continue
                if n_added == 0:
                    continue
                lottery = keep_lottery_uniform(self.seed, v, t, self.batch_epoch)
                if lottery < n_added / (n_unchanged + n_added):
                    self._repick(ctx, v, t, tuple(sorted(added_here)))

    def _repick(
        self, ctx: MessageContext, v: int, t: int, candidates: Sequence[int]
    ) -> None:
        old_src, old_pos = self.srcs[v][t], self.poss[v][t]
        if old_src != NO_SOURCE:
            if self.shard.owns(old_src):
                self._do_unregister(old_src, old_pos, v, t)
            else:
                ctx.send(old_src, ("unreg", old_pos, v, t))
        epoch = self.epochs[v][t] + 1
        self.epochs[v][t] = epoch
        self.touched_slots.add((v, t))
        self.last_seen.pop((v, t), None)  # new provenance: reset staleness gate
        if len(candidates) == 0:
            old_label = self.labels[v][t]
            self.labels[v][t] = self.labels[v][0]
            self.srcs[v][t] = NO_SOURCE
            self.poss[v][t] = NO_SOURCE
            if self.labels[v][t] != old_label:
                self.versions[(v, t)] = self.versions.get((v, t), 0) + 1
                self._broadcast_correction(ctx, v, t)
            return
        idx, pos = repick_draw(self.seed, v, t, epoch, len(candidates))
        src = int(candidates[idx])
        self.srcs[v][t] = src
        self.poss[v][t] = pos
        if self.shard.owns(src):
            self._do_register(src, pos, v, t)
            self._install_value(
                ctx, v, t, self.labels[src][pos], src, pos,
                self.versions.get((src, pos), 0),
            )
        else:
            ctx.send(src, ("fetch", pos, v, t))

    # -- record bookkeeping ------------------------------------------------
    def _do_unregister(self, src: int, pos: int, tar: int, k: int) -> None:
        bucket = self.receivers[src].get(pos)
        if bucket is None or (tar, k) not in bucket:
            raise AssertionError(
                f"unreg of unknown record ({src}, {pos}) -> ({tar}, {k})"
            )
        bucket.discard((tar, k))
        if not bucket:
            del self.receivers[src][pos]

    def _do_register(self, src: int, pos: int, tar: int, k: int) -> None:
        self.receivers[src].setdefault(pos, set()).add((tar, k))

    # -- value updates -----------------------------------------------------
    def _install_value(
        self,
        ctx: MessageContext,
        v: int,
        t: int,
        label: int,
        src: int,
        pos: int,
        version: int,
    ) -> None:
        """Accept an update only if provenance matches and it is not stale."""
        if self.srcs[v][t] != src or self.poss[v][t] != pos:
            return  # stale update from a record whose unregister is in flight
        if version <= self.last_seen.get((v, t), -1):
            return  # an update from a newer source state already applied
        self.last_seen[(v, t)] = version
        if self.labels[v][t] == label:
            return
        self.labels[v][t] = label
        self.versions[(v, t)] = self.versions.get((v, t), 0) + 1
        self.touched_slots.add((v, t))
        self._broadcast_correction(ctx, v, t)

    def _broadcast_correction(self, ctx: MessageContext, v: int, t: int) -> None:
        label = self.labels[v][t]
        version = self.versions.get((v, t), 0)
        for tar, k in sorted(self.receivers[v].get(t, ())):
            if self.shard.owns(tar):
                # Local receiver: apply immediately (forward in iteration,
                # so the recursion is bounded by T).
                self._install_value(ctx, tar, k, label, v, t, version)
            else:
                ctx.send(tar, ("corr", label, k, v, t, version))

    # -- superstep dispatch --------------------------------------------------
    _ORDER = {"unreg": 0, "fval": 1, "corr": 2, "fetch": 3}

    def on_superstep(
        self, ctx: MessageContext, superstep: int, inbox: Sequence[tuple]
    ) -> None:
        for message in sorted(inbox, key=lambda m: (self._ORDER[m[1]], m)):
            kind = message[1]
            if kind == "unreg":
                dst, _kind, pos, tar, k = message
                self._do_unregister(dst, pos, tar, k)
            elif kind in ("fval", "corr"):
                dst, _kind, label, k, src, pos, version = message
                self._install_value(ctx, dst, k, label, src, pos, version)
            elif kind == "fetch":
                dst, _kind, pos, tar, k = message
                self._do_register(dst, pos, tar, k)
                ctx.send(
                    tar,
                    (
                        "fval",
                        self.labels[dst][pos],
                        k,
                        dst,
                        pos,
                        self.versions.get((dst, pos), 0),
                    ),
                )
            else:  # pragma: no cover - protocol violation
                raise ValueError(f"unknown message kind {kind!r}")

    def collect(self) -> dict:
        return {
            "labels": self.labels,
            "srcs": self.srcs,
            "poss": self.poss,
            "epochs": self.epochs,
            "receivers": self.receivers,
            "touched": self.touched_slots,
        }
