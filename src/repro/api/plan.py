"""Plan resolution: graph capabilities × config → one concrete `RunPlan`.

Every ``"auto"`` in an :class:`~repro.api.config.ExecutionConfig` is
negotiated here, in exactly one place, against the :class:`GraphCaps` of
the graph being run on.  The resolved :class:`RunPlan` records *why* each
choice was made (:attr:`RunPlan.decisions`), and :meth:`RunPlan.explain`
renders that provenance for humans — the same text the CLI ``plan``
subcommand prints.

The rules are the ones the detector, cluster wrappers, and service used
to apply in scattered private helpers (``detector._resolve_use_fast``,
``cluster._resolve_engine``, ``cluster._build_backend_shards``), now
asserted equivalent by ``tests/test_api_plan.py``:

* ``backend="auto"`` → ``fast`` iff the vertex ids are contiguous
  ``0..n-1`` (the array substrate's contract); ``fast`` on
  non-contiguous ids is an error.
* ``shard_backend="auto"`` → ``csr`` iff the ids are contiguous; a
  :class:`~repro.graph.csr.CSRGraph` input always takes the CSR slicer;
  ``csr`` on non-contiguous ids is an error.
* ``engine="auto"`` → ``array`` iff the shards resolved to CSR.
* ``state_format="auto"`` → ``array`` iff the backend resolved to
  ``fast``; ``array`` on non-contiguous ids is an error.
* ``transport="auto"`` → ``shm`` iff the run is multiprocess on the
  array plane (zero-copy columns), ``pipe`` for multiprocess tuple
  runs, ``None`` otherwise; column transports (``shm``/``tcp``) on the
  tuple plane are an error, as is any explicit transport without
  ``multiprocess=True``.
* ``fault_tolerance=True`` → requires ``multiprocess=True`` (only the
  supervised process engine can respawn a dead worker);
  ``checkpoint_interval=None`` → 4 supersteps between cuts,
  ``max_restarts=None`` → 3 respawns.  Either knob without
  ``fault_tolerance=True`` is an error.
* ``trace=True`` → carried through verbatim (every mode can record);
  the decision is logged so ``explain()`` shows the observability
  plane was on for the run.

:func:`resolve_service_plan` layers the replication topology of a
:class:`~repro.api.config.ServicePlanConfig` on top, with the same
provenance discipline:

* ``service_transport="auto"`` → ``pipe`` when ``replicas > 0`` (the
  replicas are local children; pipes skip the socket stack), ``None``
  when replication is off.
* ``heartbeat_interval=None`` → 0.5 s; ``max_failovers=None`` → one
  promotion per replica.  Any replication knob set with ``replicas=0``
  is an error (there is nothing to fail over to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.api.config import ExecutionConfig, ServicePlanConfig
from repro.api.registry import PARTITIONERS, TRANSPORTS

__all__ = [
    "GraphCaps",
    "PlanDecision",
    "RunPlan",
    "ServiceRunPlan",
    "resolve_plan",
    "resolve_service_plan",
    "plan_for",
]

_RELABEL_HINT = "repro.graph.relabel_to_integers"

#: Resolver defaults for the fault-tolerance knobs (``None`` in the config).
DEFAULT_CHECKPOINT_INTERVAL = 4
DEFAULT_MAX_RESTARTS = 3

#: Resolver default for the replication heartbeat cadence (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.5


@dataclass(frozen=True)
class GraphCaps:
    """What plan resolution needs to know about a graph — nothing more.

    ``contiguous_ids`` is the load-bearing capability: it gates the array
    substrate, the CSR shard slicer, and the array state export.  A
    :class:`~repro.graph.csr.CSRGraph` is contiguous by construction
    (``is_csr`` additionally pins the shard backend to the CSR slicer).
    """

    num_vertices: int
    num_edges: int
    contiguous_ids: bool
    is_csr: bool = False

    @classmethod
    def of(cls, graph) -> "GraphCaps":
        """Probe a :class:`~repro.graph.adjacency.Graph` or CSR snapshot."""
        from repro.graph.csr import CSRGraph

        if isinstance(graph, CSRGraph):
            return cls(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                contiguous_ids=True,
                is_csr=True,
            )
        n = graph.num_vertices
        if n == 0:
            contiguous = True
        else:
            ids = list(graph.vertices())  # ids are unique: min/max suffice
            contiguous = min(ids) == 0 and max(ids) == n - 1
        return cls(
            num_vertices=n,
            num_edges=graph.num_edges,
            contiguous_ids=contiguous,
            is_csr=False,
        )


@dataclass(frozen=True)
class PlanDecision:
    """One resolved axis: what was asked, what was chosen, and why."""

    field: str
    requested: Any
    value: Any
    reason: str

    def __str__(self) -> str:
        requested = "(default)" if self.requested is None else str(self.requested)
        return f"{self.field:<14}{requested:>10} -> {self.value!s:<10} {self.reason}"


@dataclass(frozen=True)
class RunPlan:
    """The fully-negotiated execution choices for one run.

    Every field is concrete (no ``"auto"`` survives resolution); the
    distributed axes are ``None`` for a local plan.  ``decisions`` keeps
    the provenance of each choice, rendered by :meth:`explain`.
    """

    mode: str  # "local" | "distributed"
    backend: str  # "fast" | "reference"
    num_workers: int
    engine: Optional[str]  # "array" | "reference" | None (local)
    shard_backend: Optional[str]  # "csr" | "dict" | None (local)
    state_format: Optional[str]  # "array" | "dict" | None (local)
    partitioner: Optional[str]  # registered name or instance repr
    multiprocess: bool
    caps: GraphCaps
    requested: ExecutionConfig
    transport: Optional[str] = None  # "pipe" | "shm" | "tcp" | None (not mp)
    fault_tolerance: bool = False
    checkpoint_interval: Optional[int] = None  # concrete iff fault-tolerant
    max_restarts: Optional[int] = None  # concrete iff fault-tolerant
    trace: bool = False  # observability plane (repro.obs) on/off
    decisions: Tuple[PlanDecision, ...] = ()

    @property
    def use_fast(self) -> bool:
        """Whether the local lifecycle runs on the array substrate."""
        return self.backend == "fast"

    def summary(self) -> str:
        """One line: the resolved choices without the provenance."""
        if self.mode == "local":
            return f"local fit, backend={self.backend}" + (
                ", trace=on" if self.trace else ""
            )
        workers = f"{self.num_workers} {'process' if self.multiprocess else 'simulated'} workers"
        transport = f", transport={self.transport}" if self.multiprocess else ""
        fault = (
            f", fault_tolerance=on (checkpoint_interval="
            f"{self.checkpoint_interval}, max_restarts={self.max_restarts})"
            if self.fault_tolerance
            else ""
        )
        trace = ", trace=on" if self.trace else ""
        return (
            f"distributed fit on {workers}, backend={self.backend}, "
            f"engine={self.engine}, shard_backend={self.shard_backend}, "
            f"state_format={self.state_format}, partitioner={self.partitioner}"
            f"{transport}{fault}{trace}"
        )

    def explain(self) -> str:
        """Human-readable provenance: one line per negotiated choice."""
        lines = [f"execution plan: {self.summary()}"]
        lines.extend(f"  {decision}" for decision in self.decisions)
        return "\n".join(lines)

    def build_partitioner(self):
        """Instantiate the plan's partitioner (registry name or instance)."""
        spec = self.requested.partitioner
        if spec is None:
            spec = "hash"
        if isinstance(spec, str):
            return PARTITIONERS.resolve(spec)(self.num_workers, self.caps)
        return spec


def _decide(decisions, field, requested, value, reason) -> None:
    decisions.append(
        PlanDecision(field=field, requested=requested, value=value, reason=reason)
    )


def resolve_plan(caps: GraphCaps, config: Optional[ExecutionConfig] = None) -> RunPlan:
    """Negotiate every ``"auto"`` in ``config`` against ``caps``.

    Raises :class:`ValueError` for requests the graph cannot satisfy
    (``fast``/``csr``/``array`` on non-contiguous ids), with the same
    messages the old scattered resolvers produced.
    """
    config = config if config is not None else ExecutionConfig()
    decisions = []
    contiguous = caps.contiguous_ids

    # Local lifecycle substrate -------------------------------------------
    if config.backend == "fast" and not contiguous:
        raise ValueError(
            "backend='fast' requires contiguous vertex ids 0..n-1; "
            f"use {_RELABEL_HINT} or backend='reference'"
        )
    if config.backend == "auto":
        backend = "fast" if contiguous else "reference"
        reason = (
            "vertex ids are contiguous 0..n-1 (array-substrate contract)"
            if contiguous
            else "non-contiguous vertex ids need the dict substrate"
        )
    else:
        backend = config.backend
        reason = "explicitly requested"
    _decide(decisions, "backend", config.backend, backend, reason)

    distributed = config.num_workers > 0
    mode = "distributed" if distributed else "local"
    _decide(
        decisions,
        "mode",
        None,
        mode,
        f"num_workers={config.num_workers}"
        + ("" if distributed else " (0 = in-process fit)"),
    )

    engine = shard_backend = state_format = partitioner_name = None
    if distributed:
        # Worker-shard storage --------------------------------------------
        if caps.is_csr:
            shard_backend = "csr"
            reason = "a CSRGraph input always takes the CSR slicer"
        elif config.shard_backend == "auto":
            shard_backend = "csr" if contiguous else "dict"
            reason = (
                "contiguous ids satisfy the CSR slicer contract"
                if contiguous
                else "non-contiguous ids require dict shards"
            )
        else:
            shard_backend = config.shard_backend
            reason = "explicitly requested"
        if shard_backend == "csr" and not (contiguous or caps.is_csr):
            raise ValueError(
                "shard_backend='csr' requires contiguous vertex ids 0..n-1; "
                f"use shard_backend='dict' or {_RELABEL_HINT}"
            )
        _decide(
            decisions, "shard_backend", config.shard_backend, shard_backend, reason
        )

        # Message plane ----------------------------------------------------
        if config.engine == "auto":
            engine = "array" if shard_backend == "csr" else "reference"
            reason = (
                "CSR shards prefer the columnar message plane"
                if engine == "array"
                else "dict shards route reference tuples"
            )
        else:
            engine = config.engine
            reason = "explicitly requested"
        _decide(decisions, "engine", config.engine, engine, reason)

        # State export format ---------------------------------------------
        if config.state_format == "auto":
            state_format = "array" if backend == "fast" else "dict"
            reason = (
                "the fast backend consumes the native array export"
                if state_format == "array"
                else "the reference backend consumes the dict state"
            )
        else:
            state_format = config.state_format
            reason = "explicitly requested"
        if state_format == "array" and not contiguous:
            raise ValueError(
                "state_format='array' requires contiguous vertex ids 0..n-1; "
                f"use state_format='dict' or {_RELABEL_HINT}"
            )
        _decide(
            decisions, "state_format", config.state_format, state_format, reason
        )

        # Partitioner ------------------------------------------------------
        spec = config.partitioner
        if spec is None:
            partitioner_name = "hash"
            reason = "default uniform hash partitioner"
        elif isinstance(spec, str):
            if spec not in PARTITIONERS:
                raise ValueError(
                    f"unknown partitioner {spec!r}; "
                    f"registered: {PARTITIONERS.names()}"
                )
            partitioner_name = spec
            reason = "resolved from the partitioner registry"
        else:
            partitioner_name = type(spec).__name__
            reason = "caller-supplied instance"
        _decide(decisions, "partitioner", spec, partitioner_name, reason)

        if config.multiprocess:
            _decide(
                decisions,
                "multiprocess",
                True,
                True,
                "workers run as real OS processes (driver is the barrier)",
            )

    # Multiprocess data plane ---------------------------------------------
    transport = None
    multiprocess = config.multiprocess and distributed
    if multiprocess:
        if config.transport == "auto":
            transport = "shm" if engine == "array" else "pipe"
            reason = (
                "array columns swap zero-copy through shared memory"
                if transport == "shm"
                else "tuple payloads only travel the control pipes"
            )
        else:
            transport = config.transport
            reason = "explicitly requested"
            transport_cls = TRANSPORTS.resolve(transport)
            if getattr(transport_cls, "array_only", False) and engine != "array":
                raise ValueError(
                    f"transport={transport!r} moves packed columns and "
                    f"requires engine='array'; engine={engine!r} runs on "
                    f"transport='pipe' only"
                )
        _decide(decisions, "transport", config.transport, transport, reason)
    elif config.transport != "auto":
        raise ValueError(
            f"transport={config.transport!r} selects the multiprocess data "
            f"plane and requires multiprocess=True with num_workers > 0; "
            f"the in-process engines exchange messages by reference"
        )

    # Fault tolerance ------------------------------------------------------
    fault_tolerance = config.fault_tolerance
    checkpoint_interval = max_restarts = None
    if fault_tolerance:
        if not multiprocess:
            raise ValueError(
                "fault_tolerance=True requires multiprocess=True with "
                "num_workers > 0: only the supervised process engine can "
                "respawn a dead worker (the in-process engines share the "
                "driver's fate)"
            )
        _decide(
            decisions,
            "fault_tolerance",
            True,
            True,
            "checkpoint/replay recovery supervises the worker processes",
        )
        if config.checkpoint_interval is None:
            checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL
            reason = "default cut cadence (replay cost vs snapshot traffic)"
        else:
            checkpoint_interval = config.checkpoint_interval
            reason = "explicitly requested"
        _decide(
            decisions,
            "checkpoint_interval",
            config.checkpoint_interval,
            checkpoint_interval,
            reason,
        )
        if config.max_restarts is None:
            max_restarts = DEFAULT_MAX_RESTARTS
            reason = "default respawn budget"
        else:
            max_restarts = config.max_restarts
            reason = "explicitly requested"
        _decide(
            decisions, "max_restarts", config.max_restarts, max_restarts, reason
        )
    elif config.checkpoint_interval is not None or config.max_restarts is not None:
        knob = (
            "checkpoint_interval"
            if config.checkpoint_interval is not None
            else "max_restarts"
        )
        raise ValueError(
            f"{knob} tunes the fault-tolerant supervisor and requires "
            f"fault_tolerance=True"
        )

    # Observability --------------------------------------------------------
    if config.trace:
        _decide(
            decisions,
            "trace",
            True,
            True,
            "flight recorder + metrics registry on (repro.obs)",
        )

    return RunPlan(
        mode=mode,
        backend=backend,
        num_workers=config.num_workers,
        engine=engine,
        shard_backend=shard_backend,
        state_format=state_format,
        partitioner=partitioner_name,
        multiprocess=multiprocess,
        caps=caps,
        requested=config,
        transport=transport,
        fault_tolerance=fault_tolerance,
        checkpoint_interval=checkpoint_interval,
        max_restarts=max_restarts,
        trace=config.trace,
        decisions=tuple(decisions),
    )


@dataclass(frozen=True)
class ServiceRunPlan:
    """A resolved service deployment: the execution plan + the topology.

    ``base`` is the :class:`RunPlan` the detector itself runs on; the
    replication axes are ``None``/0 for an unreplicated deployment.
    ``decisions`` holds only the service-plane provenance — ``explain()``
    renders both layers.
    """

    base: RunPlan
    replicas: int
    heartbeat_interval: Optional[float]  # concrete iff replicas > 0
    max_failovers: Optional[int]  # concrete iff replicas > 0
    service_transport: Optional[str]  # "pipe" | "tcp" | None (unreplicated)
    requested: ServicePlanConfig
    decisions: Tuple[PlanDecision, ...] = ()

    @property
    def replicated(self) -> bool:
        return self.replicas > 0

    def summary(self) -> str:
        if not self.replicated:
            return f"unreplicated service over a {self.base.summary()}"
        return (
            f"replicated service ({self.replicas} replica(s), "
            f"transport={self.service_transport}, heartbeat="
            f"{self.heartbeat_interval}s, max_failovers={self.max_failovers}) "
            f"over a {self.base.summary()}"
        )

    def explain(self) -> str:
        """Both provenance layers: the service topology, then the base plan."""
        lines = [f"service plan: {self.summary()}"]
        lines.extend(f"  {decision}" for decision in self.decisions)
        lines.append(self.base.explain())
        return "\n".join(lines)


def resolve_service_plan(
    caps: GraphCaps, config: Optional[ServicePlanConfig] = None
) -> ServiceRunPlan:
    """Negotiate a :class:`~repro.api.config.ServicePlanConfig` topology.

    Resolves the embedded :class:`ExecutionConfig` through
    :func:`resolve_plan`, then the replication axes with the same
    recorded-provenance discipline.  Replication knobs without
    ``replicas > 0`` raise :class:`ValueError` — a topology that cannot
    fail over must not silently pretend it could.
    """
    from repro.api.registry import SERVICE_TRANSPORTS

    config = config if config is not None else ServicePlanConfig()
    base = resolve_plan(caps, config.execution)
    decisions = []
    replicated = config.replicas > 0

    heartbeat_interval = max_failovers = service_transport = None
    if replicated:
        _decide(
            decisions,
            "replicas",
            config.replicas,
            config.replicas,
            "read replicas rebuilt from shipped WAL records",
        )
        if config.service_transport == "auto":
            service_transport = "pipe"
            reason = "replicas are local children; pipes skip the socket stack"
        else:
            service_transport = config.service_transport
            reason = "explicitly requested"
            SERVICE_TRANSPORTS.resolve(service_transport)  # fail fast
        _decide(
            decisions,
            "service_transport",
            config.service_transport,
            service_transport,
            reason,
        )
        if config.heartbeat_interval is None:
            heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
            reason = "default lapse-detection cadence"
        else:
            heartbeat_interval = config.heartbeat_interval
            reason = "explicitly requested"
        _decide(
            decisions,
            "heartbeat_interval",
            config.heartbeat_interval,
            heartbeat_interval,
            reason,
        )
        if config.max_failovers is None:
            max_failovers = config.replicas
            reason = "default budget: every replica may be promoted once"
        else:
            max_failovers = config.max_failovers
            reason = "explicitly requested"
        _decide(
            decisions,
            "max_failovers",
            config.max_failovers,
            max_failovers,
            reason,
        )
    else:
        for knob, value in (
            ("heartbeat_interval", config.heartbeat_interval),
            ("max_failovers", config.max_failovers),
        ):
            if value is not None:
                raise ValueError(
                    f"{knob} tunes the replication supervisor and requires "
                    f"replicas > 0"
                )
        if config.service_transport != "auto":
            raise ValueError(
                f"service_transport={config.service_transport!r} connects "
                f"the primary to its replicas and requires replicas > 0"
            )

    return ServiceRunPlan(
        base=base,
        replicas=config.replicas,
        heartbeat_interval=heartbeat_interval,
        max_failovers=max_failovers,
        service_transport=service_transport,
        requested=config,
        decisions=tuple(decisions),
    )


def plan_for(graph, config: Optional[ExecutionConfig] = None) -> RunPlan:
    """Convenience: probe ``graph`` and resolve ``config`` in one call."""
    return resolve_plan(GraphCaps.of(graph), config)
