"""High-level front door: config in, result object out.

These functions are the one-call form of the config → plan → execution
pipeline::

    from repro.api import AlgoConfig, ExecutionConfig, detect

    result = detect(graph, AlgoConfig(seed=7), ExecutionConfig(num_workers=4))
    print(result.plan.explain())       # why each choice fired
    print(result.cover)                # the communities
    result.detector.update(batch)      # lifecycle continues on the handle

They construct an :class:`~repro.core.detector.RSLPADetector` (or call
the cluster wrappers) with the configs passed through unchanged, so
results are bit-identical to the kwargs-based APIs per seed.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Optional

from repro.api.config import AlgoConfig, ExecutionConfig
from repro.api.plan import GraphCaps, resolve_plan
from repro.api.results import DetectionResult, DistributedResult, UpdateResult

__all__ = ["detect", "update", "run_distributed"]


def detect(
    graph,
    algo: Optional[AlgoConfig] = None,
    execution: Optional[ExecutionConfig] = None,
) -> DetectionResult:
    """Fit rSLPA (locally or on the cluster per ``execution``) and extract.

    ``execution.num_workers > 0`` routes the fit through the simulated BSP
    cluster; either way the detector lifecycle (``result.detector``)
    continues with incremental updates.
    """
    from repro.core.detector import RSLPADetector

    algo = algo if algo is not None else AlgoConfig()
    execution = execution if execution is not None else ExecutionConfig()
    detector = RSLPADetector(graph, algo=algo, execution=execution)
    started = perf_counter()
    if execution.num_workers > 0:
        detector.fit_distributed()
    else:
        detector.fit()
    fitted = perf_counter()
    cover = detector.communities()
    extracted = perf_counter()
    timings = {
        "fit_seconds": fitted - started,
        "extract_seconds": extracted - fitted,
    }
    obs = getattr(detector.comm_stats, "obs", None)
    if obs is not None:  # stamp front-door wall-clock onto the trace meta
        obs.meta.setdefault("timings", {}).update(timings)
    return DetectionResult(
        cover=cover,
        state=detector.state,
        plan=detector.last_plan,
        detector=detector,
        comm_stats=detector.comm_stats,
        timings=timings,
    )


def update(detector, batch, extract: bool = False) -> UpdateResult:
    """Apply one edit batch through a fitted detector.

    ``extract=True`` re-extracts the cover immediately; the default leaves
    extraction to the caller's staleness policy (the paper's
    "update continuously, extract periodically" operating mode).
    """
    started = perf_counter()
    report = detector.update(batch)
    updated = perf_counter()
    timings = {"update_seconds": updated - started}
    cover = None
    if extract:
        cover = detector.communities()
        timings["extract_seconds"] = perf_counter() - updated
    return UpdateResult(
        report=report,
        state=detector.state,
        plan=detector.last_plan,
        cover=cover,
        timings=timings,
    )


def run_distributed(
    graph,
    algo: Optional[AlgoConfig] = None,
    execution: Optional[ExecutionConfig] = None,
) -> DistributedResult:
    """Algorithm 1 on the simulated cluster, as a result object.

    The thin wrapper over
    :func:`repro.distributed.run_distributed_rslpa` that returns the
    merged state *with* its plan and timings attached.
    """
    from repro.distributed.cluster import run_distributed_rslpa

    algo = algo if algo is not None else AlgoConfig()
    execution = execution if execution is not None else ExecutionConfig()
    if execution.num_workers == 0:  # always distributed here: wrapper default
        execution = replace(execution, num_workers=4)
    plan = resolve_plan(GraphCaps.of(graph), execution)
    started = perf_counter()
    state, stats = run_distributed_rslpa(
        graph,
        seed=algo.seed,
        iterations=algo.iterations,
        config=execution,
    )
    timings = {"run_seconds": perf_counter() - started}
    obs = getattr(stats, "obs", None)
    if obs is not None:  # stamp front-door wall-clock onto the trace meta
        obs.meta.setdefault("timings", {}).update(timings)
    return DistributedResult(
        state=state,
        comm_stats=stats,
        plan=plan,
        timings=timings,
    )
