"""Named component registries: partitioners, BSP engines, worker programs.

One uniform mechanism replaces the per-module if/else ladders that used to
map ``engine="array"`` / ``shard_backend="csr"`` strings onto classes:
components are registered by name, the cluster wrappers resolve them
through :meth:`Registry.resolve`, and plugins extend any axis without
touching repro code::

    from repro.api.registry import PARTITIONERS

    PARTITIONERS.register("stripe", lambda workers, caps: MyPartitioner(workers))
    run_distributed_rslpa(graph, config=ExecutionConfig(partitioner="stripe"))

Calling conventions per registry (what a resolved component *is*):

* :data:`PARTITIONERS` — a builder ``f(num_workers, caps) -> Partitioner``
  (``caps`` is the :class:`~repro.api.plan.GraphCaps`, so range-style
  partitioners can size themselves to the graph).
* :data:`ENGINES` — a builder ``f(shards, partitioner) -> engine`` with
  the in-process BSP engine interface (``run(programs)``, ``stats``).
* :data:`PROGRAMS` — the worker-program *class* itself, keyed
  ``"<task>/<plane>"`` (e.g. ``"rslpa/array"``); classes are returned
  raw so multiprocess factories built from them stay picklable.
* :data:`TRANSPORTS` — the multiprocess data-plane :class:`~repro.
  distributed.transport.Transport` *class* (instantiated with no
  arguments per engine), e.g. ``"shm"`` for the zero-copy
  shared-memory plane.
* :data:`SERVICE_TRANSPORTS` — the replication control-plane
  :class:`~repro.service.replication.ServiceWire` *class* (instantiated
  with no arguments per supervisor); ships pickled WAL records and
  query traffic between the supervisor and its primary/replica
  children.

Built-ins are registered lazily (the loader imports on first resolve), so
importing :mod:`repro.api` never drags in the distributed machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = [
    "Registry",
    "PARTITIONERS",
    "ENGINES",
    "PROGRAMS",
    "TRANSPORTS",
    "SERVICE_TRANSPORTS",
]


class Registry:
    """A small name → component map with lazy built-in loaders."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        self._lazy: Dict[str, Callable[[], Any]] = {}

    def register(self, name: str, component: Any, *, overwrite: bool = False) -> None:
        """Register ``component`` under ``name`` (error if taken)."""
        if not overwrite and name in self:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._lazy.pop(name, None)
        self._entries[name] = component

    def register_lazy(
        self, name: str, loader: Callable[[], Any], *, overwrite: bool = False
    ) -> None:
        """Register a zero-arg ``loader`` resolved (once) on first use."""
        if not overwrite and name in self:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries.pop(name, None)
        self._lazy[name] = loader

    def resolve(self, name: str) -> Any:
        """Return the component registered under ``name``."""
        if name in self._entries:
            return self._entries[name]
        if name in self._lazy:
            # Cache (and drop the loader) only on success, so a transient
            # loader failure stays retryable instead of turning into a
            # misleading "unknown name" on the next resolve.
            component = self._lazy[name]()
            self._entries[name] = component
            del self._lazy[name]
            return component
        raise KeyError(
            f"unknown {self.kind} {name!r}; registered: {self.names()}"
        )

    def names(self) -> List[str]:
        return sorted(set(self._entries) | set(self._lazy))

    def resolve_all(self) -> Dict[str, Any]:
        """Resolve every registered name (forcing lazy loaders), by name.

        Enumeration order is :meth:`names` order, so consumers that
        instantiate everything (e.g. the lint runner walking
        :data:`repro.analysis.context.RULES`) behave deterministically.
        """
        return {name: self.resolve(name) for name in self.names()}

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._lazy

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={self.names()})"


PARTITIONERS = Registry("partitioner")
ENGINES = Registry("bsp engine")
PROGRAMS = Registry("worker program")
TRANSPORTS = Registry("transport")
SERVICE_TRANSPORTS = Registry("service transport")


# ----------------------------------------------------------------------
# Built-in partitioner builders (module-level functions: picklable).
# ----------------------------------------------------------------------
def build_hash_partitioner(num_workers, caps):
    from repro.graph.partition import HashPartitioner

    return HashPartitioner(num_workers)


def build_range_partitioner(num_workers, caps):
    from repro.graph.partition import ContiguousPartitioner

    return ContiguousPartitioner(num_workers, caps.num_vertices)


PARTITIONERS.register("hash", build_hash_partitioner)
PARTITIONERS.register("range", build_range_partitioner)


# ----------------------------------------------------------------------
# Built-in BSP engine builders.
# ----------------------------------------------------------------------
def build_reference_engine(shards, partitioner):
    from repro.distributed.engine import BSPEngine

    return BSPEngine(shards, partitioner)


def build_array_engine(shards, partitioner):
    from repro.distributed.engine_array import ArrayBSPEngine

    return ArrayBSPEngine(shards, partitioner)


ENGINES.register("reference", build_reference_engine)
ENGINES.register("array", build_array_engine)


# ----------------------------------------------------------------------
# Built-in worker-program classes, keyed "<task>/<plane>".
# ----------------------------------------------------------------------
def _load_rslpa_reference():
    from repro.distributed.programs import RSLPAPropagationProgram

    return RSLPAPropagationProgram


def _load_rslpa_array():
    from repro.distributed.programs_array import FastRSLPAPropagationProgram

    return FastRSLPAPropagationProgram


def _load_slpa_reference():
    from repro.distributed.programs import SLPAPropagationProgram

    return SLPAPropagationProgram


def _load_slpa_array():
    from repro.distributed.programs_array import FastSLPAPropagationProgram

    return FastSLPAPropagationProgram


def _load_correction_reference():
    from repro.distributed.programs import CorrectionPropagationProgram

    return CorrectionPropagationProgram


PROGRAMS.register_lazy("rslpa/reference", _load_rslpa_reference)
PROGRAMS.register_lazy("rslpa/array", _load_rslpa_array)
PROGRAMS.register_lazy("slpa/reference", _load_slpa_reference)
PROGRAMS.register_lazy("slpa/array", _load_slpa_array)
PROGRAMS.register_lazy("correction/reference", _load_correction_reference)


# ----------------------------------------------------------------------
# Built-in multiprocess data-plane transports.
# ----------------------------------------------------------------------
def _load_pipe_transport():
    from repro.distributed.transport import PipeTransport

    return PipeTransport


def _load_shm_transport():
    from repro.distributed.transport import SharedMemoryTransport

    return SharedMemoryTransport


def _load_tcp_transport():
    from repro.distributed.transport import SocketTransport

    return SocketTransport


TRANSPORTS.register_lazy("pipe", _load_pipe_transport)
TRANSPORTS.register_lazy("shm", _load_shm_transport)
TRANSPORTS.register_lazy("tcp", _load_tcp_transport)


# ----------------------------------------------------------------------
# Built-in service-plane (replication) wires.
# ----------------------------------------------------------------------
def _load_pipe_service_wire():
    from repro.service.replication import PipeServiceWire

    return PipeServiceWire


def _load_tcp_service_wire():
    from repro.service.replication import TcpServiceWire

    return TcpServiceWire


SERVICE_TRANSPORTS.register_lazy("pipe", _load_pipe_service_wire)
SERVICE_TRANSPORTS.register_lazy("tcp", _load_tcp_service_wire)
