"""The unified execution-plan API: one front door for every mode.

The paper's claim is one algorithm that runs unchanged across static,
dynamic, and distributed settings; this package makes the *library* say
the same thing.  Three layers (see ``DESIGN.md`` at the repo root):

1. **Configs** (:mod:`repro.api.config`) — frozen declarative dataclasses:
   :class:`AlgoConfig` (seed, horizon T, τ sweep),
   :class:`ExecutionConfig` (backend / message plane / shard storage /
   state format / workers / partitioner / multiprocess),
   :class:`ServicePlanConfig` (a full service deployment).
2. **Plan resolution** (:mod:`repro.api.plan`) —
   :func:`resolve_plan(caps, config) <resolve_plan>` negotiates every
   ``"auto"`` against the graph's :class:`GraphCaps` in exactly one
   place and returns a :class:`RunPlan` whose :meth:`RunPlan.explain`
   says why each fallback fired.  Components (partitioners, engines,
   worker programs) resolve by name through
   :mod:`repro.api.registry`, so plugins extend any axis.
3. **Results** (:mod:`repro.api.results`) — :class:`DetectionResult` /
   :class:`UpdateResult` / :class:`DistributedResult` carry the cover,
   the live state handle, comm stats, timings, and the plan that
   produced them.

:func:`detect` / :func:`update` / :func:`run_distributed`
(:mod:`repro.api.run`) are the one-call forms.  The kwargs on
:class:`~repro.core.detector.RSLPADetector`, the cluster wrappers, and
:class:`~repro.service.CommunityService` remain supported shims that
construct these configs internally — bit-identical per seed either way.
"""

from repro.api.config import (
    DEFAULT_ITERATIONS,
    AlgoConfig,
    ExecutionConfig,
    ServicePlanConfig,
)
from repro.api.plan import (
    GraphCaps,
    PlanDecision,
    RunPlan,
    ServiceRunPlan,
    plan_for,
    resolve_plan,
    resolve_service_plan,
)
from repro.api.registry import (
    ENGINES,
    PARTITIONERS,
    PROGRAMS,
    SERVICE_TRANSPORTS,
    Registry,
)
from repro.api.results import (
    DetectionResult,
    DistributedResult,
    ReplicatedRunResult,
    UpdateResult,
)
from repro.api.run import detect, run_distributed, update

__all__ = [
    "DEFAULT_ITERATIONS",
    "AlgoConfig",
    "ExecutionConfig",
    "ServicePlanConfig",
    "GraphCaps",
    "PlanDecision",
    "RunPlan",
    "ServiceRunPlan",
    "resolve_plan",
    "resolve_service_plan",
    "plan_for",
    "Registry",
    "PARTITIONERS",
    "ENGINES",
    "PROGRAMS",
    "SERVICE_TRANSPORTS",
    "DetectionResult",
    "UpdateResult",
    "DistributedResult",
    "ReplicatedRunResult",
    "detect",
    "update",
    "run_distributed",
]
