"""Declarative run configuration: *what* to run, never *how it resolved*.

Three frozen dataclasses describe a run before any negotiation happens:

* :class:`AlgoConfig` — the algorithm itself (seed, horizon T, τ1 sweep
  step).  Identical values ⇒ bit-identical labels on every backend.
* :class:`ExecutionConfig` — where and on what substrate the run executes:
  the local backend, the distributed message plane, worker-shard storage,
  state export format, worker count, partitioner, multiprocess flag.
  Every field accepts ``"auto"``; :func:`repro.api.plan.resolve_plan`
  turns the config plus the graph's capabilities into a concrete
  :class:`~repro.api.plan.RunPlan` with recorded provenance.
* :class:`ServicePlanConfig` — a :class:`CommunityService` deployment:
  the algo + execution configs plus the ingest/query/durability knobs.

Configs are pure data: hashable-by-value (except a caller-supplied
partitioner instance), comparable, and safe to share between runs.  All
validation of *choices* lives here; all *negotiation* lives in
:func:`~repro.api.plan.resolve_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.utils.validation import check_positive, check_type

__all__ = [
    "DEFAULT_ITERATIONS",
    "AlgoConfig",
    "ExecutionConfig",
    "ServicePlanConfig",
    "BACKEND_CHOICES",
    "ENGINE_CHOICES",
    "SHARD_BACKEND_CHOICES",
    "STATE_FORMAT_CHOICES",
    "TRANSPORT_CHOICES",
    "SERVICE_TRANSPORT_CHOICES",
]

#: Paper default for rSLPA (Section V-A3: stable for T >= 200).
DEFAULT_ITERATIONS = 200

#: Built-in values per execution axis (``auto`` defers to plan resolution;
#: ``engine`` and ``transport`` additionally accept any name registered in
#: :data:`repro.api.registry.ENGINES` / :data:`repro.api.registry.TRANSPORTS`).
BACKEND_CHOICES = ("auto", "fast", "reference")
ENGINE_CHOICES = ("auto", "reference", "array")
SHARD_BACKEND_CHOICES = ("auto", "dict", "csr")
STATE_FORMAT_CHOICES = ("auto", "dict", "array")
TRANSPORT_CHOICES = ("auto", "pipe", "shm", "tcp")
#: Service-plane (primary → replica WAL shipping) transports; distinct
#: from the BSP data plane because replicas exchange small pickled
#: control records, not packed label columns.
SERVICE_TRANSPORT_CHOICES = ("auto", "pipe", "tcp")


def _check_choice(value: str, choices, name: str) -> None:
    if value not in choices:
        pretty = ", ".join(repr(c) for c in choices[:-1])
        raise ValueError(
            f"{name} must be {pretty} or {choices[-1]!r}, got {value!r}"
        )


@dataclass(frozen=True)
class AlgoConfig:
    """The rSLPA algorithm parameters (identical values ⇒ identical labels).

    ``seed`` keys every counter-based random draw, ``iterations`` is the
    propagation horizon T, and ``tau_step`` the grid step of the τ1
    entropy sweep (Section III-B).
    """

    seed: int = 0
    iterations: int = DEFAULT_ITERATIONS
    tau_step: float = 0.001

    def __post_init__(self):
        check_type(self.seed, int, "seed")
        check_type(self.iterations, int, "iterations")
        check_positive(self.iterations, "iterations")
        check_positive(self.tau_step, "tau_step")


@dataclass(frozen=True)
class ExecutionConfig:
    """Where a run executes; ``"auto"`` fields are negotiated by
    :func:`repro.api.plan.resolve_plan` against the graph's capabilities.

    Parameters
    ----------
    backend:
        Local lifecycle substrate — ``"fast"`` (vectorised CSR/array),
        ``"reference"`` (pure Python), or ``"auto"`` (fast whenever the
        vertex ids are contiguous ``0..n-1``).
    num_workers:
        ``0`` runs locally; ``> 0`` runs on the simulated BSP cluster
        with that many workers.
    engine:
        Distributed message plane — ``"array"`` (struct-of-arrays
        columns), ``"reference"`` (Python tuples), or ``"auto"`` (array
        on CSR shards).
    shard_backend:
        Worker-shard adjacency storage — ``"csr"``, ``"dict"``, or
        ``"auto"`` (CSR whenever the ids are contiguous).
    state_format:
        Distributed fit export — ``"array"``
        (:class:`~repro.core.labels_array.ArrayLabelState`), ``"dict"``
        (:class:`~repro.core.labels.LabelState`), or ``"auto"`` (follow
        the resolved backend).
    partitioner:
        A registered partitioner name (``"hash"``, ``"range"``, or a
        plugin registered in :data:`repro.api.registry.PARTITIONERS`), a
        ready :class:`~repro.graph.partition.Partitioner` instance, or
        ``None`` for the default hash partitioner.
    multiprocess:
        Run distributed workers as real OS processes
        (:class:`~repro.distributed.multiprocess.MultiprocessBSPEngine`)
        instead of the in-process simulator.  Propagation programs only.
    transport:
        Multiprocess data plane — ``"pipe"`` (payloads pickled over the
        control pipes), ``"shm"`` (zero-copy shared-memory column rings),
        ``"tcp"`` (framed columns over localhost sockets), a plugin
        registered in :data:`repro.api.registry.TRANSPORTS`, or
        ``"auto"`` (shm whenever the array plane runs multiprocess).
        Only meaningful with ``multiprocess=True``; ``shm``/``tcp``
        require the array message plane.
    fault_tolerance:
        Supervise the multiprocess engine: checkpoint a consistent cut
        every ``checkpoint_interval`` supersteps and transparently
        respawn/replay on worker death (bit-identical results).  Requires
        ``multiprocess=True``.
    checkpoint_interval:
        Supersteps between consistent cuts (``None`` = resolver default).
        Requires ``fault_tolerance=True``.
    max_restarts:
        Worker respawns allowed before a crash is surfaced
        (``None`` = resolver default).  Requires ``fault_tolerance=True``.
    trace:
        Record the run on the observability plane (:mod:`repro.obs`):
        per-phase spans on a bounded flight recorder plus the mergeable
        metrics registry, surfaced as ``result.trace``
        (:class:`~repro.obs.TraceResult`).  Off by default — the
        disabled path makes zero calls into :mod:`repro.obs` and
        results stay bit-identical either way.
    """

    backend: str = "auto"
    num_workers: int = 0
    engine: str = "auto"
    shard_backend: str = "auto"
    state_format: str = "auto"
    partitioner: Optional[Union[str, object]] = None
    multiprocess: bool = False
    transport: str = "auto"
    fault_tolerance: bool = False
    checkpoint_interval: Optional[int] = None
    max_restarts: Optional[int] = None
    trace: bool = False

    def __post_init__(self):
        from repro.api.registry import ENGINES as engine_registry
        from repro.api.registry import TRANSPORTS as transport_registry

        _check_choice(self.backend, BACKEND_CHOICES, "backend")
        if self.engine not in engine_registry:  # plugin planes are selectable
            _check_choice(self.engine, ENGINE_CHOICES, "engine")
        if self.transport not in transport_registry:  # plugin data planes too
            _check_choice(self.transport, TRANSPORT_CHOICES, "transport")
        _check_choice(self.shard_backend, SHARD_BACKEND_CHOICES, "shard_backend")
        _check_choice(self.state_format, STATE_FORMAT_CHOICES, "state_format")
        check_type(self.num_workers, int, "num_workers")
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        check_type(self.multiprocess, bool, "multiprocess")
        check_type(self.fault_tolerance, bool, "fault_tolerance")
        check_type(self.trace, bool, "trace")
        if self.checkpoint_interval is not None:
            check_type(self.checkpoint_interval, int, "checkpoint_interval")
            check_positive(self.checkpoint_interval, "checkpoint_interval")
        if self.max_restarts is not None:
            check_type(self.max_restarts, int, "max_restarts")
            if self.max_restarts < 0:
                raise ValueError(
                    f"max_restarts must be >= 0, got {self.max_restarts}"
                )


@dataclass(frozen=True)
class ServicePlanConfig:
    """A :class:`~repro.service.CommunityService` deployment, in one object.

    Composes the algorithm and execution configs with the service planes'
    knobs (see :class:`repro.service.ServiceConfig` for the flat legacy
    form, which maps 1:1 onto the non-replication fields).
    ``staleness_batches`` is K in the lazy re-extraction policy;
    ``checkpoint_every = 0`` disables automatic checkpoints; with
    ``strict_edits`` off, no-op edits are dropped instead of raising.

    The replication topology lives here too: ``replicas > 0`` deploys the
    service under a :class:`~repro.service.replication.ServiceSupervisor`
    with that many read replicas.  ``heartbeat_interval`` (seconds,
    ``None`` = resolver default), ``max_failovers`` (primary promotions
    allowed before the supervisor gives up, ``None`` = one per replica)
    and ``service_transport`` (``"pipe"``/``"tcp"``/``"auto"``, or a
    plugin in :data:`repro.api.registry.SERVICE_TRANSPORTS`) are
    negotiated with provenance by
    :func:`repro.api.plan.resolve_service_plan`; any of them set with
    ``replicas = 0`` is an error caught there.
    """

    algo: AlgoConfig = field(default_factory=AlgoConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    batch_size: int = 256
    max_pending: Optional[int] = None
    staleness_batches: int = 4
    match_threshold: float = 0.3
    drift_tolerance: float = 0.1
    checkpoint_every: int = 1
    keep_checkpoints: int = 2
    strict_edits: bool = True
    replicas: int = 0
    heartbeat_interval: Optional[float] = None
    max_failovers: Optional[int] = None
    service_transport: str = "auto"

    def __post_init__(self):
        from repro.api.registry import SERVICE_TRANSPORTS as service_registry

        check_type(self.algo, AlgoConfig, "algo")
        check_type(self.execution, ExecutionConfig, "execution")
        check_type(self.batch_size, int, "batch_size")
        check_positive(self.batch_size, "batch_size")
        check_type(self.replicas, int, "replicas")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.heartbeat_interval is not None:
            check_positive(self.heartbeat_interval, "heartbeat_interval")
        if self.max_failovers is not None:
            check_type(self.max_failovers, int, "max_failovers")
            if self.max_failovers < 0:
                raise ValueError(
                    f"max_failovers must be >= 0, got {self.max_failovers}"
                )
        if self.service_transport not in service_registry:
            _check_choice(
                self.service_transport,
                SERVICE_TRANSPORT_CHOICES,
                "service_transport",
            )
