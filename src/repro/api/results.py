"""Uniform result objects across the execution planes.

Every front-door entry point returns one of three carriers, so callers
consume local, distributed, and service runs identically: the cover (or
repair report), a handle on the live label state, the communication
stats when a cluster was involved, wall-clock timings, and — always —
the :class:`~repro.api.plan.RunPlan` that produced the result, so
``result.plan.explain()`` answers "what actually ran?" after the fact.

The payload fields are intentionally loosely typed (the state handle is
whichever representation the resolved backend runs on: a dict-backed
:class:`~repro.core.labels.LabelState` or an
:class:`~repro.core.labels_array.ArrayLabelState`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.api.plan import RunPlan, ServiceRunPlan

__all__ = [
    "DetectionResult",
    "UpdateResult",
    "DistributedResult",
    "ReplicatedRunResult",
]


def _trace_result(comm_stats: Any, plan: Any) -> Optional[Any]:
    """Freeze the observability context riding on ``comm_stats.obs`` (if
    the run was traced) into a :class:`~repro.obs.TraceResult`, stamped
    with the resolved plan's summary."""
    obs = getattr(comm_stats, "obs", None)
    if obs is None:
        return None
    return obs.result({"plan": plan.summary()})


@dataclass(frozen=True)
class DetectionResult:
    """A completed fit + extraction (local or distributed)."""

    cover: Any  #: the extracted :class:`~repro.core.communities.Cover`
    state: Any  #: live label-state handle (array or dict representation)
    plan: RunPlan
    detector: Any  #: the fitted detector, ready for ``update`` calls
    comm_stats: Optional[Any] = None  #: CommStats for distributed fits
    timings: Mapping[str, float] = field(default_factory=dict)

    @property
    def num_communities(self) -> int:
        return len(self.cover)

    @property
    def recovery(self) -> Optional[Any]:
        """Fault-tolerance counters
        (:class:`~repro.distributed.metrics.RecoveryStats`) when the fit
        ran on the supervised multiprocess engine, else ``None``."""
        return getattr(self.comm_stats, "recovery", None)

    @property
    def trace(self) -> Optional[Any]:
        """The recorded :class:`~repro.obs.TraceResult` when the run was
        traced (``ExecutionConfig(trace=True)``), else ``None``."""
        return _trace_result(self.comm_stats, self.plan)


@dataclass(frozen=True)
class UpdateResult:
    """One applied edit batch (Correction Propagation)."""

    report: Any  #: the :class:`~repro.core.incremental.UpdateReport`
    state: Any  #: live label-state handle after the repair
    plan: RunPlan
    cover: Optional[Any] = None  #: re-extracted cover (only if requested)
    timings: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class DistributedResult:
    """A raw cluster run: the merged state plus its communication bill."""

    state: Any  #: merged label state in the plan's ``state_format``
    comm_stats: Any  #: per-superstep :class:`~repro.distributed.metrics.CommStats`
    plan: RunPlan
    timings: Mapping[str, float] = field(default_factory=dict)

    @property
    def recovery(self) -> Optional[Any]:
        """Fault-tolerance counters
        (:class:`~repro.distributed.metrics.RecoveryStats`) when the run
        was supervised (``plan.fault_tolerance``), else ``None``."""
        return getattr(self.comm_stats, "recovery", None)

    @property
    def trace(self) -> Optional[Any]:
        """The recorded :class:`~repro.obs.TraceResult` when the run was
        traced (``ExecutionConfig(trace=True)``), else ``None``."""
        return _trace_result(self.comm_stats, self.plan)


@dataclass(frozen=True)
class ReplicatedRunResult:
    """A completed replicated-service run (supervisor shut down cleanly).

    ``stats`` is the final ``ServiceSupervisor.stats()`` snapshot —
    including the failover ledger — frozen at shutdown; ``cover`` is the
    promoted (or never-failed) primary's final extraction, bit-identical
    per seed to an unreplicated run of the same edit sequence.
    """

    cover: Any  #: final :class:`~repro.core.communities.Cover`
    stats: Mapping[str, Any]
    plan: ServiceRunPlan
    timings: Mapping[str, float] = field(default_factory=dict)

    @property
    def failovers(self) -> int:
        return int(self.stats.get("failovers", 0))

    @property
    def promoted_replica(self) -> Optional[int]:
        return self.stats.get("promoted_replica")

    @property
    def replayed_records(self) -> int:
        return int(self.stats.get("replayed_records", 0))
