"""Command-line interface: detect, update, serve, plan, lint, and inspect.

Seven subcommands mirroring the library lifecycle::

    python -m repro.cli detect graph.txt --seed 7 -T 200 \
        --state state.json --cover cover.json
    python -m repro.cli update state.json graph.txt edits.txt \
        --seed 7 --cover cover.json
    python -m repro.cli serve graph.txt --edits edits.txt \
        --checkpoint-dir state/ --query 17 --query 23
    python -m repro.cli plan graph.txt --distributed 4
    python -m repro.cli stats graph.txt
    python -m repro.cli trace run.trace.json --chrome run.chrome.json
    python -m repro.cli lint src/repro --format github --stats

``graph.txt`` is a whitespace edge list (directions/duplicates/self-loops
normalised away, as in the paper's preprocessing); ``edits.txt`` uses the
same format prefixed with ``+``/``-`` per line::

    + 17 23
    - 4 9

All subcommands share one flag vocabulary (:func:`add_algo_args` /
:func:`add_execution_args`) that maps 1:1 onto the config layer
(:class:`~repro.api.config.AlgoConfig`,
:class:`~repro.api.config.ExecutionConfig`); the ``plan`` subcommand
prints :meth:`RunPlan.explain() <repro.api.plan.RunPlan.explain>` — which
backend/plane/shard storage the flags would resolve to, and why — without
running anything.

The ``update`` subcommand loads a saved label state, applies the batch with
Correction Propagation, saves the state back, and (optionally) re-extracts
the communities — the paper's continuous-monitoring loop as a shell command.

The ``serve`` subcommand runs one session of the
:class:`~repro.service.CommunityService`: fit (or ``--recover`` from a
checkpoint directory), stream the edit file through the coalescing ingest
queue, answer ``--query`` membership lookups from the stable-id index, and
leave a checkpoint + WAL behind for the next session.

Observability rides along on every running subcommand: ``--trace`` records
phase spans and metrics (:mod:`repro.obs`) and prints the phase-timing
summary, ``--trace-out PATH`` saves the full trace as JSON, and
``--metrics PATH`` writes the Prometheus text exposition.  A saved trace is
inspected or converted offline with the ``trace`` subcommand (summary by
default, ``--chrome`` for a chrome://tracing / Perfetto timeline,
``--prometheus`` for the exposition).  Tracing never changes results — runs
are bit-identical with it on or off.

The ``lint`` subcommand runs the static invariant checker
(:mod:`repro.analysis`, rules RPL001–RPL005 plus the RPL000 framework
diagnostics) over source trees: exit 0 clean, 1 on gating findings, 2 on
usage errors — CI-ready.  ``--format github`` emits workflow commands
that annotate the diff; ``--baseline`` grandfathers a committed debt
file; ``--stats`` prints per-rule finding counts and file totals.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.api.config import AlgoConfig, ExecutionConfig, ServicePlanConfig
from repro.api.plan import plan_for
from repro.core.detector import RSLPADetector
from repro.core.serialize import save_cover, save_state
from repro.graph.edits import EditBatch
from repro.graph.io import read_edge_list

__all__ = [
    "main",
    "build_parser",
    "parse_edit_file",
    "iter_edit_file",
    "add_algo_args",
    "add_execution_args",
    "algo_config_from_args",
    "execution_config_from_args",
]


def iter_edit_file(path: str) -> List[Tuple[str, int, int]]:
    """Read a ``+/- u v`` edit file as an ordered list of single edits."""
    edits: List[Tuple[str, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected '+ u v' or '- u v', got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-integer vertex id") from exc
            edits.append((parts[0], u, v))
    return edits


def parse_edit_file(path: str) -> EditBatch:
    """Read a ``+/- u v`` edit file into a batch."""
    edits = iter_edit_file(path)
    return EditBatch.build(
        insertions=[(u, v) for op, u, v in edits if op == "+"],
        deletions=[(u, v) for op, u, v in edits if op == "-"],
    )


# ----------------------------------------------------------------------
# Shared flag vocabulary (one declaration per flag, used by every
# subcommand; mapped 1:1 onto the config layer).
# ----------------------------------------------------------------------
def add_algo_args(parser: argparse.ArgumentParser, with_iterations: bool = True) -> None:
    """The :class:`AlgoConfig` flags: --seed, -T/--iterations, --tau-step."""
    parser.add_argument("--seed", type=int, default=0,
                        help="randomness seed (identical results per seed)")
    if with_iterations:
        parser.add_argument("-T", "--iterations", type=int, default=200,
                            help="propagation horizon T (paper default 200)")
    parser.add_argument("--tau-step", type=float, default=0.001,
                        help="grid step of the tau1 entropy sweep")


def add_execution_args(
    parser: argparse.ArgumentParser, with_distributed: bool = True
) -> None:
    """The :class:`ExecutionConfig` flags shared by detect/update/serve/plan."""
    parser.add_argument(
        "--backend",
        choices=("auto", "reference", "fast"),
        default="auto",
        help="lifecycle backend: 'fast' is the vectorised CSR/array "
        "substrate, 'reference' the pure-Python engines (bit-identical "
        "per seed); 'auto' picks fast when vertex ids are contiguous",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record phase spans + metrics (repro.obs) and print the "
        "phase-timing summary; results are bit-identical with tracing "
        "on or off, and the instrumentation is a no-op when off",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="save the full trace (spans + metrics + meta) as JSON; "
        "implies --trace; inspect or convert it with `repro trace`",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics_out",
        metavar="PATH",
        help="write the run's Prometheus text exposition here; "
        "implies --trace",
    )
    if not with_distributed:
        return
    parser.add_argument(
        "--distributed",
        type=int,
        default=0,
        metavar="N",
        help="run on the simulated BSP cluster with N workers "
        "(0 = local); results are bit-identical either way",
    )
    parser.add_argument(
        "--dist-engine",
        choices=("auto", "reference", "array"),
        default="auto",
        help="distributed message plane: 'array' routes struct-of-arrays "
        "columns, 'reference' Python tuples; 'auto' prefers the array "
        "plane on CSR shards",
    )
    parser.add_argument(
        "--shard-backend",
        choices=("auto", "dict", "csr"),
        default="auto",
        help="worker shard adjacency storage for distributed runs",
    )
    parser.add_argument(
        "--partitioner",
        default=None,
        metavar="NAME",
        help="registered partitioner name ('hash', 'range', or a plugin "
        "from repro.api.registry.PARTITIONERS); default 'hash'",
    )
    parser.add_argument(
        "--multiprocess",
        action="store_true",
        help="run distributed workers as real OS processes instead of "
        "the in-process simulator (propagation programs only)",
    )
    parser.add_argument(
        "--transport",
        default="auto",
        metavar="NAME",
        help="multiprocess data plane: 'pipe' (pickle over the control "
        "pipes), 'shm' (zero-copy shared-memory column rings), 'tcp' "
        "(framed columns over localhost sockets), a plugin from "
        "repro.api.registry.TRANSPORTS, or 'auto' (shm on the array "
        "plane); requires --multiprocess",
    )
    parser.add_argument(
        "--fault-tolerance",
        action="store_true",
        help="supervise the multiprocess engine: checkpoint a consistent "
        "cut every K supersteps and transparently respawn/replay on "
        "worker death (bit-identical results); requires --multiprocess",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="K",
        help="supersteps between consistent cuts (default: plan-resolved); "
        "requires --fault-tolerance",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        metavar="N",
        help="worker respawns allowed before a crash is surfaced "
        "(default: plan-resolved); requires --fault-tolerance",
    )


def algo_config_from_args(args) -> AlgoConfig:
    return AlgoConfig(
        seed=args.seed,
        iterations=getattr(args, "iterations", AlgoConfig.iterations),
        tau_step=args.tau_step,
    )


def execution_config_from_args(args) -> ExecutionConfig:
    return ExecutionConfig(
        backend=args.backend,
        num_workers=getattr(args, "distributed", 0),
        engine=getattr(args, "dist_engine", "auto"),
        shard_backend=getattr(args, "shard_backend", "auto"),
        state_format=getattr(args, "state_format", "auto"),
        partitioner=getattr(args, "partitioner", None),
        multiprocess=getattr(args, "multiprocess", False),
        transport=getattr(args, "transport", "auto"),
        fault_tolerance=getattr(args, "fault_tolerance", False),
        checkpoint_interval=getattr(args, "checkpoint_interval", None),
        max_restarts=getattr(args, "max_restarts", None),
        trace=bool(
            getattr(args, "trace", False)
            or getattr(args, "trace_out", None)
            or getattr(args, "metrics_out", None)
        ),
    )


def _write_trace_artifacts(trace_result, args, out) -> None:
    """Emit whatever observability artifacts the flags asked for.

    ``trace_result`` is a :class:`repro.obs.TraceResult` (or ``None`` when
    the executed path records no spans — e.g. a purely local fit).
    """
    wants = (
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
    )
    if not wants:
        return
    if trace_result is None:
        out.write(
            "trace: no spans recorded (tracing covers the distributed "
            "engines and the service plane)\n"
        )
        return
    if args.trace_out:
        trace_result.save(args.trace_out)
        out.write(
            f"trace saved to {args.trace_out} (inspect with `repro trace`)\n"
        )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(trace_result.to_prometheus())
        out.write(f"metrics exposition saved to {args.metrics_out}\n")
    if args.trace:
        out.write(trace_result.summary() + "\n")


def _print_cover(cover, out) -> None:
    payload = {
        "num_communities": len(cover),
        "sizes": cover.sizes(),
        "overlapping_vertices": sorted(cover.overlapping_vertices()),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _cmd_detect(args, out) -> int:
    graph = read_edge_list(args.graph)
    # Both backends export a fully-recorded state (so later `update` runs
    # work either way) and are bit-identical per seed; the plan layer
    # negotiates every 'auto' against the graph.
    detector = RSLPADetector(
        graph,
        algo=algo_config_from_args(args),
        execution=execution_config_from_args(args),
    )
    trace_result = None
    if args.distributed:
        # Same fitted state as a local fit (all engines are bit-identical
        # per seed), plus the run's communication accounting.
        detector.fit_distributed()
        out.write(f"distributed fit: {detector.comm_stats.summary()}\n")
        obs = getattr(detector.comm_stats, "obs", None)
        if obs is not None:
            trace_result = obs.result({"command": "detect"})
    else:
        detector.fit()
    cover = detector.communities()
    _write_trace_artifacts(trace_result, args, out)
    if args.state:
        save_state(detector.label_state, args.state)
        out.write(f"label state saved to {args.state}\n")
    if args.cover:
        save_cover(cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
    _print_cover(cover, out)
    return 0


def _cmd_update(args, out) -> int:
    from repro.core.serialize import load_state

    graph = read_edge_list(args.graph)
    # Either representation may come back (JSON -> LabelState, npz ->
    # ArrayLabelState); the resolved plan decides what it runs on and
    # from_state converts as needed.  Validate first so a corrupt or
    # mismatched file is an input error on every backend.
    state = load_state(args.state)
    batch = parse_edit_file(args.edits)
    state.validate(graph)
    detector = RSLPADetector.from_state(
        graph,
        state,
        seed=args.seed,
        backend=args.backend,
        tau_step=args.tau_step,
        batch_epoch=args.batch_epoch - 1,
    )
    report = detector.update(batch)
    # save_state converts as needed; the target's format follows its suffix.
    save_state(detector.state, args.state)
    out.write(
        f"applied {batch.size} edits: {report.repicked} repicked, "
        f"{report.touched_labels} labels touched; "
        f"state saved to {args.state}\n"
    )
    # Correction Propagation runs in-process with no span sites; honour
    # the trace flags with the notice instead of silently dropping them.
    _write_trace_artifacts(None, args, out)
    if args.cover:
        cover = detector.communities()
        save_cover(cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
        _print_cover(cover, out)
    return 0


def _cmd_serve_replicated(args, out) -> int:
    from repro.service import ServiceSupervisor

    if args.recover:
        raise ValueError(
            "--recover is not supported with --replicas: the supervisor's "
            "primary fits fresh and replicas bootstrap from its live state"
        )
    if not args.checkpoint_dir:
        raise ValueError(
            "--replicas requires --checkpoint-dir (replicas bootstrap from "
            "the shared checkpoint + WAL)"
        )
    if not args.graph:
        raise ValueError("a graph file is required with --replicas")
    graph = read_edge_list(args.graph)
    config = ServicePlanConfig(
        algo=algo_config_from_args(args),
        execution=execution_config_from_args(args),
        batch_size=args.batch_size,
        staleness_batches=args.staleness,
        checkpoint_every=args.checkpoint_every,
        replicas=args.replicas,
        heartbeat_interval=args.heartbeat_interval,
        max_failovers=args.max_failovers,
        service_transport=args.service_transport,
    )
    supervisor = ServiceSupervisor(graph, args.checkpoint_dir, config)
    supervisor.start()
    trace_result = None
    try:
        client = supervisor.client()
        if args.edits:
            for op, u, v in iter_edit_file(args.edits):
                supervisor.submit(op, u, v)
            supervisor.flush()
        payload = {
            "stats": supervisor.stats(),
            "plan": supervisor.plan.summary(),
        }
        if args.query:
            memberships = {}
            for v in args.query:
                cids = client.communities_of(v)
                memberships[str(v)] = {
                    "communities": list(cids),
                    "sizes": [len(client.members(c)) for c in cids],
                }
            payload["memberships"] = memberships
            payload["client"] = {
                "queries_served": client.queries_served,
                "stale_serves": client.stale_serves,
                "reroutes": client.reroutes,
            }
        trace_result = supervisor.trace_result()
    finally:
        supervisor.shutdown()
    _write_trace_artifacts(trace_result, args, out)
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def _cmd_serve(args, out) -> int:
    from repro.service import CommunityService

    if args.replicas:
        return _cmd_serve_replicated(args, out)
    for knob, value, unset in (
        ("--max-failovers", args.max_failovers, None),
        ("--heartbeat-interval", args.heartbeat_interval, None),
        ("--service-transport", args.service_transport, "auto"),
    ):
        if value != unset:
            raise ValueError(f"{knob} tunes replication and requires --replicas")
    if args.recover:
        if not args.checkpoint_dir:
            raise ValueError("--recover requires --checkpoint-dir")
        service = CommunityService.recover(
            args.checkpoint_dir,
            backend=args.backend,
            batch_size=args.batch_size,
            staleness_batches=args.staleness,
            checkpoint_every=args.checkpoint_every,
            tau_step=args.tau_step,
        )
        out.write(
            f"recovered from {args.checkpoint_dir}: "
            f"{service.batches_applied} batches durable\n"
        )
    else:
        if not args.graph:
            raise ValueError("a graph file is required unless --recover is given")
        graph = read_edge_list(args.graph)
        service = CommunityService(
            graph,
            config=ServicePlanConfig(
                algo=algo_config_from_args(args),
                execution=execution_config_from_args(args),
                batch_size=args.batch_size,
                staleness_batches=args.staleness,
                checkpoint_every=args.checkpoint_every,
            ),
            checkpoint_dir=args.checkpoint_dir,
        )
        service.start()
    if args.edits:
        # The service ingest path proper: single edits in file order through
        # the coalescing queue, windows flushed as they fill.  Unlike
        # `update`, opposite edits of one edge cancel instead of conflicting.
        for op, u, v in iter_edit_file(args.edits):
            service.submit(op, u, v)
        service.flush()
    payload = {"stats": service.stats()}
    if args.query:
        memberships = {}
        for v in args.query:
            cids = service.communities_of(v)
            memberships[str(v)] = {
                "communities": list(cids),
                "sizes": [len(service.members(c)) for c in cids],
            }
        payload["memberships"] = memberships
    trace_result = service.trace_result()
    service.close()
    _write_trace_artifacts(trace_result, args, out)
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def _cmd_plan(args, out) -> int:
    graph = read_edge_list(args.graph)
    plan = plan_for(graph, execution_config_from_args(args))
    out.write(plan.explain() + "\n")
    return 0


def _cmd_trace(args, out) -> int:
    from repro.obs import TraceResult, validate_chrome_trace

    result = TraceResult.load(args.trace_file)
    converted = False
    if args.chrome:
        payload = result.to_chrome_trace()
        validate_chrome_trace(payload)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        out.write(
            f"chrome trace saved to {args.chrome} "
            "(open in chrome://tracing or ui.perfetto.dev)\n"
        )
        converted = True
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(result.to_prometheus())
        out.write(f"metrics exposition saved to {args.prometheus}\n")
        converted = True
    if not converted:
        out.write(result.summary() + "\n")
    return 0


def _cmd_lint(args, out) -> int:
    from repro.analysis import Baseline, FORMATTERS, lint_paths

    baseline = None
    if args.baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
    report = lint_paths(args.paths, baseline=baseline)
    if args.write_baseline:
        if not args.baseline:
            raise ValueError("--write-baseline requires --baseline PATH")
        # Grandfather the current findings: the rule gates new code at
        # once while the recorded debt is burned down entry by entry.
        Baseline.from_findings(
            report.findings,
            justification="grandfathered when the rule landed; fix and "
            "remove (see DESIGN.md 'Static invariants')",
        ).save(args.baseline)
        out.write(
            f"baseline written to {args.baseline}: "
            f"{len(report.findings)} finding(s) grandfathered\n"
        )
        return 0
    out.write(FORMATTERS[args.format](report, stats=args.stats))
    return report.exit_code(strict=args.strict)


def _cmd_stats(args, out) -> int:
    graph = read_edge_list(args.graph)
    components = graph.connected_components()
    payload = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "average_degree": round(graph.average_degree(), 3),
        "max_degree": graph.max_degree(),
        "isolated_vertices": len(graph.isolated_vertices()),
        "connected_components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rSLPA overlapping community detection (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run rSLPA on a static edge list")
    detect.add_argument("graph", help="edge-list file")
    add_algo_args(detect)
    add_execution_args(detect)
    detect.add_argument("--state", help="save the label state here (JSON/npz)")
    detect.add_argument("--cover", help="save the cover here (JSON)")
    detect.set_defaults(func=_cmd_detect)

    update = sub.add_parser(
        "update", help="apply an edit batch to a saved state (Algorithm 2)"
    )
    update.add_argument("state", help="label-state file (updated in place)")
    update.add_argument("graph", help="edge list of the PRE-batch graph")
    update.add_argument("edits", help="edit file: '+ u v' / '- u v' lines")
    add_algo_args(update, with_iterations=False)
    add_execution_args(update, with_distributed=False)
    update.add_argument("--batch-epoch", type=int, default=1,
                        help="1 for the first update after detect, then 2, ...")
    update.add_argument("--cover", help="re-extract and save the cover here")
    update.set_defaults(func=_cmd_update)

    serve = sub.add_parser(
        "serve",
        help="run one community-service session (ingest + query + durability)",
    )
    serve.add_argument(
        "graph",
        nargs="?",
        help="edge-list file (omit with --recover; the checkpoint has the graph)",
    )
    add_algo_args(serve)
    add_execution_args(serve)
    serve.add_argument("--edits", help="edit file streamed through the ingest queue")
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="ingest micro-batch window (edits per flush)",
    )
    serve.add_argument(
        "--staleness",
        type=int,
        default=4,
        metavar="K",
        help="re-extract lazily once K batches landed since the last extraction",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="enable durability: npz checkpoints + write-ahead log here",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N applied batches (0 = only at start)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="restore from --checkpoint-dir (latest checkpoint + WAL replay) "
        "instead of fitting",
    )
    serve.add_argument(
        "--query",
        type=int,
        action="append",
        default=[],
        metavar="V",
        help="report stable community ids of vertex V (repeatable)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help="run under the replication supervisor with N read replicas "
        "(requires --checkpoint-dir; queries survive primary crashes)",
    )
    serve.add_argument(
        "--max-failovers",
        type=int,
        default=None,
        metavar="N",
        help="primary promotions allowed before the supervisor gives up "
        "(default: one per replica; needs --replicas)",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="S",
        help="replica lapse-detection window in seconds "
        "(default 0.5; needs --replicas)",
    )
    serve.add_argument(
        "--service-transport",
        choices=("auto", "pipe", "tcp"),
        default="auto",
        help="supervisor-to-child control wire: 'pipe' (local default) or "
        "'tcp' (localhost sockets; needs --replicas)",
    )
    serve.set_defaults(func=_cmd_serve)

    plan = sub.add_parser(
        "plan",
        help="print the resolved execution plan (and why) without running",
    )
    plan.add_argument("graph", help="edge-list file")
    add_execution_args(plan)
    plan.add_argument(
        "--state-format",
        choices=("auto", "dict", "array"),
        default="auto",
        help="distributed state export format to resolve",
    )
    plan.set_defaults(func=_cmd_plan)

    stats = sub.add_parser("stats", help="print normalised graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)

    lint = sub.add_parser(
        "lint",
        help="statically check the repo's invariants "
        "(determinism, obs-overhead, resource discipline, API hygiene, "
        "concurrency; see repro.analysis)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format; 'github' emits ::error workflow commands "
        "that annotate the offending lines in a PR diff",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed JSON baseline of grandfathered findings; matched "
        "findings are counted but do not gate (every entry must carry "
        "a justification string)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into --baseline PATH "
        "instead of reporting them, then exit 0",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and analyzed-file totals",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="warning-severity findings also gate (exit 1)",
    )
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="inspect or convert a saved trace (--trace-out file): "
        "phase summary, Chrome timeline JSON, Prometheus exposition",
    )
    trace.add_argument(
        "trace_file", help="TraceResult JSON saved by --trace-out"
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        help="export a Chrome trace-event JSON timeline "
        "(chrome://tracing / ui.perfetto.dev)",
    )
    trace.add_argument(
        "--prometheus",
        metavar="PATH",
        help="export the Prometheus text exposition of the run's metrics",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except (ValueError, OSError, AssertionError) as exc:
        # AssertionError: a loaded label state failed its invariant checks
        # (corrupt or mismatched file) — an input error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
