"""Command-line interface: detect, update, and inspect without writing code.

Three subcommands mirroring the library lifecycle::

    python -m repro.cli detect graph.txt --seed 7 -T 200 \
        --state state.json --cover cover.json
    python -m repro.cli update state.json graph.txt edits.txt \
        --seed 7 --cover cover.json
    python -m repro.cli stats graph.txt

``graph.txt`` is a whitespace edge list (directions/duplicates/self-loops
normalised away, as in the paper's preprocessing); ``edits.txt`` uses the
same format prefixed with ``+``/``-`` per line::

    + 17 23
    - 4 9

The ``update`` subcommand loads a saved label state, applies the batch with
Correction Propagation, saves the state back, and (optionally) re-extracts
the communities — the paper's continuous-monitoring loop as a shell command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.core.detector import RSLPADetector
from repro.core.incremental import CorrectionPropagator
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import extract_communities
from repro.core.rslpa import ReferencePropagator
from repro.core.serialize import load_state, save_cover, save_state
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.io import read_edge_list

__all__ = ["main", "build_parser", "parse_edit_file"]


def parse_edit_file(path: str) -> EditBatch:
    """Read a ``+/- u v`` edit file into a batch."""
    insertions: List[Tuple[int, int]] = []
    deletions: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected '+ u v' or '- u v', got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-integer vertex id") from exc
            (insertions if parts[0] == "+" else deletions).append((u, v))
    return EditBatch.build(insertions=insertions, deletions=deletions)


def _print_cover(cover, out) -> None:
    payload = {
        "num_communities": len(cover),
        "sizes": cover.sizes(),
        "overlapping_vertices": sorted(cover.overlapping_vertices()),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _cmd_detect(args, out) -> int:
    graph = read_edge_list(args.graph)
    # Both backends export a fully-recorded state (so later `update` runs
    # work either way) and are bit-identical per seed; "auto" takes the CSR
    # fast path whenever the ids are contiguous.
    detector = RSLPADetector(
        graph,
        seed=args.seed,
        iterations=args.iterations,
        backend=args.backend,
        tau_step=args.tau_step,
    )
    if args.distributed:
        # Same fitted state as a local fit (all engines are bit-identical
        # per seed), plus the run's communication accounting.
        detector.fit_distributed(
            num_workers=args.distributed,
            engine=args.dist_engine,
            shard_backend=args.shard_backend,
        )
        out.write(f"distributed fit: {detector.comm_stats.summary()}\n")
    else:
        detector.fit()
    cover = detector.communities()
    if args.state:
        save_state(detector.label_state, args.state)
        out.write(f"label state saved to {args.state}\n")
    if args.cover:
        save_cover(cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
    _print_cover(cover, out)
    return 0


def _cmd_update(args, out) -> int:
    graph = read_edge_list(args.graph)
    state = load_state(args.state)
    batch = parse_edit_file(args.edits)
    # Backend selection mirrors `detect`: the vectorised corrector needs
    # contiguous ids (the array substrate's contract, for the graph AND for
    # any vertices the batch creates); 'auto' checks and falls back, 'fast'
    # insists, 'reference' always takes the dict engine.
    ids_contiguous = sorted(graph.vertices()) == list(range(graph.num_vertices))
    use_fast = args.backend == "fast" or (args.backend == "auto" and ids_contiguous)
    if use_fast and not ids_contiguous:
        raise ValueError(
            "--backend fast requires contiguous vertex ids 0..n-1; "
            "use --backend reference (or relabel the graph)"
        )
    corrector = None
    if use_fast:
        state.validate(graph)  # same guarantee from_state gives the reference path
        corrector = FastCorrectionPropagator(
            graph, ArrayLabelState.from_label_state(state), args.seed
        )
        if not corrector.accepts(batch):
            if args.backend == "fast":
                raise ValueError(
                    "--backend fast cannot apply this batch: new vertex ids "
                    "must extend the contiguous range (use --backend reference)"
                )
            corrector = None  # auto: fall back to the reference engine
    if corrector is None:
        propagator = ReferencePropagator.from_state(graph, args.seed, state)
        corrector = CorrectionPropagator(propagator)
        use_fast = False
    corrector.batch_epoch = args.batch_epoch - 1
    report = corrector.apply_batch(batch)
    if use_fast:
        state = corrector.state.to_label_state()
    save_state(state, args.state)
    out.write(
        f"applied {batch.size} edits: {report.repicked} repicked, "
        f"{report.touched_labels} labels touched; "
        f"state saved to {args.state}\n"
    )
    if args.cover:
        result = extract_communities(graph, state.labels, step=args.tau_step)
        save_cover(result.cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
        _print_cover(result.cover, out)
    return 0


def _cmd_stats(args, out) -> int:
    graph = read_edge_list(args.graph)
    components = graph.connected_components()
    payload = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "average_degree": round(graph.average_degree(), 3),
        "max_degree": graph.max_degree(),
        "isolated_vertices": len(graph.isolated_vertices()),
        "connected_components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rSLPA overlapping community detection (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run rSLPA on a static edge list")
    detect.add_argument("graph", help="edge-list file")
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument("-T", "--iterations", type=int, default=200)
    detect.add_argument(
        "--backend",
        choices=("auto", "reference", "fast"),
        default="auto",
        help="propagation backend: 'fast' is the vectorised CSR substrate, "
        "'reference' the pure-Python propagator (bit-identical per seed)",
    )
    detect.add_argument("--tau-step", type=float, default=0.001)
    detect.add_argument("--state", help="save the label state here (JSON)")
    detect.add_argument("--cover", help="save the cover here (JSON)")
    detect.add_argument(
        "--distributed",
        type=int,
        default=0,
        metavar="N",
        help="fit on the simulated BSP cluster with N workers "
        "(0 = local fit); results are bit-identical either way",
    )
    detect.add_argument(
        "--dist-engine",
        choices=("auto", "reference", "array"),
        default="auto",
        help="distributed message plane: 'array' routes struct-of-arrays "
        "columns, 'reference' Python tuples; 'auto' prefers the array "
        "plane on CSR shards",
    )
    detect.add_argument(
        "--shard-backend",
        choices=("auto", "dict", "csr"),
        default="auto",
        help="worker shard adjacency storage for --distributed runs",
    )
    detect.set_defaults(func=_cmd_detect)

    update = sub.add_parser(
        "update", help="apply an edit batch to a saved state (Algorithm 2)"
    )
    update.add_argument("state", help="label-state JSON (updated in place)")
    update.add_argument("graph", help="edge list of the PRE-batch graph")
    update.add_argument("edits", help="edit file: '+ u v' / '- u v' lines")
    update.add_argument("--seed", type=int, default=0,
                        help="must match the seed used at detect time")
    update.add_argument(
        "--backend",
        choices=("auto", "reference", "fast"),
        default="auto",
        help="correction backend: 'fast' is the vectorised array corrector "
        "(contiguous ids only), 'reference' the pure-Python one; both make "
        "bit-identical repairs per seed",
    )
    update.add_argument("--batch-epoch", type=int, default=1,
                        help="1 for the first update after detect, then 2, ...")
    update.add_argument("--tau-step", type=float, default=0.001)
    update.add_argument("--cover", help="re-extract and save the cover here")
    update.set_defaults(func=_cmd_update)

    stats = sub.add_parser("stats", help="print normalised graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except (ValueError, OSError, AssertionError) as exc:
        # AssertionError: a loaded label state failed its invariant checks
        # (corrupt or mismatched file) — an input error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
