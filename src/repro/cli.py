"""Command-line interface: detect, update, serve, and inspect without code.

Four subcommands mirroring the library lifecycle::

    python -m repro.cli detect graph.txt --seed 7 -T 200 \
        --state state.json --cover cover.json
    python -m repro.cli update state.json graph.txt edits.txt \
        --seed 7 --cover cover.json
    python -m repro.cli serve graph.txt --edits edits.txt \
        --checkpoint-dir state/ --query 17 --query 23
    python -m repro.cli stats graph.txt

``graph.txt`` is a whitespace edge list (directions/duplicates/self-loops
normalised away, as in the paper's preprocessing); ``edits.txt`` uses the
same format prefixed with ``+``/``-`` per line::

    + 17 23
    - 4 9

The ``update`` subcommand loads a saved label state, applies the batch with
Correction Propagation, saves the state back, and (optionally) re-extracts
the communities — the paper's continuous-monitoring loop as a shell command.

The ``serve`` subcommand runs one session of the
:class:`~repro.service.CommunityService`: fit (or ``--recover`` from a
checkpoint directory), stream the edit file through the coalescing ingest
queue, answer ``--query`` membership lookups from the stable-id index, and
leave a checkpoint + WAL behind for the next session.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.core.detector import RSLPADetector
from repro.core.incremental import CorrectionPropagator
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import extract_communities
from repro.core.rslpa import ReferencePropagator
from repro.core.serialize import load_state, save_cover, save_state
from repro.graph.adjacency import Graph
from repro.graph.edits import EditBatch
from repro.graph.io import read_edge_list

__all__ = ["main", "build_parser", "parse_edit_file", "iter_edit_file"]


def iter_edit_file(path: str) -> List[Tuple[str, int, int]]:
    """Read a ``+/- u v`` edit file as an ordered list of single edits."""
    edits: List[Tuple[str, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected '+ u v' or '- u v', got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-integer vertex id") from exc
            edits.append((parts[0], u, v))
    return edits


def parse_edit_file(path: str) -> EditBatch:
    """Read a ``+/- u v`` edit file into a batch."""
    edits = iter_edit_file(path)
    return EditBatch.build(
        insertions=[(u, v) for op, u, v in edits if op == "+"],
        deletions=[(u, v) for op, u, v in edits if op == "-"],
    )


def _print_cover(cover, out) -> None:
    payload = {
        "num_communities": len(cover),
        "sizes": cover.sizes(),
        "overlapping_vertices": sorted(cover.overlapping_vertices()),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _cmd_detect(args, out) -> int:
    graph = read_edge_list(args.graph)
    # Both backends export a fully-recorded state (so later `update` runs
    # work either way) and are bit-identical per seed; "auto" takes the CSR
    # fast path whenever the ids are contiguous.
    detector = RSLPADetector(
        graph,
        seed=args.seed,
        iterations=args.iterations,
        backend=args.backend,
        tau_step=args.tau_step,
    )
    if args.distributed:
        # Same fitted state as a local fit (all engines are bit-identical
        # per seed), plus the run's communication accounting.
        detector.fit_distributed(
            num_workers=args.distributed,
            engine=args.dist_engine,
            shard_backend=args.shard_backend,
        )
        out.write(f"distributed fit: {detector.comm_stats.summary()}\n")
    else:
        detector.fit()
    cover = detector.communities()
    if args.state:
        save_state(detector.label_state, args.state)
        out.write(f"label state saved to {args.state}\n")
    if args.cover:
        save_cover(cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
    _print_cover(cover, out)
    return 0


def _cmd_update(args, out) -> int:
    graph = read_edge_list(args.graph)
    # Either representation may come back (JSON -> LabelState, npz ->
    # ArrayLabelState); the chosen backend decides what it runs on.
    state = load_state(args.state)
    is_array = isinstance(state, ArrayLabelState)
    batch = parse_edit_file(args.edits)
    # Backend selection mirrors `detect`: the vectorised corrector needs
    # contiguous ids (the array substrate's contract, for the graph AND for
    # any vertices the batch creates); 'auto' checks and falls back, 'fast'
    # insists, 'reference' always takes the dict engine.
    ids_contiguous = sorted(graph.vertices()) == list(range(graph.num_vertices))
    use_fast = args.backend == "fast" or (args.backend == "auto" and ids_contiguous)
    if use_fast and not ids_contiguous:
        raise ValueError(
            "--backend fast requires contiguous vertex ids 0..n-1; "
            "use --backend reference (or relabel the graph)"
        )
    corrector = None
    if use_fast:
        state.validate(graph)  # same guarantee from_state gives the reference path
        corrector = FastCorrectionPropagator(
            graph,
            state if is_array else ArrayLabelState.from_label_state(state),
            args.seed,
        )
        if not corrector.accepts(batch):
            if args.backend == "fast":
                raise ValueError(
                    "--backend fast cannot apply this batch: new vertex ids "
                    "must extend the contiguous range (use --backend reference)"
                )
            corrector = None  # auto: fall back to the reference engine
    if corrector is None:
        propagator = ReferencePropagator.from_state(
            graph, args.seed, state.to_label_state() if is_array else state
        )
        corrector = CorrectionPropagator(propagator)
        use_fast = False
    corrector.batch_epoch = args.batch_epoch - 1
    report = corrector.apply_batch(batch)
    # save_state converts as needed; the target's format follows its suffix.
    save_state(corrector.state, args.state)
    out.write(
        f"applied {batch.size} edits: {report.repicked} repicked, "
        f"{report.touched_labels} labels touched; "
        f"state saved to {args.state}\n"
    )
    if args.cover:
        sequences = (
            corrector.state.sequences_dict()
            if isinstance(corrector.state, ArrayLabelState)
            else corrector.state.labels
        )
        result = extract_communities(graph, sequences, step=args.tau_step)
        save_cover(result.cover, args.cover)
        out.write(f"cover saved to {args.cover}\n")
        _print_cover(result.cover, out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.service import CommunityService

    if args.recover:
        if not args.checkpoint_dir:
            raise ValueError("--recover requires --checkpoint-dir")
        service = CommunityService.recover(
            args.checkpoint_dir,
            backend=args.backend,
            batch_size=args.batch_size,
            staleness_batches=args.staleness,
            checkpoint_every=args.checkpoint_every,
            tau_step=args.tau_step,
        )
        out.write(
            f"recovered from {args.checkpoint_dir}: "
            f"{service.batches_applied} batches durable\n"
        )
    else:
        if not args.graph:
            raise ValueError("a graph file is required unless --recover is given")
        graph = read_edge_list(args.graph)
        service = CommunityService(
            graph,
            seed=args.seed,
            iterations=args.iterations,
            backend=args.backend,
            tau_step=args.tau_step,
            batch_size=args.batch_size,
            staleness_batches=args.staleness,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        service.start(num_workers=args.distributed)
    if args.edits:
        # The service ingest path proper: single edits in file order through
        # the coalescing queue, windows flushed as they fill.  Unlike
        # `update`, opposite edits of one edge cancel instead of conflicting.
        for op, u, v in iter_edit_file(args.edits):
            service.submit(op, u, v)
        service.flush()
    payload = {"stats": service.stats()}
    if args.query:
        memberships = {}
        for v in args.query:
            cids = service.communities_of(v)
            memberships[str(v)] = {
                "communities": list(cids),
                "sizes": [len(service.members(c)) for c in cids],
            }
        payload["memberships"] = memberships
    service.close()
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def _cmd_stats(args, out) -> int:
    graph = read_edge_list(args.graph)
    components = graph.connected_components()
    payload = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "average_degree": round(graph.average_degree(), 3),
        "max_degree": graph.max_degree(),
        "isolated_vertices": len(graph.isolated_vertices()),
        "connected_components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rSLPA overlapping community detection (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run rSLPA on a static edge list")
    detect.add_argument("graph", help="edge-list file")
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument("-T", "--iterations", type=int, default=200)
    detect.add_argument(
        "--backend",
        choices=("auto", "reference", "fast"),
        default="auto",
        help="propagation backend: 'fast' is the vectorised CSR substrate, "
        "'reference' the pure-Python propagator (bit-identical per seed)",
    )
    detect.add_argument("--tau-step", type=float, default=0.001)
    detect.add_argument("--state", help="save the label state here (JSON)")
    detect.add_argument("--cover", help="save the cover here (JSON)")
    detect.add_argument(
        "--distributed",
        type=int,
        default=0,
        metavar="N",
        help="fit on the simulated BSP cluster with N workers "
        "(0 = local fit); results are bit-identical either way",
    )
    detect.add_argument(
        "--dist-engine",
        choices=("auto", "reference", "array"),
        default="auto",
        help="distributed message plane: 'array' routes struct-of-arrays "
        "columns, 'reference' Python tuples; 'auto' prefers the array "
        "plane on CSR shards",
    )
    detect.add_argument(
        "--shard-backend",
        choices=("auto", "dict", "csr"),
        default="auto",
        help="worker shard adjacency storage for --distributed runs",
    )
    detect.set_defaults(func=_cmd_detect)

    update = sub.add_parser(
        "update", help="apply an edit batch to a saved state (Algorithm 2)"
    )
    update.add_argument("state", help="label-state JSON (updated in place)")
    update.add_argument("graph", help="edge list of the PRE-batch graph")
    update.add_argument("edits", help="edit file: '+ u v' / '- u v' lines")
    update.add_argument("--seed", type=int, default=0,
                        help="must match the seed used at detect time")
    update.add_argument(
        "--backend",
        choices=("auto", "reference", "fast"),
        default="auto",
        help="correction backend: 'fast' is the vectorised array corrector "
        "(contiguous ids only), 'reference' the pure-Python one; both make "
        "bit-identical repairs per seed",
    )
    update.add_argument("--batch-epoch", type=int, default=1,
                        help="1 for the first update after detect, then 2, ...")
    update.add_argument("--tau-step", type=float, default=0.001)
    update.add_argument("--cover", help="re-extract and save the cover here")
    update.set_defaults(func=_cmd_update)

    serve = sub.add_parser(
        "serve",
        help="run one community-service session (ingest + query + durability)",
    )
    serve.add_argument(
        "graph",
        nargs="?",
        help="edge-list file (omit with --recover; the checkpoint has the graph)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("-T", "--iterations", type=int, default=200)
    serve.add_argument(
        "--backend", choices=("auto", "reference", "fast"), default="auto"
    )
    serve.add_argument("--tau-step", type=float, default=0.001)
    serve.add_argument("--edits", help="edit file streamed through the ingest queue")
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="ingest micro-batch window (edits per flush)",
    )
    serve.add_argument(
        "--staleness",
        type=int,
        default=4,
        metavar="K",
        help="re-extract lazily once K batches landed since the last extraction",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="enable durability: npz checkpoints + write-ahead log here",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N applied batches (0 = only at start)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="restore from --checkpoint-dir (latest checkpoint + WAL replay) "
        "instead of fitting",
    )
    serve.add_argument(
        "--distributed",
        type=int,
        default=0,
        metavar="N",
        help="fit on the simulated BSP cluster with N workers (0 = local)",
    )
    serve.add_argument(
        "--query",
        type=int,
        action="append",
        default=[],
        metavar="V",
        help="report stable community ids of vertex V (repeatable)",
    )
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="print normalised graph statistics")
    stats.add_argument("graph", help="edge-list file")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except (ValueError, OSError, AssertionError) as exc:
        # AssertionError: a loaded label state failed its invariant checks
        # (corrupt or mismatched file) — an input error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
