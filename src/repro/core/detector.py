"""High-level rSLPA detector: fit / update / communities lifecycle.

This is the public face of the library.  Typical use::

    from repro import RSLPADetector

    detector = RSLPADetector(graph, seed=7, iterations=200)
    detector.fit()                      # Algorithm 1
    cover = detector.communities()      # Section III-B post-processing

    report = detector.update(batch)     # Algorithm 2 (Correction Propagation)
    cover = detector.communities()      # re-extract on the maintained state

Backend matrix (``backend=`` / legacy ``engine=``): the fast path now runs
the *whole* lifecycle on the array substrate — ``fit`` is the vectorised
:class:`~repro.core.fast.FastPropagator`, its ``to_array_state()`` export
hands the ``(T+1, n)`` matrices to the vectorised
:class:`~repro.core.incremental_fast.FastCorrectionPropagator`, and every
``update`` stays in numpy.  The reference path keeps the pure-Python
:class:`~repro.core.rslpa.ReferencePropagator` +
:class:`~repro.core.incremental.CorrectionPropagator` pair.  Both paths are
bit-identical per seed for fit *and* for every subsequent update; ``auto``
picks the fast path whenever the vertex ids are contiguous ``0..n-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.core.communities import Cover
from repro.core.fast import FastPropagator
from repro.core.incremental import CorrectionPropagator, UpdateReport
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels import LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import PostprocessResult, extract_communities
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch
from repro.utils.validation import check_positive, check_type

__all__ = ["RSLPADetector", "detect_communities"]

#: Paper default for rSLPA (Section V-A3: stable for T >= 200).
DEFAULT_ITERATIONS = 200


class RSLPADetector:
    """Overlapping community detection with incremental maintenance.

    Parameters
    ----------
    graph:
        The graph to monitor.  The detector takes ownership of a private
        copy, so the caller's graph is never mutated by updates.
    seed:
        Randomness seed (counter-based; identical results per seed).
    iterations:
        The propagation horizon T (paper default 200 for rSLPA).
    backend:
        ``"auto"`` (CSR-vectorised when ids are contiguous), ``"fast"``
        (force the CSR substrate) or ``"reference"`` (pure-Python
        propagator).  The choice covers the whole lifecycle — static fit
        *and* incremental ``update`` — and both backends are bit-identical
        per seed.
    engine:
        Deprecated alias of ``backend`` (kept for callers of the original
        API); when both are given they must agree.
    tau_step:
        Grid step of the τ1 entropy sweep (paper suggests 0.001).
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        iterations: int = DEFAULT_ITERATIONS,
        engine: Optional[str] = None,
        tau_step: float = 0.001,
        backend: Optional[str] = None,
    ):
        check_type(seed, int, "seed")
        check_type(iterations, int, "iterations")
        check_positive(iterations, "iterations")
        check_positive(tau_step, "tau_step")
        if engine is not None and backend is not None and engine != backend:
            raise ValueError(
                f"conflicting backend selection: engine={engine!r}, "
                f"backend={backend!r}"
            )
        resolved = backend if backend is not None else (engine or "auto")
        if resolved not in ("auto", "fast", "reference"):
            raise ValueError(
                "backend (or its legacy alias engine) must be 'auto', 'fast' "
                f"or 'reference', got {resolved!r}"
            )
        self.graph = graph.copy()
        self.seed = seed
        self.iterations = iterations
        self.backend = resolved
        self.engine = resolved  # legacy name
        self.tau_step = tau_step
        self._corrector: Optional[
            Union[CorrectionPropagator, FastCorrectionPropagator]
        ] = None
        self._postprocess_cache: Optional[PostprocessResult] = None
        self._label_state_cache: Optional[LabelState] = None
        #: CommStats of the last fit_distributed() run (None for local fits).
        self.comm_stats = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._corrector is not None

    def _ids_contiguous(self) -> bool:
        n = self.graph.num_vertices
        return sorted(self.graph.vertices()) == list(range(n))

    def _resolve_use_fast(self) -> bool:
        """Whether this fit takes the array substrate (``fast``/eligible
        ``auto``); a forced ``fast`` on non-contiguous ids is an error."""
        contiguous = self._ids_contiguous()
        if self.backend == "fast" and not contiguous:
            raise ValueError(
                "backend='fast' requires contiguous vertex ids 0..n-1; "
                "use repro.graph.relabel_to_integers or backend='reference'"
            )
        return self.backend == "fast" or (
            self.backend == "auto" and contiguous
        )

    def fit(self) -> "RSLPADetector":
        """Run Algorithm 1 from scratch on the current graph."""
        use_fast = self._resolve_use_fast()
        if use_fast and self.graph.num_vertices > 0:
            # The whole lifecycle stays on the array substrate: one CSR
            # snapshot feeds the vectorised propagator, whose array export
            # feeds the vectorised corrector — no dict round trip, and
            # updates no longer downgrade to the reference corrector.
            fast = FastPropagator(CSRGraph.from_graph(self.graph), seed=self.seed)
            fast.propagate(self.iterations)
            self._corrector = FastCorrectionPropagator.from_fast_propagator(
                fast, self.graph
            )
        else:
            propagator = ReferencePropagator(self.graph, seed=self.seed)
            propagator.propagate(self.iterations)
            self._corrector = CorrectionPropagator(propagator)
        self.comm_stats = None  # a local fit has no communication counters
        self._postprocess_cache = None
        self._label_state_cache = None
        return self

    def fit_distributed(
        self,
        num_workers: int = 4,
        engine: str = "auto",
        shard_backend: str = "auto",
        partitioner=None,
    ) -> "RSLPADetector":
        """Run Algorithm 1 on the simulated BSP cluster instead of locally.

        Produces exactly the state :meth:`fit` produces (all engines are
        bit-identical per seed) and installs the same corrector the
        configured ``backend`` would, so the ``update``/``communities``
        lifecycle continues unchanged; the run's communication counters
        are kept in :attr:`comm_stats`.  ``engine`` selects the message
        plane (``reference`` tuples / ``array`` columns; ``auto`` prefers
        the array plane on CSR shards) and ``shard_backend`` the worker
        adjacency storage (``dict``/``csr``/``auto``) — see
        :func:`repro.distributed.run_distributed_rslpa`.
        """
        from repro.distributed.cluster import run_distributed_rslpa

        use_fast = self._resolve_use_fast()
        state, stats = run_distributed_rslpa(
            self.graph,  # read-only for the wrapper: shards snapshot/copy
            seed=self.seed,
            iterations=self.iterations,
            num_workers=num_workers,
            partitioner=partitioner,
            shard_backend=shard_backend,
            engine=engine,
            state_format="array" if use_fast else "dict",
        )
        if use_fast:
            self._corrector = FastCorrectionPropagator(self.graph, state, self.seed)
        else:
            propagator = ReferencePropagator.from_state(
                self.graph, self.seed, state
            )
            self._corrector = CorrectionPropagator(propagator)
        self.comm_stats = stats
        self._postprocess_cache = None
        self._label_state_cache = None
        return self

    @classmethod
    def from_state(
        cls,
        graph: Graph,
        state: Union[LabelState, ArrayLabelState],
        seed: int,
        backend: str = "auto",
        tau_step: float = 0.001,
        batch_epoch: int = 0,
    ) -> "RSLPADetector":
        """Adopt a previously fitted label state without re-propagating.

        This is the restart path: a state loaded from disk (either
        representation — it is converted to whatever the chosen ``backend``
        runs on) comes back as a fitted detector whose ``update`` /
        ``communities`` lifecycle continues exactly where it left off.
        ``seed`` and ``batch_epoch`` must match the original run for the
        correction lotteries to keep drawing the same numbers; ``state`` is
        adopted (mutated by future updates), not copied.
        """
        check_type(batch_epoch, int, "batch_epoch")
        detector = cls(
            graph,
            seed=seed,
            iterations=state.num_iterations,
            backend=backend,
            tau_step=tau_step,
        )
        if detector._resolve_use_fast():
            astate = (
                state
                if isinstance(state, ArrayLabelState)
                else ArrayLabelState.from_label_state(state)
            )
            detector._corrector = FastCorrectionPropagator(
                detector.graph, astate, seed
            )
        else:
            lstate = (
                state.to_label_state()
                if isinstance(state, ArrayLabelState)
                else state
            )
            propagator = ReferencePropagator.from_state(detector.graph, seed, lstate)
            detector._corrector = CorrectionPropagator(propagator)
        detector._corrector.batch_epoch = batch_epoch
        return detector

    def _require_fitted(self) -> None:
        if self._corrector is None:
            raise RuntimeError("detector is not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def _downgrade_to_reference(self) -> None:
        """Swap the array corrector for the reference one, state preserved.

        Used by ``auto`` mode when a batch steps outside the array
        substrate's contiguous-id contract; the batch epoch carries over so
        the downgraded detector keeps making bit-identical decisions.
        """
        old = self._corrector
        propagator = ReferencePropagator.from_state(
            self.graph, self.seed, old.state.to_label_state()
        )
        self._corrector = CorrectionPropagator(propagator)
        self._corrector.batch_epoch = old.batch_epoch

    def update(self, batch: EditBatch) -> UpdateReport:
        """Incrementally apply an edit batch (Algorithm 2).

        Runs on whichever corrector ``fit`` installed — the vectorised
        array engine on the fast path, the event-driven reference engine
        otherwise; both make bit-identical repairs.  With ``backend="auto"``
        a batch that breaks the array substrate's contiguous-id contract
        (new vertices with gap ids) downgrades the detector to the
        reference corrector instead of failing; ``backend="fast"`` keeps
        the hard error.
        """
        self._require_fitted()
        check_type(batch, EditBatch, "batch")
        if (
            self.backend == "auto"
            and isinstance(self._corrector, FastCorrectionPropagator)
            and not self._corrector.accepts(batch)
        ):
            self._downgrade_to_reference()
        report = self._corrector.apply_batch(batch)
        self._postprocess_cache = None
        self._label_state_cache = None
        return report

    def update_many(self, batches: Iterable[EditBatch]) -> List[UpdateReport]:
        """Apply several batches in order."""
        return [self.update(batch) for batch in batches]

    def remove_vertex(self, vertex: int) -> UpdateReport:
        """Delete a vertex and all incident edges, maintaining the state."""
        self._require_fitted()
        report = self._corrector.remove_vertex(vertex)
        self._postprocess_cache = None
        self._label_state_cache = None
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def array_state(self) -> Optional[ArrayLabelState]:
        """The live array-backed state (fast path only; ``None`` otherwise)."""
        self._require_fitted()
        state = self._corrector.state
        return state if isinstance(state, ArrayLabelState) else None

    @property
    def label_state(self) -> LabelState:
        """The maintained label sequences (read-only by convention).

        On the fast path this is a dict-backed *export* of the live array
        state (cached until the next update); mutate nothing through it.
        """
        self._require_fitted()
        state = self._corrector.state
        if isinstance(state, ArrayLabelState):
            if self._label_state_cache is None:
                self._label_state_cache = state.to_label_state()
            return self._label_state_cache
        return state

    def postprocess(self) -> PostprocessResult:
        """Run (or reuse) the Section III-B extraction on the current state."""
        self._require_fitted()
        if self._postprocess_cache is None:
            state = self._corrector.state
            sequences = (
                state.sequences_dict()
                if isinstance(state, ArrayLabelState)
                else state.labels
            )
            self._postprocess_cache = extract_communities(
                self.graph, sequences, step=self.tau_step
            )
        return self._postprocess_cache

    def communities(self) -> Cover:
        """The current overlapping communities."""
        return self.postprocess().cover

    def __repr__(self) -> str:
        status = f"T={self.iterations}" if self.is_fitted else "unfitted"
        return f"RSLPADetector(seed={self.seed}, {status}, graph={self.graph!r})"


def detect_communities(
    graph: Graph,
    seed: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    tau_step: float = 0.001,
    backend: str = "auto",
) -> Cover:
    """One-shot static detection: fit rSLPA and extract the cover.

    >>> from repro.graph import ring_of_cliques
    >>> cover = detect_communities(ring_of_cliques(4, 5), seed=1, iterations=60)
    >>> len(cover) >= 2
    True
    """
    detector = RSLPADetector(
        graph, seed=seed, iterations=iterations, tau_step=tau_step, backend=backend
    )
    return detector.fit().communities()
