"""High-level rSLPA detector: fit / update / communities lifecycle.

This is the public face of the library.  Typical use::

    from repro import RSLPADetector

    detector = RSLPADetector(graph, seed=7, iterations=200)
    detector.fit()                      # Algorithm 1
    cover = detector.communities()      # Section III-B post-processing

    report = detector.update(batch)     # Algorithm 2 (Correction Propagation)
    cover = detector.communities()      # re-extract on the maintained state

Execution selection goes through the unified plan layer
(:mod:`repro.api`): the detector holds an
:class:`~repro.api.config.AlgoConfig` + :class:`~repro.api.config.ExecutionConfig`
pair (individual keywords are thin shims that construct them), and every
fit resolves one :class:`~repro.api.plan.RunPlan` via
:func:`repro.api.plan.resolve_plan` — ``detector.plan().explain()`` says
which substrate a fit would take and why.  The fast plan runs the whole
lifecycle on the array substrate (:class:`~repro.core.fast.FastPropagator`
→ :class:`~repro.core.incremental_fast.FastCorrectionPropagator`); the
reference plan keeps the pure-Python
:class:`~repro.core.rslpa.ReferencePropagator` +
:class:`~repro.core.incremental.CorrectionPropagator` pair.  Both are
bit-identical per seed for fit *and* every subsequent update.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Iterable, List, Optional, Union

from repro.api.config import DEFAULT_ITERATIONS, AlgoConfig, ExecutionConfig
from repro.api.plan import GraphCaps, PlanDecision, RunPlan, resolve_plan
from repro.core.communities import Cover
from repro.core.fast import FastPropagator
from repro.core.incremental import CorrectionPropagator, UpdateReport
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels import LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import PostprocessResult, extract_communities
from repro.core.rslpa import ReferencePropagator
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edits import EditBatch
from repro.utils.validation import check_type

__all__ = ["RSLPADetector", "detect_communities", "DEFAULT_ITERATIONS"]


def _shim_configs(
    seed, iterations, tau_step, backend, engine, algo, execution
) -> tuple:
    """Map the keyword shims onto (AlgoConfig, ExecutionConfig).

    ``engine=`` is the deprecated pre-PR-5 alias of ``backend=`` (it
    predates the cluster wrappers using ``engine=`` for the *message
    plane*, a different axis); it keeps working but warns.  Keywords and
    config objects are exclusive per axis so a call can never silently
    contradict itself.
    """
    if engine is not None:
        warnings.warn(
            "engine= is a deprecated alias of backend= on RSLPADetector "
            "(the distributed message plane also uses the name 'engine'); "
            "use backend= or ExecutionConfig(backend=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        if backend is not None and engine != backend:
            raise ValueError(
                f"conflicting backend selection: engine={engine!r}, "
                f"backend={backend!r}"
            )
    if execution is not None:
        if backend is not None or engine is not None:
            raise ValueError(
                "pass the backend either via execution=/ExecutionConfig or "
                "via the backend= keyword, not both"
            )
    else:
        resolved = backend if backend is not None else (engine or "auto")
        if resolved not in ("auto", "fast", "reference"):
            raise ValueError(
                "backend (or its legacy alias engine) must be 'auto', 'fast' "
                f"or 'reference', got {resolved!r}"
            )
        execution = ExecutionConfig(backend=resolved)
    if algo is not None:
        if (seed, iterations, tau_step) != (0, DEFAULT_ITERATIONS, 0.001):
            raise ValueError(
                "pass the algorithm parameters either via algo=/AlgoConfig "
                "or via the seed=/iterations=/tau_step= keywords, not both"
            )
    else:
        algo = AlgoConfig(seed=seed, iterations=iterations, tau_step=tau_step)
    return algo, execution


class RSLPADetector:
    """Overlapping community detection with incremental maintenance.

    Parameters
    ----------
    graph:
        The graph to monitor.  The detector takes ownership of a private
        copy, so the caller's graph is never mutated by updates.
    seed:
        Randomness seed (counter-based; identical results per seed).
    iterations:
        The propagation horizon T (paper default 200 for rSLPA).
    backend:
        ``"auto"`` (CSR-vectorised when ids are contiguous), ``"fast"``
        (force the CSR substrate) or ``"reference"`` (pure-Python
        propagator).  The choice covers the whole lifecycle — static fit
        *and* incremental ``update`` — and both backends are bit-identical
        per seed.
    engine:
        Deprecated alias of ``backend`` (emits ``DeprecationWarning``);
        when both are given they must agree.
    tau_step:
        Grid step of the τ1 entropy sweep (paper suggests 0.001).
    algo / execution:
        The config-object forms of the same parameters
        (:class:`~repro.api.config.AlgoConfig`,
        :class:`~repro.api.config.ExecutionConfig`); exclusive with the
        corresponding keywords.
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        iterations: int = DEFAULT_ITERATIONS,
        engine: Optional[str] = None,
        tau_step: float = 0.001,
        backend: Optional[str] = None,
        *,
        algo: Optional[AlgoConfig] = None,
        execution: Optional[ExecutionConfig] = None,
    ):
        self.algo, self.execution = _shim_configs(
            seed, iterations, tau_step, backend, engine, algo, execution
        )
        self.graph = graph.copy()
        self.seed = self.algo.seed
        self.iterations = self.algo.iterations
        self.tau_step = self.algo.tau_step
        self.backend = self.execution.backend
        self.engine = self.execution.backend  # legacy name, same value
        self._corrector: Optional[
            Union[CorrectionPropagator, FastCorrectionPropagator]
        ] = None
        self._postprocess_cache: Optional[PostprocessResult] = None
        self._label_state_cache: Optional[LabelState] = None
        #: CommStats of the last fit_distributed() run (None for local fits).
        self.comm_stats = None
        #: The RunPlan of the last fit (None before the first fit).
        self.last_plan: Optional[RunPlan] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._corrector is not None

    def plan(self, execution: Optional[ExecutionConfig] = None) -> RunPlan:
        """Resolve the execution plan against the current graph.

        All negotiation lives in :func:`repro.api.plan.resolve_plan`; this
        is the detector's view of it (``detector.plan().explain()``).
        """
        return resolve_plan(GraphCaps.of(self.graph), execution or self.execution)

    def _resolve_use_fast(self) -> bool:
        return self.plan().use_fast

    def _install_corrector(self, state, use_fast: bool) -> None:
        """Install the corrector the plan's backend runs on, converting the
        state representation as needed (shared by the distributed-fit and
        restart paths)."""
        if use_fast:
            astate = (
                state
                if isinstance(state, ArrayLabelState)
                else ArrayLabelState.from_label_state(state)
            )
            self._corrector = FastCorrectionPropagator(self.graph, astate, self.seed)
        else:
            lstate = (
                state.to_label_state()
                if isinstance(state, ArrayLabelState)
                else state
            )
            propagator = ReferencePropagator.from_state(
                self.graph, self.seed, lstate
            )
            self._corrector = CorrectionPropagator(propagator)

    def fit(self) -> "RSLPADetector":
        """Run Algorithm 1 from scratch on the current graph."""
        # A local fit, whatever the config's worker count says: the recorded
        # plan must describe what actually ran.
        plan = self.plan(replace(self.execution, num_workers=0))
        if plan.use_fast and self.graph.num_vertices == 0:
            plan = replace(
                plan,
                backend="reference",
                decisions=plan.decisions
                + (
                    PlanDecision(
                        field="backend",
                        requested=plan.requested.backend,
                        value="reference",
                        reason="empty graph: nothing for the array "
                        "substrate to vectorise",
                    ),
                ),
            )
        if plan.use_fast:
            # The whole lifecycle stays on the array substrate: one CSR
            # snapshot feeds the vectorised propagator, whose array export
            # feeds the vectorised corrector — no dict round trip, and
            # updates no longer downgrade to the reference corrector.
            fast = FastPropagator(CSRGraph.from_graph(self.graph), seed=self.seed)
            fast.propagate(self.iterations)
            self._corrector = FastCorrectionPropagator.from_fast_propagator(
                fast, self.graph
            )
        else:
            propagator = ReferencePropagator(self.graph, seed=self.seed)
            propagator.propagate(self.iterations)
            self._corrector = CorrectionPropagator(propagator)
        self.comm_stats = None  # a local fit has no communication counters
        self.last_plan = plan
        self._postprocess_cache = None
        self._label_state_cache = None
        return self

    def fit_distributed(
        self,
        num_workers: Optional[int] = None,
        engine: Optional[str] = None,
        shard_backend: Optional[str] = None,
        partitioner=None,
    ) -> "RSLPADetector":
        """Run Algorithm 1 on the simulated BSP cluster instead of locally.

        Produces exactly the state :meth:`fit` produces (all engines are
        bit-identical per seed) and installs the same corrector the
        resolved plan's ``backend`` would, so the ``update``/
        ``communities`` lifecycle continues unchanged; the run's
        communication counters are kept in :attr:`comm_stats`.  Keywords
        override the detector's :class:`ExecutionConfig` per call:
        ``engine`` selects the message plane, ``shard_backend`` the
        worker adjacency storage — see
        :func:`repro.distributed.run_distributed_rslpa`; defaults come
        from the config (4 workers when the config is local).
        """
        from repro.distributed.cluster import run_distributed_rslpa

        cfg = self.execution
        run_cfg = replace(
            cfg,
            # Always distributed here: None or 0 falls back to the config's
            # worker count, then to the wrapper default of 4, so the
            # recorded plan and the cluster run can never disagree.
            num_workers=num_workers or cfg.num_workers or 4,
            engine=engine if engine is not None else cfg.engine,
            shard_backend=(
                shard_backend if shard_backend is not None else cfg.shard_backend
            ),
            partitioner=partitioner if partitioner is not None else cfg.partitioner,
        )
        plan = self.plan(run_cfg)
        state, stats = run_distributed_rslpa(
            self.graph,  # read-only for the wrapper: shards snapshot/copy
            seed=self.seed,
            iterations=self.iterations,
            config=run_cfg,
        )
        self._install_corrector(state, plan.use_fast)
        self.comm_stats = stats
        self.last_plan = plan
        self._postprocess_cache = None
        self._label_state_cache = None
        return self

    @classmethod
    def from_state(
        cls,
        graph: Graph,
        state: Union[LabelState, ArrayLabelState],
        seed: int,
        backend: str = "auto",
        tau_step: float = 0.001,
        batch_epoch: int = 0,
    ) -> "RSLPADetector":
        """Adopt a previously fitted label state without re-propagating.

        This is the restart path: a state loaded from disk (either
        representation — it is converted to whatever the chosen ``backend``
        runs on) comes back as a fitted detector whose ``update`` /
        ``communities`` lifecycle continues exactly where it left off.
        ``seed`` and ``batch_epoch`` must match the original run for the
        correction lotteries to keep drawing the same numbers; ``state`` is
        adopted (mutated by future updates), not copied.
        """
        check_type(batch_epoch, int, "batch_epoch")
        detector = cls(
            graph,
            seed=seed,
            iterations=state.num_iterations,
            backend=backend,
            tau_step=tau_step,
        )
        plan = detector.plan()
        detector._install_corrector(state, plan.use_fast)
        detector._corrector.batch_epoch = batch_epoch
        detector.last_plan = plan
        return detector

    def _require_fitted(self) -> None:
        if self._corrector is None:
            raise RuntimeError("detector is not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def _downgrade_to_reference(self) -> None:
        """Swap the array corrector for the reference one, state preserved.

        Used by ``auto`` mode when a batch steps outside the array
        substrate's contiguous-id contract; the batch epoch carries over so
        the downgraded detector keeps making bit-identical decisions.
        """
        old = self._corrector
        propagator = ReferencePropagator.from_state(
            self.graph, self.seed, old.state.to_label_state()
        )
        self._corrector = CorrectionPropagator(propagator)
        self._corrector.batch_epoch = old.batch_epoch
        if self.last_plan is not None:
            # Keep the plan provenance honest about the live substrate.
            self.last_plan = replace(
                self.last_plan,
                backend="reference",
                decisions=self.last_plan.decisions
                + (
                    PlanDecision(
                        field="backend",
                        requested="auto",
                        value="reference",
                        reason="an update batch stepped outside the "
                        "contiguous-id contract; downgraded mid-lifecycle",
                    ),
                ),
            )

    def update(self, batch: EditBatch) -> UpdateReport:
        """Incrementally apply an edit batch (Algorithm 2).

        Runs on whichever corrector ``fit`` installed — the vectorised
        array engine on the fast path, the event-driven reference engine
        otherwise; both make bit-identical repairs.  With ``backend="auto"``
        a batch that breaks the array substrate's contiguous-id contract
        (new vertices with gap ids) downgrades the detector to the
        reference corrector instead of failing; ``backend="fast"`` keeps
        the hard error.
        """
        self._require_fitted()
        check_type(batch, EditBatch, "batch")
        if (
            self.backend == "auto"
            and isinstance(self._corrector, FastCorrectionPropagator)
            and not self._corrector.accepts(batch)
        ):
            self._downgrade_to_reference()
        report = self._corrector.apply_batch(batch)
        self._postprocess_cache = None
        self._label_state_cache = None
        return report

    def update_many(self, batches: Iterable[EditBatch]) -> List[UpdateReport]:
        """Apply several batches in order."""
        return [self.update(batch) for batch in batches]

    def remove_vertex(self, vertex: int) -> UpdateReport:
        """Delete a vertex and all incident edges, maintaining the state."""
        self._require_fitted()
        report = self._corrector.remove_vertex(vertex)
        self._postprocess_cache = None
        self._label_state_cache = None
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def state(self) -> Union[LabelState, ArrayLabelState]:
        """The live label state, in whichever representation the plan runs on."""
        self._require_fitted()
        return self._corrector.state

    @property
    def array_state(self) -> Optional[ArrayLabelState]:
        """The live array-backed state (fast path only; ``None`` otherwise)."""
        self._require_fitted()
        state = self._corrector.state
        return state if isinstance(state, ArrayLabelState) else None

    @property
    def label_state(self) -> LabelState:
        """The maintained label sequences (read-only by convention).

        On the fast path this is a dict-backed *export* of the live array
        state (cached until the next update); mutate nothing through it.
        """
        self._require_fitted()
        state = self._corrector.state
        if isinstance(state, ArrayLabelState):
            if self._label_state_cache is None:
                self._label_state_cache = state.to_label_state()
            return self._label_state_cache
        return state

    def postprocess(self) -> PostprocessResult:
        """Run (or reuse) the Section III-B extraction on the current state."""
        self._require_fitted()
        if self._postprocess_cache is None:
            state = self._corrector.state
            sequences = (
                state.sequences_dict()
                if isinstance(state, ArrayLabelState)
                else state.labels
            )
            self._postprocess_cache = extract_communities(
                self.graph, sequences, step=self.tau_step
            )
        return self._postprocess_cache

    def communities(self) -> Cover:
        """The current overlapping communities."""
        return self.postprocess().cover

    def __repr__(self) -> str:
        status = f"T={self.iterations}" if self.is_fitted else "unfitted"
        return f"RSLPADetector(seed={self.seed}, {status}, graph={self.graph!r})"


def detect_communities(
    graph: Graph,
    seed: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    tau_step: float = 0.001,
    backend: str = "auto",
) -> Cover:
    """One-shot static detection: fit rSLPA and extract the cover.

    >>> from repro.graph import ring_of_cliques
    >>> cover = detect_communities(ring_of_cliques(4, 5), seed=1, iterations=60)
    >>> len(cover) >= 2
    True
    """
    detector = RSLPADetector(
        graph, seed=seed, iterations=iterations, tau_step=tau_step, backend=backend
    )
    return detector.fit().communities()
