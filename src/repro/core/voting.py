"""Exact analysis of the SLPA voting process vs rSLPA uniform picking.

Section III-A motivates rSLPA by contrasting two ways a listener can choose
among received labels:

* **plurality voting** (SLPA): each neighbour uniformly speaks one label
  from its sequence; the listener takes the most frequent received label,
  ties broken uniformly.  The win distribution is discontinuous in the
  voters' label populations (Example 1 / Figure 2).
* **uniform picking** (rSLPA): the listener picks uniformly from the
  received multiset — equivalently from the union of the neighbours'
  sequences (Theorem 2), equivalently via one uniform (src, pos) draw
  (Theorem 3).

This module computes both distributions *exactly* (enumerating speaker
choices), which powers the Figure 2/3 reproduction bench and the numerical
verification of Theorems 1-3 in the test suite.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "plurality_win_distribution",
    "uniform_pick_distribution",
    "uniform_pick_from_multiset",
    "max_win_probability",
    "distribution_levels",
]

Distribution = Dict[int, Fraction]


def _normalise(sequences: Sequence[Sequence[int]]) -> List[Tuple[int, ...]]:
    seqs = [tuple(seq) for seq in sequences]
    if any(len(seq) == 0 for seq in seqs):
        raise ValueError("every voter sequence must be non-empty")
    return seqs


def plurality_win_distribution(
    sequences: Sequence[Sequence[int]],
) -> Distribution:
    """Exact distribution of the plurality-vote winner (SLPA selection).

    Each voter ``i`` contributes one label drawn uniformly from its sequence;
    the most frequent label wins, with uniform tie-breaking.  Exact over all
    ``prod(len(seq))`` speaker outcomes — intended for the small instances of
    Figures 2-3, not for production use.

    >>> dist = plurality_win_distribution([(1, 2), (1, 2), (1, 1)])
    >>> dist[1] > dist[2]
    True
    """
    seqs = _normalise(sequences)
    total_outcomes = 1
    for seq in seqs:
        total_outcomes *= len(seq)
    result: Dict[int, Fraction] = {}
    weight = Fraction(1, total_outcomes)
    for outcome in product(*seqs):
        counts = Counter(outcome)
        best = max(counts.values())
        winners = [label for label, count in counts.items() if count == best]
        share = weight / len(winners)
        for label in winners:
            result[label] = result.get(label, Fraction(0)) + share
    return result


def uniform_pick_from_multiset(multiset: Iterable[int]) -> Distribution:
    """Distribution of a uniform pick from a label multiset ``M_i``."""
    counts = Counter(multiset)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("multiset must be non-empty")
    return {label: Fraction(count, total) for label, count in counts.items()}


def uniform_pick_distribution(sequences: Sequence[Sequence[int]]) -> Distribution:
    """Distribution of the rSLPA uniform-picking result (Theorem 2).

    Picking uniformly from the received multiset equals picking uniformly
    from the *union* of the voters' sequences when all sequences share one
    length; for ragged sequences each voter still contributes total mass
    ``1/n`` spread over its own labels, which this computes directly.
    """
    seqs = _normalise(sequences)
    n = len(seqs)
    result: Dict[int, Fraction] = {}
    for seq in seqs:
        m = len(seq)
        for label, count in Counter(seq).items():
            result[label] = result.get(label, Fraction(0)) + Fraction(count, n * m)
    return result


def max_win_probability(distribution: Distribution) -> Fraction:
    """The largest single-label win probability (Theorem 1's quantity)."""
    if not distribution:
        raise ValueError("empty distribution")
    return max(distribution.values())


def distribution_levels(distribution: Distribution) -> int:
    """Number of distinct non-zero probability levels.

    Section III-A observes that plurality voting yields a *two-level*
    distribution (winners share one level, all else zero) whereas uniform
    picking is proportional to population and can have many levels — the
    "smoothness" rSLPA exploits.
    """
    return len({p for p in distribution.values() if p > 0})
