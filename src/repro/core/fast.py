"""rSLPA randomized label propagation — vectorised numpy engine.

Produces label states **bit-identical** to
:class:`repro.core.rslpa.ReferencePropagator` for the same seed (the test
suite asserts this), because both engines derive every pick from the same
counter-based slot hash over the same sorted adjacency.

The engine requires contiguous vertex ids ``0..n-1`` (what every generator
in this library emits); :func:`repro.graph.io.relabel_to_integers` maps
anything else.  It keeps the full ``(T+1, n)`` label/provenance matrices and
can export a fully-recorded :class:`LabelState` so the incremental algorithm
can take over after a fast static run.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.labels import NO_SOURCE, LabelState
from repro.core.randomness import (
    draw_position_array,
    draw_src_index_array,
    slot_hash_array,
)
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, build_csr_arrays
from repro.utils.validation import check_non_negative, check_type

__all__ = ["FastPropagator", "graph_to_csr"]


def graph_to_csr(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted-adjacency CSR of a graph with contiguous ids ``0..n-1``.

    Kept as a compatibility alias; the single builder lives in
    :func:`repro.graph.csr.build_csr_arrays`.
    """
    return build_csr_arrays(graph)


class FastPropagator:
    """Vectorised Algorithm 1 over a static graph snapshot.

    Accepts either a mutable :class:`Graph` (snapshotted to a
    :class:`CSRGraph` at construction) or a ready-made :class:`CSRGraph`.
    Rebuild (or export to the reference engine) after graph mutations.
    """

    def __init__(self, graph: Union[Graph, CSRGraph], seed: int = 0):
        check_type(seed, int, "seed")
        self.graph = graph
        self.seed = seed
        self.csr = CSRGraph.coerce(graph)
        self.indptr, self.indices = self.csr.indptr, self.csr.indices
        self.n = self.csr.num_vertices
        self.degrees = np.diff(self.indptr)
        self._vids = np.arange(self.n, dtype=np.int64)
        init = self._vids.copy()
        # Row t of each matrix is iteration t.
        self.labels = init[np.newaxis, :].copy()
        self.srcs = np.full((1, self.n), NO_SOURCE, dtype=np.int64)
        self.poss = np.full((1, self.n), NO_SOURCE, dtype=np.int64)

    @property
    def num_iterations(self) -> int:
        return self.labels.shape[0] - 1

    def propagate(self, iterations: int) -> np.ndarray:
        """Run ``iterations`` supersteps; returns the label matrix view."""
        check_type(iterations, int, "iterations")
        check_non_negative(iterations, "iterations")
        if iterations == 0:
            return self.labels
        start = self.num_iterations + 1
        stop = start + iterations
        n = self.n
        grown_labels = np.empty((stop, n), dtype=np.int64)
        grown_labels[: self.labels.shape[0]] = self.labels
        grown_srcs = np.empty((stop, n), dtype=np.int64)
        grown_srcs[: self.srcs.shape[0]] = self.srcs
        grown_poss = np.empty((stop, n), dtype=np.int64)
        grown_poss[: self.poss.shape[0]] = self.poss
        self.labels, self.srcs, self.poss = grown_labels, grown_srcs, grown_poss

        zero_degree = self.degrees == 0
        any_zero = bool(zero_degree.any())
        for t in range(start, stop):
            h = slot_hash_array(self.seed, self._vids, t, 0)
            src_idx = draw_src_index_array(h, self.degrees)
            pos = draw_position_array(h, t)
            if self.indices.size:
                # Degree-0 vertices get a clamped placeholder gather index;
                # their results are overwritten by the fallback below.
                gather = np.minimum(self.indptr[:-1] + src_idx, self.indices.size - 1)
                src = self.indices[gather]
                picked = self.labels[pos, src]
            else:
                src = np.full(n, NO_SOURCE, dtype=np.int64)
                picked = self.labels[0].copy()
            if any_zero:
                picked = np.where(zero_degree, self.labels[0], picked)
                src = np.where(zero_degree, NO_SOURCE, src)
                pos = np.where(zero_degree, NO_SOURCE, pos)
            self.labels[t] = picked
            self.srcs[t] = src
            self.poss[t] = pos
        return self.labels

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def sequences(self) -> np.ndarray:
        """The ``(T+1, n)`` label matrix (column v = sequence of vertex v)."""
        return self.labels

    def to_array_state(self):
        """Export an :class:`~repro.core.labels_array.ArrayLabelState`.

        The vectorised sibling of :meth:`to_label_state`: the label and
        provenance matrices are adopted as-is (copied), and the reverse
        records are built by one argsort over source-slot keys instead of
        the per-slot Python double loop — so a fast static run hands over
        to :class:`~repro.core.incremental_fast.FastCorrectionPropagator`
        without ever leaving the array substrate.
        """
        from repro.core.labels_array import ArrayLabelState

        return ArrayLabelState.from_matrices(
            self.labels.copy(), self.srcs.copy(), self.poss.copy()
        )

    def to_label_state(self) -> LabelState:
        """Materialise a fully-recorded :class:`LabelState`.

        Builds provenance and reverse records in one pass, so a fast static
        run can hand over to the incremental Correction Propagation.  For
        the array-substrate hand-off (no dict round trip) use
        :meth:`to_array_state`, which is an order of magnitude faster.
        """
        state = LabelState()
        t_max = self.num_iterations
        labels_m = self.labels
        srcs_m = self.srcs
        poss_m = self.poss
        for v in range(self.n):
            state.labels[v] = labels_m[:, v].tolist()
            state.srcs[v] = srcs_m[:, v].tolist()
            state.poss[v] = poss_m[:, v].tolist()
            state.epochs[v] = [0] * (t_max + 1)
            state.receivers[v] = {}
        for t in range(1, t_max + 1):
            row_src = srcs_m[t]
            row_pos = poss_m[t]
            for v in range(self.n):
                src = int(row_src[v])
                if src != NO_SOURCE:
                    state.receivers[src].setdefault(int(row_pos[v]), set()).add((v, t))
        state.set_num_iterations(t_max)
        return state

    def __repr__(self) -> str:
        return f"FastPropagator(seed={self.seed}, T={self.num_iterations}, n={self.n})"
