"""Core rSLPA: label propagation, post-processing, incremental maintenance.

Engine matrix — every stage exists in a pure-Python reference form and an
array-substrate fast form, bit-identical per seed:

====================  =============================  ================================
stage                 reference (dict/list state)    fast (numpy array state)
====================  =============================  ================================
static propagation    :class:`ReferencePropagator`   :class:`FastPropagator`
label state           :class:`LabelState`            :class:`ArrayLabelState`
incremental repair    :class:`CorrectionPropagator`  :class:`FastCorrectionPropagator`
====================  =============================  ================================

The fast column chains without leaving numpy: ``FastPropagator`` runs on a
CSR snapshot, ``to_array_state()`` exports its ``(T+1, n)`` matrices as an
:class:`ArrayLabelState` (reverse records built by one argsort), and
``FastCorrectionPropagator`` repairs that state with O(η) vectorised passes
per edit batch.  ``to_label_state()`` / ``ArrayLabelState.from_label_state``
cross between the columns at any point; the reference column remains the
semantic ground truth the tests compare against (and the only one that
accepts non-contiguous vertex ids).
"""

from repro.core.communities import Cover
from repro.core.complexity import (
    best_case_updates,
    change_probability,
    change_probability_paper_verbatim,
    expected_updates,
    survival_probabilities,
    worst_case_updates,
)
from repro.core.detector import RSLPADetector, detect_communities
from repro.core.fast import FastPropagator, graph_to_csr
from repro.core.incremental import CorrectionPropagator, UpdateReport
from repro.core.incremental_fast import FastCorrectionPropagator
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.labels_array import ArrayLabelState
from repro.core.postprocess import (
    PostprocessResult,
    edge_weights,
    extract_communities,
    sequence_similarity,
    sweep_tau1,
    weak_threshold,
)
from repro.core.rslpa import ReferencePropagator
from repro.core.serialize import (
    load_cover,
    load_state,
    save_cover,
    save_state,
    state_from_dict,
    state_to_dict,
)
from repro.core.tracking import CommunityEvent, CommunityTracker, TransitionReport, match_covers
from repro.core.voting import (
    distribution_levels,
    max_win_probability,
    plurality_win_distribution,
    uniform_pick_distribution,
    uniform_pick_from_multiset,
)

__all__ = [
    "Cover",
    "RSLPADetector",
    "detect_communities",
    "ReferencePropagator",
    "FastPropagator",
    "graph_to_csr",
    "CorrectionPropagator",
    "FastCorrectionPropagator",
    "UpdateReport",
    "LabelState",
    "ArrayLabelState",
    "NO_SOURCE",
    "PostprocessResult",
    "extract_communities",
    "edge_weights",
    "sequence_similarity",
    "sweep_tau1",
    "weak_threshold",
    "change_probability",
    "change_probability_paper_verbatim",
    "survival_probabilities",
    "expected_updates",
    "best_case_updates",
    "worst_case_updates",
    "plurality_win_distribution",
    "uniform_pick_distribution",
    "uniform_pick_from_multiset",
    "max_win_probability",
    "distribution_levels",
    "save_state",
    "load_state",
    "state_to_dict",
    "state_from_dict",
    "save_cover",
    "load_cover",
    "CommunityTracker",
    "CommunityEvent",
    "TransitionReport",
    "match_covers",
]
