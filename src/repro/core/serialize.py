"""Persistence for detector state: save/load label states and covers.

The paper's operating mode keeps a long-lived label state that absorbs edit
batches for hours (Section V-B3).  A production deployment needs to survive
restarts, so this module serialises the full label state — sequences,
provenance, epochs — in two interchangeable formats:

* **JSON** (the original path): a :class:`LabelState` as a compact text
  document — portable, human-inspectable, id-agnostic.
* **npz** (array-native): an :class:`ArrayLabelState`'s ``(T+1, n)``
  matrices written directly with :func:`numpy.savez_compressed` — no
  dict-state detour on either side, which is what the service layer's
  checkpoints use (loading restores the matrices bit for bit).

Reverse records are *not* stored in either format: they are a pure function
of the provenance and are rebuilt on load (smaller files, no consistency
risk).  :func:`save_state` picks the format from the target (``.npz``
suffix or a binary file object → npz), converting between the two state
representations when needed; :func:`load_state` sniffs the zip magic, so
callers can round-trip either state class through either format.

Both formats are versioned and validated on load; covers serialise
alongside for snapshotting extraction results.
"""

from __future__ import annotations

import io
import json
from typing import IO, Dict, Union

import numpy as np

from repro.core.communities import Cover
from repro.core.labels import NO_SOURCE, LabelState
from repro.core.labels_array import ArrayLabelState

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "state_to_arrays",
    "state_from_arrays",
    "save_state",
    "load_state",
    "cover_to_dict",
    "cover_from_dict",
    "save_cover",
    "load_cover",
]

FORMAT_VERSION = 1

#: Version of the array-native npz layout (independent of the JSON one).
ARRAY_FORMAT_VERSION = 1

ARRAY_FORMAT_NAME = "repro.array_label_state"

AnyLabelState = Union[LabelState, ArrayLabelState]


def state_to_dict(state: LabelState) -> dict:
    """Serialise a label state to a JSON-compatible dict."""
    return {
        "format": "repro.label_state",
        "version": FORMAT_VERSION,
        "iterations": state.num_iterations,
        "vertices": {
            # JSON keys must be strings; vertex ids are ints.
            str(v): {
                "labels": state.labels[v],
                "srcs": state.srcs[v],
                "poss": state.poss[v],
                "epochs": state.epochs[v],
            }
            for v in state.vertices()
        },
    }


def state_from_dict(payload: dict) -> LabelState:
    """Rebuild a label state (including reverse records) from a dict.

    Raises ``ValueError`` on version/format mismatches or structural
    corruption (the rebuilt state is fully validated).
    """
    if payload.get("format") != "repro.label_state":
        raise ValueError(f"not a label-state document: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported version {payload.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    state = LabelState()
    iterations = payload["iterations"]
    for key, record in payload["vertices"].items():
        v = int(key)
        labels = list(record["labels"])
        srcs = list(record["srcs"])
        poss = list(record["poss"])
        epochs = list(record["epochs"])
        if not (len(labels) == len(srcs) == len(poss) == len(epochs)):
            raise ValueError(f"vertex {v}: ragged arrays in document")
        if len(labels) != iterations + 1:
            raise ValueError(
                f"vertex {v}: sequence length {len(labels)} != T+1 = {iterations + 1}"
            )
        state.labels[v] = labels
        state.srcs[v] = srcs
        state.poss[v] = poss
        state.epochs[v] = epochs
        state.receivers[v] = {}
    # Rebuild the reverse records from provenance.
    for v in state.labels:
        srcs = state.srcs[v]
        poss = state.poss[v]
        for t in range(1, len(srcs)):
            src = srcs[t]
            if src != NO_SOURCE:
                if src not in state.receivers:
                    raise ValueError(
                        f"vertex {v} iteration {t}: unknown source {src}"
                    )
                state.receivers[src].setdefault(poss[t], set()).add((v, t))
    state.set_num_iterations(iterations)
    state.validate()
    return state


def state_to_arrays(state: ArrayLabelState) -> Dict[str, np.ndarray]:
    """The array-native payload: matrices plus a version/format header.

    Reverse records (the CSR-style receiver index) are deliberately absent —
    ``ArrayLabelState.__init__`` rebuilds them from the provenance matrices,
    so the payload cannot go inconsistent.
    """
    return {
        "format": np.array(ARRAY_FORMAT_NAME),
        "version": np.array(ARRAY_FORMAT_VERSION, dtype=np.int64),
        "labels": state.labels,
        "srcs": state.srcs,
        "poss": state.poss,
        "epochs": state.epochs,
        "alive": state.alive,
    }


def state_from_arrays(arrays) -> ArrayLabelState:
    """Rebuild an :class:`ArrayLabelState` from :func:`state_to_arrays` output.

    Accepts any mapping of name -> array (an ``NpzFile`` works directly).
    Raises ``ValueError`` on format/version mismatches or missing arrays.
    """
    try:
        fmt = str(arrays["format"])
    except KeyError:
        raise ValueError("not an array label-state payload: no format marker")
    if fmt != ARRAY_FORMAT_NAME:
        raise ValueError(f"not an array label-state payload: {fmt!r}")
    version = int(arrays["version"])
    if version != ARRAY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported array-state version {version} "
            f"(expected {ARRAY_FORMAT_VERSION})"
        )
    missing = [k for k in ("labels", "srcs", "poss", "epochs", "alive") if k not in arrays]
    if missing:
        raise ValueError(f"array label-state payload missing arrays: {missing}")
    return ArrayLabelState(
        arrays["labels"],
        arrays["srcs"],
        arrays["poss"],
        arrays["epochs"],
        alive=np.asarray(arrays["alive"], dtype=bool),
    )


def _wants_npz(target) -> bool:
    """npz iff the target says so: ``.npz`` path suffix or a binary stream."""
    if isinstance(target, str):
        return target.endswith(".npz")
    mode = getattr(target, "mode", "")
    return "b" in mode or isinstance(target, (io.BytesIO, io.BufferedIOBase))


def save_state(state: AnyLabelState, target: Union[str, IO]) -> None:
    """Write a label state to a path or file object.

    The format follows the target — a ``.npz`` path (or binary stream) gets
    the array-native npz layout, anything else the JSON document — and the
    state is converted as needed, so both :class:`LabelState` and
    :class:`ArrayLabelState` round-trip through either format.  Note the
    npz path inherits the array substrate's contiguous-id contract.
    """
    if _wants_npz(target):
        if not isinstance(state, ArrayLabelState):
            state = ArrayLabelState.from_label_state(state)
        np.savez_compressed(target, **state_to_arrays(state))
        return
    if isinstance(state, ArrayLabelState):
        state = state.to_label_state()
    payload = state_to_dict(state)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    else:
        json.dump(payload, target, separators=(",", ":"))


def load_state(source: Union[str, IO]) -> AnyLabelState:
    """Read a label state from a path or file object.

    The format is sniffed (npz files carry the zip magic), not inferred
    from the name: npz sources return an :class:`ArrayLabelState`, JSON
    sources a :class:`LabelState`.
    """
    if isinstance(source, str):
        with open(source, "rb") as probe:
            magic = probe.read(2)
        if magic == b"PK":
            with np.load(source) as arrays:
                return state_from_arrays(arrays)
        with open(source, "r", encoding="utf-8") as handle:
            return state_from_dict(json.load(handle))
    seekable = getattr(source, "seekable", None)
    if seekable is not None and not source.seekable():
        # Non-seekable streams (pipes, stdin) keep the original JSON
        # contract — npz needs random access anyway (numpy seeks the zip).
        return state_from_dict(json.load(source))
    pos = source.tell()
    head = source.read(2)
    source.seek(pos)
    if head == b"PK":
        with np.load(source) as arrays:
            return state_from_arrays(arrays)
    return state_from_dict(json.load(source))


def cover_to_dict(cover: Cover) -> dict:
    """Serialise a cover (communities as sorted member lists)."""
    return {
        "format": "repro.cover",
        "version": FORMAT_VERSION,
        "communities": [sorted(c) for c in cover],
    }


def cover_from_dict(payload: dict) -> Cover:
    if payload.get("format") != "repro.cover":
        raise ValueError(f"not a cover document: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    return Cover(set(members) for members in payload["communities"])


def save_cover(cover: Cover, target: Union[str, IO[str]]) -> None:
    payload = cover_to_dict(cover)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    else:
        json.dump(payload, target, separators=(",", ":"))


def load_cover(source: Union[str, IO[str]]) -> Cover:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return cover_from_dict(payload)
