"""Persistence for detector state: save/load label states and covers.

The paper's operating mode keeps a long-lived label state that absorbs edit
batches for hours (Section V-B3).  A production deployment needs to survive
restarts, so this module serialises the full :class:`LabelState` —
sequences, provenance, epochs — to a compact JSON document.  Reverse
records are *not* stored: they are a pure function of the provenance and
are rebuilt on load (smaller files, no consistency risk).

The format is versioned and validated on load; covers serialise alongside
for snapshotting extraction results.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.core.communities import Cover
from repro.core.labels import NO_SOURCE, LabelState

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "save_state",
    "load_state",
    "cover_to_dict",
    "cover_from_dict",
    "save_cover",
    "load_cover",
]

FORMAT_VERSION = 1


def state_to_dict(state: LabelState) -> dict:
    """Serialise a label state to a JSON-compatible dict."""
    return {
        "format": "repro.label_state",
        "version": FORMAT_VERSION,
        "iterations": state.num_iterations,
        "vertices": {
            # JSON keys must be strings; vertex ids are ints.
            str(v): {
                "labels": state.labels[v],
                "srcs": state.srcs[v],
                "poss": state.poss[v],
                "epochs": state.epochs[v],
            }
            for v in state.vertices()
        },
    }


def state_from_dict(payload: dict) -> LabelState:
    """Rebuild a label state (including reverse records) from a dict.

    Raises ``ValueError`` on version/format mismatches or structural
    corruption (the rebuilt state is fully validated).
    """
    if payload.get("format") != "repro.label_state":
        raise ValueError(f"not a label-state document: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported version {payload.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    state = LabelState()
    iterations = payload["iterations"]
    for key, record in payload["vertices"].items():
        v = int(key)
        labels = list(record["labels"])
        srcs = list(record["srcs"])
        poss = list(record["poss"])
        epochs = list(record["epochs"])
        if not (len(labels) == len(srcs) == len(poss) == len(epochs)):
            raise ValueError(f"vertex {v}: ragged arrays in document")
        if len(labels) != iterations + 1:
            raise ValueError(
                f"vertex {v}: sequence length {len(labels)} != T+1 = {iterations + 1}"
            )
        state.labels[v] = labels
        state.srcs[v] = srcs
        state.poss[v] = poss
        state.epochs[v] = epochs
        state.receivers[v] = {}
    # Rebuild the reverse records from provenance.
    for v in state.labels:
        srcs = state.srcs[v]
        poss = state.poss[v]
        for t in range(1, len(srcs)):
            src = srcs[t]
            if src != NO_SOURCE:
                if src not in state.receivers:
                    raise ValueError(
                        f"vertex {v} iteration {t}: unknown source {src}"
                    )
                state.receivers[src].setdefault(poss[t], set()).add((v, t))
    state.set_num_iterations(iterations)
    state.validate()
    return state


def save_state(state: LabelState, target: Union[str, IO[str]]) -> None:
    """Write a label state to a path or text file object."""
    payload = state_to_dict(state)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    else:
        json.dump(payload, target, separators=(",", ":"))


def load_state(source: Union[str, IO[str]]) -> LabelState:
    """Read a label state from a path or text file object."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return state_from_dict(payload)


def cover_to_dict(cover: Cover) -> dict:
    """Serialise a cover (communities as sorted member lists)."""
    return {
        "format": "repro.cover",
        "version": FORMAT_VERSION,
        "communities": [sorted(c) for c in cover],
    }


def cover_from_dict(payload: dict) -> Cover:
    if payload.get("format") != "repro.cover":
        raise ValueError(f"not a cover document: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    return Cover(set(members) for members in payload["communities"])


def save_cover(cover: Cover, target: Union[str, IO[str]]) -> None:
    payload = cover_to_dict(cover)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    else:
        json.dump(payload, target, separators=(",", ":"))


def load_cover(source: Union[str, IO[str]]) -> Cover:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return cover_from_dict(payload)
