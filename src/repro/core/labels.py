"""Label-propagation state: sequences, provenance, and reverse records.

After ``T`` iterations of Algorithm 1, each vertex ``v_i`` carries a label
sequence ``L_i = (l_i^0, ..., l_i^T)`` where ``l_i^0 = i``.  The incremental
algorithm additionally needs, per slot ``(i, t)``:

* the provenance ``(src_i^t, pos_i^t)`` — which neighbour and which position
  the label was fetched from (Section IV-A);
* the reverse records ``R_i^t = {(tar, k)}`` — who fetched *this* slot
  (Section IV-B), enabling correction propagation;
* an epoch counter so repicks draw fresh counter-based randomness.

:class:`LabelState` owns all of that and maintains the provenance/record
bijection through every mutation.  ``validate(graph)`` asserts the full
invariant set and is called liberally by the tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.adjacency import Graph

__all__ = ["LabelState", "NO_SOURCE"]

# Sentinel provenance for slots that did not fetch from a neighbour
# (iteration 0, and the degree-0 fallback).
NO_SOURCE = -1


class LabelState:
    """Mutable label state for every vertex: sequences + provenance + records."""

    __slots__ = ("labels", "srcs", "poss", "epochs", "receivers", "_t")

    def __init__(self):
        # labels[v][t] = label value at iteration t.
        self.labels: Dict[int, List[int]] = {}
        # srcs[v][t] / poss[v][t] = provenance (NO_SOURCE at t=0 / fallback).
        self.srcs: Dict[int, List[int]] = {}
        self.poss: Dict[int, List[int]] = {}
        # epochs[v][t] = how many times slot (v, t) has been (re)drawn.
        self.epochs: Dict[int, List[int]] = {}
        # receivers[v][t] = set of (tar, k): slot (tar, k) fetched (v, t).
        self.receivers: Dict[int, Dict[int, Set[Tuple[int, int]]]] = {}
        self._t = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        """T: iterations completed (sequences have T+1 entries)."""
        return self._t

    def init_vertex(self, v: int) -> None:
        """Give ``v`` its initial sequence ``(v,)`` (iteration 0)."""
        if v in self.labels:
            raise ValueError(f"vertex {v} already initialised")
        self.labels[v] = [v]
        self.srcs[v] = [NO_SOURCE]
        self.poss[v] = [NO_SOURCE]
        self.epochs[v] = [0]
        self.receivers[v] = {}

    def init_vertices(self, vertices) -> None:
        for v in vertices:
            self.init_vertex(v)

    def has_vertex(self, v: int) -> bool:
        return v in self.labels

    def drop_vertex(self, v: int) -> None:
        """Forget all state of ``v`` (used on vertex deletion).

        The caller must have already detached every slot that referenced
        ``v`` as a source — this method checks and refuses otherwise.
        """
        if v not in self.labels:
            raise KeyError(f"vertex {v} has no label state")
        dangling = [t for t, recs in self.receivers[v].items() if recs]
        if dangling:
            raise ValueError(
                f"cannot drop vertex {v}: slots {dangling[:5]} still have receivers"
            )
        del self.labels[v]
        del self.srcs[v]
        del self.poss[v]
        del self.epochs[v]
        del self.receivers[v]

    def begin_iteration(self) -> int:
        """Advance T by one and return the new iteration index."""
        self._t += 1
        return self._t

    def set_num_iterations(self, t: int) -> None:
        """Force the iteration counter (used when loading from arrays)."""
        if t < 0:
            raise ValueError(f"iteration count must be >= 0, got {t}")
        self._t = t

    # ------------------------------------------------------------------
    # Slot mutation
    # ------------------------------------------------------------------
    def append_pick(self, v: int, label: int, src: int, pos: int) -> None:
        """Record the pick of iteration ``len(labels[v])`` for vertex ``v``.

        ``src == NO_SOURCE`` encodes the degree-0 fallback (self label).
        """
        t = len(self.labels[v])
        self.labels[v].append(label)
        self.srcs[v].append(src)
        self.poss[v].append(pos)
        self.epochs[v].append(0)
        if src != NO_SOURCE:
            self._register(src, pos, v, t)

    def replace_pick(
        self, v: int, t: int, label: int, src: int, pos: int, epoch: int
    ) -> None:
        """Re-point slot ``(v, t)`` at a new provenance (incremental repick).

        Detaches the old receiver record, installs the new one, bumps the
        slot's epoch.  The label *value* is set by the caller (it must come
        from the post-correction value of the new source).
        """
        old_src = self.srcs[v][t]
        old_pos = self.poss[v][t]
        if old_src != NO_SOURCE:
            self._unregister(old_src, old_pos, v, t)
        self.labels[v][t] = label
        self.srcs[v][t] = src
        self.poss[v][t] = pos
        self.epochs[v][t] = epoch
        if src != NO_SOURCE:
            self._register(src, pos, v, t)

    def set_label(self, v: int, t: int, label: int) -> None:
        """Overwrite only the value of slot ``(v, t)`` (cascade correction)."""
        self.labels[v][t] = label

    def _register(self, src: int, pos: int, tar: int, k: int) -> None:
        self.receivers[src].setdefault(pos, set()).add((tar, k))

    def _unregister(self, src: int, pos: int, tar: int, k: int) -> None:
        bucket = self.receivers.get(src, {}).get(pos)
        if bucket is None or (tar, k) not in bucket:
            raise ValueError(
                f"record inconsistency: ({tar}, {k}) not registered at "
                f"source ({src}, {pos})"
            )
        bucket.discard((tar, k))
        if not bucket:
            del self.receivers[src][pos]

    def detach_slot(self, v: int, t: int) -> None:
        """Remove slot ``(v, t)``'s registration at its current source."""
        src = self.srcs[v][t]
        if src != NO_SOURCE:
            self._unregister(src, self.poss[v][t], v, t)
            self.srcs[v][t] = NO_SOURCE
            self.poss[v][t] = NO_SOURCE

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sequence(self, v: int) -> Tuple[int, ...]:
        """The full label sequence ``L_v`` as an immutable tuple."""
        return tuple(self.labels[v])

    def label_at(self, v: int, t: int) -> int:
        return self.labels[v][t]

    def provenance(self, v: int, t: int) -> Tuple[int, int]:
        """``(src, pos)`` of slot ``(v, t)``."""
        return self.srcs[v][t], self.poss[v][t]

    def receivers_of(self, v: int, t: int) -> Set[Tuple[int, int]]:
        """Who fetched slot ``(v, t)`` — a copy, safe to iterate while mutating."""
        return set(self.receivers.get(v, {}).get(t, ()))

    def frequencies(self, v: int) -> Counter:
        """Label -> multiplicity within ``L_v``."""
        return Counter(self.labels[v])

    def vertices(self) -> Iterator[int]:
        return iter(self.labels)

    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    def total_slots(self) -> int:
        """Total picked labels (excluding the initial ones): ``T * |V|``-ish."""
        return sum(len(seq) - 1 for seq in self.labels.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, graph: Optional[Graph] = None) -> None:
        """Assert every structural invariant; raises ``AssertionError``.

        With ``graph`` given, additionally checks that every provenance edge
        exists in the graph — the key consistency property the incremental
        algorithm must preserve (Section IV-A).
        """
        t_expected = self._t
        for v, seq in self.labels.items():
            if len(seq) != t_expected + 1:
                raise AssertionError(
                    f"vertex {v}: sequence length {len(seq)} != T+1 = {t_expected + 1}"
                )
            if seq[0] != v:
                raise AssertionError(f"vertex {v}: initial label is {seq[0]}")
            if not (
                len(self.srcs[v]) == len(self.poss[v]) == len(self.epochs[v]) == len(seq)
            ):
                raise AssertionError(f"vertex {v}: ragged provenance arrays")
            for t in range(1, len(seq)):
                src, pos = self.srcs[v][t], self.poss[v][t]
                if src == NO_SOURCE:
                    if seq[t] != v:
                        raise AssertionError(
                            f"slot ({v}, {t}): fallback slot must carry own label"
                        )
                    continue
                if not 0 <= pos < t:
                    raise AssertionError(
                        f"slot ({v}, {t}): position {pos} out of range [0, {t})"
                    )
                if src not in self.labels:
                    raise AssertionError(f"slot ({v}, {t}): source {src} unknown")
                if self.labels[src][pos] != seq[t]:
                    raise AssertionError(
                        f"slot ({v}, {t}): label {seq[t]} != source value "
                        f"{self.labels[src][pos]} at ({src}, {pos})"
                    )
                if (v, t) not in self.receivers.get(src, {}).get(pos, ()):
                    raise AssertionError(
                        f"slot ({v}, {t}): missing reverse record at ({src}, {pos})"
                    )
                if graph is not None and not graph.has_edge(v, src):
                    raise AssertionError(
                        f"slot ({v}, {t}): provenance edge ({v}, {src}) not in graph"
                    )
        # Reverse direction: every record points at a matching slot.
        for src, per_pos in self.receivers.items():
            for pos, bucket in per_pos.items():
                for tar, k in bucket:
                    if tar not in self.srcs or k >= len(self.srcs[tar]):
                        raise AssertionError(
                            f"record ({src}, {pos}) -> ({tar}, {k}): slot missing"
                        )
                    if self.srcs[tar][k] != src or self.poss[tar][k] != pos:
                        raise AssertionError(
                            f"record ({src}, {pos}) -> ({tar}, {k}): provenance "
                            f"mismatch ({self.srcs[tar][k]}, {self.poss[tar][k]})"
                        )

    def __repr__(self) -> str:
        return f"LabelState(|V|={self.num_vertices}, T={self._t})"
